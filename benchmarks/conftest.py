"""Shared benchmark fixtures: the reference sweep + the --bench-quick knob."""

from __future__ import annotations

import pytest

from repro.experiment import run_all_domains


def pytest_addoption(parser):
    parser.addoption(
        "--bench-quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads for CI smoke runs; wall-clock "
             "speedup assertions that need real parallel hardware are "
             "skipped",
    )


@pytest.fixture(scope="session")
def bench_quick(request) -> bool:
    """True when the suite runs in CI-smoke mode (small workloads, no
    hardware-dependent timing assertions)."""
    return bool(request.config.getoption("--bench-quick"))


@pytest.fixture(scope="session")
def reference_runs():
    """The seed-0 sweep over all seven domains (the paper's 150 sources)."""
    return run_all_domains(seed=0)
