"""Shared benchmark fixtures: the reference evaluation sweep, cached once."""

from __future__ import annotations

import pytest

from repro.experiment import run_all_domains


@pytest.fixture(scope="session")
def reference_runs():
    """The seed-0 sweep over all seven domains (the paper's 150 sources)."""
    return run_all_domains(seed=0)
