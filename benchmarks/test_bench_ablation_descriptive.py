"""Ablation — most-descriptive vs most-general labels (Section 3.2.1 + LI6).

The paper argues (against WISE-Integrator's generality rule) that the most
*descriptive* candidate conveys meaning better, reconciling the two via
instance domains (LI6).  This bench compares three isolated-cluster naming
policies over every isolated cluster in the corpus plus the paper's Figure 9
case: most-general root, most-descriptive root without instances, and the
full rule with LI6/LI7.
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.core.isolated import build_hierarchies, name_isolated_cluster
from repro.core.semantics import SemanticComparator
from repro.datasets import load_all_domains
from repro.schema.clusters import Cluster
from repro.schema.interface import make_field


def _most_general(cluster: Cluster, comparator) -> str | None:
    """WISE's policy: a hierarchy root, favoring the *least* content words."""
    labels = cluster.labels()
    if not labels:
        return None
    hierarchy = build_hierarchies(labels, comparator)
    roots = sorted(
        hierarchy.roots,
        key=lambda l: (len(comparator.analyzer.label(l).tokens), l),
    )
    return roots[0]


def _isolated_clusters():
    comparator = SemanticComparator()
    for name, dataset in load_all_domains(seed=0).items():
        dataset.prepare()
        from repro.schema.groups import partition_clusters

        partition = partition_clusters(dataset.integrated())
        for cluster_name in partition.c_int():
            yield name, dataset.mapping[cluster_name], comparator


def test_ablation_descriptive_vs_general():
    rows = []
    differs = 0
    total = 0
    for domain, cluster, comparator in _isolated_clusters():
        general = _most_general(cluster, comparator)
        descriptive = name_isolated_cluster(
            cluster, comparator, use_instances=False
        ).label
        full = name_isolated_cluster(cluster, comparator).label
        total += 1
        if general != full:
            differs += 1
        rows.append([domain, cluster.name, general, descriptive, full])

    # The paper's Figure 9 case, guaranteed present.
    comparator = SemanticComparator()
    fig9 = Cluster("c_class")
    values = ("Economy", "Business", "First")
    fig9.add("a", make_field("Class", instances=values))
    fig9.add("b", make_field("Flight Class", instances=values))
    fig9.add("c", make_field("Class of Tickets", instances=values[:2]))
    general = _most_general(fig9, comparator)
    full = name_isolated_cluster(fig9, comparator).label
    rows.append(["(figure 9)", "c_class", general,
                 name_isolated_cluster(fig9, comparator, use_instances=False).label,
                 full])

    report = format_table(
        ["Domain", "Cluster", "Most general", "Most descriptive", "Full (LI6/LI7)"],
        rows,
        title="Ablation — label election policy for isolated clusters, seed 0",
    )
    write_result("ablation_descriptive", report)

    # Figure 9's claim: the full rule overrides the generic root.
    assert general == "Class"
    assert full == "Flight Class"


def test_bench_isolated_naming(benchmark):
    comparator = SemanticComparator()
    cluster = Cluster("c")
    values = ("Economy", "Business", "First")
    for i, label in enumerate(
        ["Class", "Class of Ticket", "Preferred Cabin", "Flight Class"]
    ):
        cluster.add(f"i{i}", make_field(label, instances=values))
    benchmark(name_isolated_cluster, cluster, comparator)
