"""Ablation — disabling each inference rule (Figure 10's complement).

Figure 10 shows how often each LI rule produces candidate labels; this
bench shows what they *buy*: internal-node accuracy (IntAcc) across the 7
domains with each rule disabled in turn, versus the full rule set.
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.core.inference import InferenceRule
from repro.core.pipeline import NamingOptions
from repro.experiment import run_all_domains

ALL_RULES = frozenset(InferenceRule)


def _sweep(enabled):
    options = NamingOptions(enabled_rules=enabled)
    runs = run_all_domains(seed=0, options=options, respondent_count=1)
    return {name: run.int_acc for name, run in runs.items()}


def test_ablation_inference_rules():
    baseline = _sweep(ALL_RULES)
    rows = [[
        "(all rules)",
        *(f"{baseline[d]:.0%}" for d in baseline),
        f"{sum(baseline.values()) / len(baseline):.1%}",
    ]]
    degradations = {}
    for rule in (
        InferenceRule.LI1, InferenceRule.LI2, InferenceRule.LI3, InferenceRule.LI5
    ):
        scores = _sweep(ALL_RULES - {rule})
        rows.append([
            f"- {rule.value}",
            *(f"{scores[d]:.0%}" for d in scores),
            f"{sum(scores.values()) / len(scores):.1%}",
        ])
        degradations[rule] = sum(baseline.values()) - sum(scores.values())

    report = format_table(
        ["Config", *baseline.keys(), "mean IntAcc"],
        rows,
        title="Ablation — IntAcc with inference rules disabled, seed 0",
    )
    write_result("ablation_inference", report)

    # At least one rule must be load-bearing on this corpus.  Note that a
    # removal may occasionally *raise* IntAcc: a coverage-extending rule can
    # make a label a candidate for an ancestor node, which then consumes it
    # and blocks the descendant that needed it — exactly the "candidate
    # labels promoted to its ancestors" phenomenon the paper reports for
    # Car Rental.  The ablation table makes that trade-off visible.
    assert max(degradations.values()) > 0


def test_bench_rule_sweep(benchmark):
    benchmark(_sweep, ALL_RULES - {InferenceRule.LI5})
