"""Ablation — the consistency-level ladder (Definition 2).

The naming algorithm relaxes from string to equality to synonymy level
(Section 4.1.1).  This bench truncates the ladder and reports, per cutoff,
how many regular groups still obtain fully consistent solutions and what
happens to FldAcc — quantifying what each level buys, and at which level
groups actually resolve.
"""

from __future__ import annotations

from collections import Counter

from repro.bench import format_table, write_result
from repro.core.consistency import ConsistencyLevel
from repro.core.pipeline import NamingOptions
from repro.experiment import run_all_domains
from repro.schema.groups import GroupKind


def _sweep(max_level: ConsistencyLevel):
    options = NamingOptions(max_level=max_level)
    return run_all_domains(seed=0, options=options, respondent_count=1)


def _group_stats(runs):
    consistent = 0
    total = 0
    levels: Counter = Counter()
    fld = []
    for run in runs.values():
        fld.append(run.fld_acc)
        for result in run.labeling.group_results.values():
            if result.group.kind is not GroupKind.REGULAR:
                continue
            total += 1
            if result.consistent:
                consistent += 1
                levels[result.level] += 1
    return consistent, total, levels, sum(fld) / len(fld)


def test_ablation_consistency_levels():
    rows = []
    baseline_levels = None
    for max_level in ConsistencyLevel:
        runs = _sweep(max_level)
        consistent, total, levels, avg_fld = _group_stats(runs)
        if max_level is ConsistencyLevel.SYNONYMY:
            baseline_levels = levels
        rows.append([
            max_level.name,
            f"{consistent}/{total}",
            f"{avg_fld:.1%}",
            levels.get(ConsistencyLevel.STRING, 0),
            levels.get(ConsistencyLevel.EQUALITY, 0),
            levels.get(ConsistencyLevel.SYNONYMY, 0),
        ])
    report = format_table(
        ["Max level", "Consistent groups", "Avg FldAcc",
         "@string", "@equality", "@synonymy"],
        rows,
        title="Ablation — truncating the consistency ladder (7 domains, seed 0)",
    )
    write_result("ablation_levels", report)

    # The ladder is monotone: allowing more levels never loses groups.
    counts = [int(r[1].split("/")[0]) for r in rows]
    assert counts[0] <= counts[1] <= counts[2]
    # Most groups resolve at the string level; the later levels add some.
    assert baseline_levels[ConsistencyLevel.STRING] > 0


def test_bench_level_sweep(benchmark):
    benchmark(_sweep, ConsistencyLevel.SYNONYMY)
