"""Ablation — sensitivity to cluster-mapping quality.

The paper assumes a perfect mapping from the matching step ([10, 23, 24]).
This bench measures what the naming algorithm loses when the mapping
carries realistic matcher errors: split errors (missed correspondences)
and merge errors (over-matching), injected at increasing rates into the
Auto domain's ground truth.
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.core.metrics import (
    fields_consistency_accuracy,
    internal_nodes_accuracy,
)
from repro.core.pipeline import label_integrated_interface
from repro.core.semantics import SemanticComparator
from repro.datasets import load_domain
from repro.datasets.corruption import corrupt_mapping
from repro.merge import merge_interfaces


def _run(split_rate: float, merge_rate: float):
    dataset = load_domain("auto", seed=0)
    dataset.prepare()
    mapping = corrupt_mapping(
        dataset.mapping, split_rate=split_rate, merge_rate=merge_rate, seed=1
    )
    root = merge_interfaces(dataset.interfaces, mapping)
    result = label_integrated_interface(
        root, dataset.interfaces, mapping, SemanticComparator()
    )
    return (
        fields_consistency_accuracy(result),
        internal_nodes_accuracy(result),
        len(root.leaves()),
        result.classification.value,
    )


def test_ablation_mapping_quality():
    rows = []
    outcomes = {}
    for split_rate, merge_rate in (
        (0.0, 0.0),
        (0.05, 0.0),
        (0.15, 0.0),
        (0.0, 0.1),
        (0.1, 0.1),
    ):
        fld, internal, leaves, classification = _run(split_rate, merge_rate)
        outcomes[(split_rate, merge_rate)] = (fld, leaves)
        rows.append([
            f"{split_rate:.0%}",
            f"{merge_rate:.0%}",
            leaves,
            f"{fld:.0%}",
            f"{internal:.0%}",
            classification,
        ])
    report = format_table(
        ["split err", "merge err", "int. fields", "FldAcc", "IntAcc", "class"],
        rows,
        title="Ablation — naming under mapping corruption (Auto, seed 0)",
    )
    write_result("ablation_mapping", report)

    # Split errors inflate the integrated interface (missed correspondences
    # surface as duplicate fields); the clean run stays the smallest.
    clean_leaves = outcomes[(0.0, 0.0)][1]
    assert outcomes[(0.15, 0.0)][1] > clean_leaves
    # Merge errors shrink it.
    assert outcomes[(0.0, 0.1)][1] <= clean_leaves


def test_corruption_preserves_mapping_invariants():
    dataset = load_domain("job", seed=0)
    dataset.prepare()
    corrupted = corrupt_mapping(
        dataset.mapping, split_rate=0.2, merge_rate=0.2, seed=3
    )
    corrupted.validate_one_to_one()
    # Every original member survives somewhere.
    original_members = {
        id(node)
        for cluster in dataset.mapping.clusters
        for node in cluster.members.values()
    }
    corrupted_members = {
        id(node)
        for cluster in corrupted.clusters
        for node in cluster.members.values()
    }
    assert corrupted_members == original_members


def test_bench_corruption(benchmark):
    benchmark(_run, 0.1, 0.1)
