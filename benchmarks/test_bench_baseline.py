"""Baseline comparison — the consistency machinery vs majority voting.

The paper argues that naive labeling (each node named independently)
produces interfaces users find confusing; its whole contribution is the
consistency machinery.  This bench quantifies the claim: both labelers run
on the same seven integrated trees, and the well-designedness linter
(:mod:`repro.lint`) counts the defects each leaves behind — homonym pairs,
incoherent groups, vertical generality inversions.
"""

from __future__ import annotations

from repro.bench import format_table, write_result
from repro.core.baseline import naive_label_interface
from repro.core.pipeline import label_integrated_interface
from repro.core.semantics import SemanticComparator
from repro.datasets import DOMAIN_TITLES, DOMAINS, load_domain
from repro.lint import lint_interface
from repro.survey import run_study


def _lint_counts(findings):
    warns = sum(1 for f in findings if f.severity == "warn")
    homonyms = sum(1 for f in findings if f.check == "homonyms")
    return warns, homonyms, len(findings)


def _both_labelings(domain: str):
    comparator = SemanticComparator()

    naive_dataset = load_domain(domain, seed=0)
    naive_root = naive_dataset.integrated()
    naive_label_interface(naive_root, naive_dataset.interfaces, naive_dataset.mapping)
    naive_findings = lint_interface(naive_root, comparator)

    algo_dataset = load_domain(domain, seed=0)
    algo_root = algo_dataset.integrated()
    algo_result = label_integrated_interface(
        algo_root, algo_dataset.interfaces, algo_dataset.mapping, comparator
    )
    algo_findings = lint_interface(algo_root, comparator)
    return (
        naive_findings,
        algo_findings,
        (naive_dataset, naive_root),
        (algo_dataset, algo_result),
        comparator,
    )


def test_baseline_comparison_report():
    rows = []
    naive_total = 0
    algo_total = 0
    naive_homonyms_total = 0
    algo_homonyms_total = 0
    for domain in DOMAINS:
        naive_findings, algo_findings, naive_ctx, algo_ctx, comparator = (
            _both_labelings(domain)
        )
        naive_warns, naive_homonyms, naive_all = _lint_counts(naive_findings)
        algo_warns, algo_homonyms, algo_all = _lint_counts(algo_findings)
        naive_total += naive_warns
        algo_total += algo_warns
        naive_homonyms_total += naive_homonyms
        algo_homonyms_total += algo_homonyms

        # HA under both labelings: the survey reads the labeled tree.
        naive_dataset, naive_root = naive_ctx
        from repro.core.result import LabelingResult
        from repro.schema.groups import partition_clusters

        naive_result = LabelingResult(
            root=naive_root, partition=partition_clusters(naive_root)
        )
        naive_result.field_labels = {
            leaf.cluster: leaf.label
            for leaf in naive_root.leaves()
            if leaf.cluster is not None
        }
        naive_ha = run_study(
            naive_result, naive_dataset.mapping, comparator, respondent_count=5
        ).ha
        algo_dataset, algo_result = algo_ctx
        algo_ha = run_study(
            algo_result, algo_dataset.mapping, comparator, respondent_count=5
        ).ha

        rows.append([
            DOMAIN_TITLES[domain],
            f"{naive_warns} ({naive_homonyms} homonyms)",
            f"{algo_warns} ({algo_homonyms} homonyms)",
            f"{naive_ha:.1%}",
            f"{algo_ha:.1%}",
        ])

    report = format_table(
        ["Domain", "naive lint warns", "paper-algo lint warns",
         "naive HA", "algo HA"],
        rows,
        title=("Baseline — majority voting vs the consistency machinery "
               "(defect counts from the well-designedness linter, seed 0)"),
    )
    write_result("baseline", report)

    # The headline claim: the algorithm leaves no more defects than naive
    # voting overall, and strictly fewer homonym pairs (its repair step).
    assert algo_total <= naive_total
    assert algo_homonyms_total <= naive_homonyms_total


def test_bench_naive_labeler(benchmark):
    def run():
        dataset = load_domain("airline", seed=0)
        root = dataset.integrated()
        return naive_label_interface(root, dataset.interfaces, dataset.mapping)

    benchmark(run)
