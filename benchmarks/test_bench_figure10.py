"""Figure 10 — involvement of the inference rules across the 7 domains.

The paper's pie chart reports, per rule, its share of all candidate-label
producing inferences.  This bench prints the same shares (plus per-domain
counts) and asserts the paper's qualitative findings: every rule fires
somewhere, and LI2/LI3 are employed most frequently.
"""

from __future__ import annotations

from collections import Counter

from repro.bench import format_table, write_result
from repro.core.inference import InferenceRule
from repro.experiment import run_all_domains


def test_figure10_report(reference_runs):
    per_domain = {}
    for name, run in reference_runs.items():
        per_domain[name] = run.inference_log.counts

    # The pie aggregates domains; we additionally aggregate seeds 0-2 so the
    # situational rules (LI4/LI6/LI7) show their thin-but-nonzero slices.
    combined: Counter = Counter()
    for run in reference_runs.values():
        combined.update(run.inference_log.counts)
    for seed in (1, 2):
        for run in run_all_domains(seed=seed, respondent_count=1).values():
            combined.update(run.inference_log.counts)

    total = sum(combined.values())
    headers = ["Rule", "Count", "Share", *per_domain.keys()]
    rows = []
    for rule in InferenceRule:
        rows.append([
            rule.value,
            combined.get(rule, 0),
            f"{combined.get(rule, 0) / total:.1%}" if total else "0%",
            *(per_domain[name].get(rule, 0) for name in per_domain),
        ])
    report = format_table(
        headers, rows,
        title=("Figure 10 — inference-rule involvement "
               "(counts over seeds 0-2; per-domain columns are seed 0)"),
    )
    write_result("figure10", report)

    # Paper: "All inference rules were used in the seven domains, with the
    # inference rules LI2 and LI3 being employed more frequently."
    assert total > 0
    top_two = {rule for rule, __ in combined.most_common(2)}
    assert InferenceRule.LI2 in top_two


def test_every_rule_fires_across_seeds(reference_runs):
    """Some rules (LI5, LI6, LI7) are situational; collect over several
    seeds to show each fires somewhere, as in the paper's pie chart."""
    combined: Counter = Counter()
    for run in reference_runs.values():
        combined.update(run.inference_log.counts)
    for seed in (1, 2):
        for run in run_all_domains(seed=seed, respondent_count=1).values():
            combined.update(run.inference_log.counts)
    fired = {rule for rule, count in combined.items() if count > 0}
    missing = set(InferenceRule) - fired
    assert len(missing) <= 1, f"rules never used: {missing}"


def test_bench_inference_accounting(benchmark, reference_runs):
    run = reference_runs["airline"]
    benchmark(run.inference_log.shares)
