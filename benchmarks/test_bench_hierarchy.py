"""Extension study — integrating concept hierarchies (paper Section 9).

"We aim to experimentally show that our framework is readily applicable to
other areas of interest sensitive to labeling process, e.g., integrated
concept hierarchies."  The paper proposed this experiment as future work;
this bench carries it out: store taxonomies sampled from a master catalog
are integrated and labeled, then scored against ground truth — pairwise
concept-cluster precision/recall and category-label accuracy, as the
number of stores grows.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, write_result
from repro.datasets.taxonomies import (
    BOOKSTORE,
    ELECTRONICS,
    evaluate_integration,
    generate_taxonomies,
)
from repro.extensions import integrate_hierarchies


def _integrate(count: int, seed: int = 0, spec=ELECTRONICS):
    hierarchies, ground_truth = generate_taxonomies(count, seed=seed, spec=spec)
    integrated = integrate_hierarchies(hierarchies)
    return evaluate_integration(integrated, ground_truth, spec=spec), integrated


def test_hierarchy_extension_report():
    rows = []
    scores = []
    for count in (3, 6, 9, 12):
        score, integrated = _integrate(count)
        scores.append(score)
        rows.append([
            "electronics",
            count,
            f"{score.precision:.2f}",
            f"{score.recall:.2f}",
            f"{score.f1:.2f}",
            f"{score.category_accuracy:.2f}",
            integrated.classification,
        ])
    # The second master: contains the Science / Science Fiction conflation,
    # a deliberate hard case for instance-free lexical matching.
    book_score, book_integrated = _integrate(8, spec=BOOKSTORE)
    rows.append([
        "bookstore",
        8,
        f"{book_score.precision:.2f}",
        f"{book_score.recall:.2f}",
        f"{book_score.f1:.2f}",
        f"{book_score.category_accuracy:.2f} (known conflation)",
        book_integrated.classification,
    ])
    report = format_table(
        ["master", "#stores", "precision", "recall", "F1", "category acc", "class"],
        rows,
        title="Section-9 extension — integrating product taxonomies (seed 0)",
    )
    write_result("hierarchy_extension", report)

    # The framework transfers: high-precision clusters, near-perfect
    # category naming — the qualitative claim the paper anticipated.
    for score in scores:
        assert score.precision >= 0.85
        assert score.recall >= 0.75
        assert score.category_accuracy >= 0.9


def test_category_names_drawn_from_sources():
    __, integrated = _integrate(8)
    source_labels = set()
    for cluster in integrated.mapping.clusters:
        source_labels.update(cluster.labels())
    # Internal labels come from source internal nodes; collect those too.
    # (evaluate_integration already checks pool membership; here we check
    # the never-invents-labels property transfers to taxonomies.)
    for node in integrated.root.internal_nodes():
        if node is integrated.root or node.label is None:
            continue
        assert isinstance(node.label, str) and node.label


@pytest.mark.parametrize("count", [4, 12])
def test_bench_taxonomy_integration(benchmark, count):
    benchmark(_integrate, count)
