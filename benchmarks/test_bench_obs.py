"""Tracing overhead — the zero-cost-when-disabled claim, measured.

Three numbers back the claim:

* **Disabled guard cost** — the per-call price of ``span()`` / ``event()``
  when no trace is active (one integer read + a shared no-op context
  manager).  Multiplied by the span count of a real request this projects
  the *worst-case* overhead the instrumentation can add to an untraced
  run; the projection must stay under :data:`MAX_TRACE_OFF_OVERHEAD`.
* **Trace-off wall time vs the PR-4 baseline** — the exact sequential
  workload ``BENCH_parallel.json`` recorded (``run_all_domains`` at
  ``jobs=1``), re-timed on the instrumented build.  The ratio is recorded
  always and asserted under :data:`MAX_TRACE_OFF_OVERHEAD` only when the
  stored baseline is comparable (same respondent count, neither run in
  ``--bench-quick`` mode) — a quick-mode or missing baseline makes the
  report honest instead of flaky.
* **Trace-on cost** — the same single-request workload with a live trace,
  so the artifact records what opting in actually costs.

Artifacts:

* ``benchmarks/results/obs.txt`` — human-readable table;
* ``benchmarks/results/BENCH_obs.json`` — machine-readable record;
* ``benchmarks/results/trace_airline_chrome.json`` — a real airline
  request exported in Chrome trace-event format (load it at
  ``chrome://tracing`` or ``ui.perfetto.dev``) — the CI sample artifact.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench import format_table, write_result
from repro.experiment import run_all_domains
from repro.obs import Trace, chrome_trace, event, span
from repro.service.engine import LabelingEngine

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_parallel.json"

#: Ceiling on what the disabled instrumentation may add to an untraced
#: run — both the projected guard cost and (when the stored baseline is
#: comparable) the measured wall-time ratio.
MAX_TRACE_OFF_OVERHEAD = 0.02

GUARD_CALLS = 200_000


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for __ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _comparable_baseline(respondents: int, bench_quick: bool) -> dict | None:
    """The PR-4 sequential record, if it measured the same workload."""
    if bench_quick or not BASELINE_PATH.exists():
        return None
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("bench_quick") or baseline.get("respondents") != respondents:
        return None
    return baseline


def test_obs_overhead_report(bench_quick):
    respondents = 3 if bench_quick else 11
    runs = 1 if bench_quick else 3

    # -- disabled guard microcost ------------------------------------
    start = time.perf_counter()
    for __ in range(GUARD_CALLS):
        with span("bench", k=1):
            pass
    span_guard_ns = (time.perf_counter() - start) / GUARD_CALLS * 1e9

    start = time.perf_counter()
    for __ in range(GUARD_CALLS):
        event("bench", k=1)
    event_guard_ns = (time.perf_counter() - start) / GUARD_CALLS * 1e9

    # -- one real request, traced and untraced -----------------------
    payload = {"domain": "airline", "seed": 0}
    engine = LabelingEngine(cache_size=0)
    request_off_s = _best_of(max(runs, 2), lambda: engine.label(payload))

    def traced_request() -> Trace:
        trace = Trace(name="bench")
        with trace.scope():
            engine.label(payload)
        return trace

    request_on_s = _best_of(max(runs, 2), traced_request)
    sample = traced_request()
    spans_per_request = sum(1 for __ in sample.root.iter_spans())
    events_per_request = sum(
        len(sp.events) for sp in sample.root.iter_spans()
    )

    # Worst case for an untraced request: every instrumented call site
    # pays the disabled-guard price and nothing else.
    projected_overhead = (
        spans_per_request * span_guard_ns + events_per_request * event_guard_ns
    ) / 1e9 / request_off_s

    # -- the PR-4 sequential workload, trace off ---------------------
    sequential_s = _best_of(
        runs,
        lambda: run_all_domains(seed=0, respondent_count=respondents, jobs=1),
    )
    baseline = _comparable_baseline(respondents, bench_quick)
    baseline_s = baseline["batch"]["sequential_s"] if baseline else None
    vs_baseline = sequential_s / baseline_s - 1.0 if baseline_s else None

    # -- the CI sample artifact --------------------------------------
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "trace_airline_chrome.json").write_text(
        json.dumps(chrome_trace([sample.to_dict()]), indent=2) + "\n"
    )

    report = {
        "workload": (
            "airline seed-0 request traced vs untraced; disabled-guard "
            "microcost; run_all_domains jobs=1 re-timed against "
            "BENCH_parallel.json"
        ),
        "bench_quick": bench_quick,
        "guard": {
            "span_disabled_ns": round(span_guard_ns, 1),
            "event_disabled_ns": round(event_guard_ns, 1),
            "spans_per_request": spans_per_request,
            "events_per_request": events_per_request,
            "projected_trace_off_overhead": round(projected_overhead, 6),
            "ceiling": MAX_TRACE_OFF_OVERHEAD,
        },
        "request": {
            "trace_off_s": round(request_off_s, 4),
            "trace_on_s": round(request_on_s, 4),
            "trace_on_overhead": round(request_on_s / request_off_s - 1.0, 4),
        },
        "baseline": {
            "respondents": respondents,
            "sequential_s": round(sequential_s, 3),
            "pr4_sequential_s": baseline_s,
            "vs_baseline": round(vs_baseline, 4) if vs_baseline is not None else None,
            "ceiling_asserted": baseline is not None,
        },
    }

    rows = [
        ["span() disabled", f"{span_guard_ns:.0f} ns/call",
         f"{spans_per_request} call sites/request"],
        ["event() disabled", f"{event_guard_ns:.0f} ns/call",
         f"{events_per_request} call sites/request"],
        ["projected trace-off overhead", f"{projected_overhead * 100:.4f} %",
         f"ceiling {MAX_TRACE_OFF_OVERHEAD * 100:.0f} %"],
        ["airline request, trace off", f"{request_off_s * 1000:.1f} ms", ""],
        ["airline request, trace on", f"{request_on_s * 1000:.1f} ms",
         f"+{report['request']['trace_on_overhead'] * 100:.1f} %"],
        ["all-domain sequential", f"{sequential_s * 1000:.0f} ms",
         (f"{vs_baseline * +100:+.1f} % vs PR-4 baseline"
          if vs_baseline is not None else "no comparable baseline")],
    ]
    table = format_table(
        ["measurement", "value", "notes"],
        rows,
        title=(
            "Tracing overhead"
            + (" (--bench-quick)" if bench_quick else "")
        ),
    )
    write_result("obs", table)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    # The disabled path must be effectively free, on any hardware.
    assert projected_overhead < MAX_TRACE_OFF_OVERHEAD, report["guard"]
    # And the measured trace-off wall time must match the PR-4 baseline
    # when that baseline measured the same workload on this machine.
    if baseline is not None:
        assert vs_baseline < MAX_TRACE_OFF_OVERHEAD, report["baseline"]
    # Tracing a request yields a non-trivial tree (the five paper phases
    # at minimum) — the sample artifact is real.
    assert spans_per_request >= 8
