"""The process-parallel backend + disk cache — batch speedup and warm start.

Two claims are measured:

* **Parallel speedup** — the all-domain batch (`run_all_domains`) at
  ``executor="process", jobs=4`` against the sequential ``jobs=1`` path.
  The ≥2x floor is asserted only on hardware that can deliver it (at
  least 2 usable CPUs, not ``--bench-quick``); the measured numbers and
  the CPU count are recorded either way, so the artifact is honest about
  the machine it ran on.
* **Warm start** — a cold engine labels every domain into a disk cache;
  a fresh engine against the same directory must serve the identical
  batch with **zero recomputations**.  That assertion is
  hardware-independent and always enforced.

Artifacts:

* ``benchmarks/results/parallel.txt`` — human-readable table;
* ``benchmarks/results/BENCH_parallel.json`` — machine-readable record
  (sequential/process wall time, speedup, CPU count, disk-cache warm
  restart counters) future PRs diff against.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import format_table, write_result
from repro.datasets.registry import DOMAINS
from repro.experiment import run_all_domains
from repro.service.engine import LabelingEngine

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Parallel speedup floor for the all-domain process batch at jobs=4 vs
#: the sequential path — asserted only with >= 2 usable CPUs and a full
#: (non --bench-quick) run.
MIN_PROCESS_SPEEDUP = 2.0

PARALLEL_JOBS = 4

DOMAIN_PAYLOADS = [{"domain": name, "seed": 0} for name in DOMAINS]


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _best_of(runs: int, fn) -> float:
    best = float("inf")
    for __ in range(runs):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_parallel_report(bench_quick, tmp_path):
    respondents = 3 if bench_quick else 11
    runs = 1 if bench_quick else 2
    cpus = _usable_cpus()

    sequential_s = _best_of(
        runs,
        lambda: run_all_domains(seed=0, respondent_count=respondents, jobs=1),
    )
    process_s = _best_of(
        runs,
        lambda: run_all_domains(
            seed=0,
            respondent_count=respondents,
            jobs=PARALLEL_JOBS,
            executor="process",
        ),
    )
    speedup = sequential_s / process_s if process_s else 0.0

    # Warm start: cold engine fills the disk cache, a restarted engine
    # must answer the same batch without a single pipeline run.
    cache_dir = tmp_path / "disk-cache"
    cold_engine = LabelingEngine(disk_cache=cache_dir)
    cold_start = time.perf_counter()
    cold_results = cold_engine.label_batch(DOMAIN_PAYLOADS, jobs=1)
    cold_s = time.perf_counter() - cold_start
    assert all(r["ok"] for r in cold_results)

    warm_engine = LabelingEngine(disk_cache=cache_dir)
    warm_start = time.perf_counter()
    warm_results = warm_engine.label_batch(DOMAIN_PAYLOADS, jobs=1)
    warm_s = time.perf_counter() - warm_start
    warm_stats = warm_engine.stats()

    report = {
        "workload": (
            "run_all_domains seed 0: sequential vs "
            f"process executor jobs={PARALLEL_JOBS}; plus disk-cache warm "
            "restart over the 7-domain batch"
        ),
        "cpus_usable": cpus,
        "bench_quick": bench_quick,
        "respondents": respondents,
        "batch": {
            "sequential_s": round(sequential_s, 3),
            "process_s": round(process_s, 3),
            "jobs": PARALLEL_JOBS,
            "speedup": round(speedup, 2),
            "floor": MIN_PROCESS_SPEEDUP,
            "floor_asserted": cpus >= 2 and not bench_quick,
        },
        "disk_cache": {
            "domains": len(DOMAIN_PAYLOADS),
            "cold_s": round(cold_s, 3),
            "warm_s": round(warm_s, 3),
            "cold_computations": cold_engine.stats()["computations"],
            "warm_computations": warm_stats["computations"],
            "warm_disk_hits": warm_stats["disk"]["hits"],
            "load_ms": warm_stats["disk"]["load_ms"],
        },
    }

    rows = [
        ["batch sequential (jobs=1)", f"{sequential_s * 1000:.0f} ms", ""],
        [
            f"batch process (jobs={PARALLEL_JOBS})",
            f"{process_s * 1000:.0f} ms",
            f"{speedup:.2f}x vs sequential",
        ],
        ["disk-cache cold run", f"{cold_s * 1000:.0f} ms",
         f"{report['disk_cache']['cold_computations']} computations"],
        ["disk-cache warm restart", f"{warm_s * 1000:.0f} ms",
         f"{report['disk_cache']['warm_computations']} computations, "
         f"{report['disk_cache']['warm_disk_hits']} disk hits"],
    ]
    table = format_table(
        ["path", "wall time", "notes"],
        rows,
        title=(
            "Process-parallel batch + persistent warm start "
            f"(seed 0, {cpus} usable CPU(s)"
            + (", --bench-quick" if bench_quick else "")
            + ")"
        ),
    )
    write_result("parallel", table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_parallel.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    # Warm restart recomputes nothing, on any hardware.
    assert warm_stats["computations"] == 0, warm_stats
    assert warm_stats["disk"]["hits"] == len(DOMAIN_PAYLOADS)
    assert all(r["cached"] is True for r in warm_results)
    for cold_response, warm_response in zip(cold_results, warm_results):
        assert cold_response["fingerprint"] == warm_response["fingerprint"]
        assert cold_response["field_labels"] == warm_response["field_labels"]

    # The speedup floor needs real parallel hardware; on a 1-CPU box the
    # report records the honest measurement instead.
    if report["batch"]["floor_asserted"]:
        assert speedup >= MIN_PROCESS_SPEEDUP, report["batch"]
