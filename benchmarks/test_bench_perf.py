"""The memoization layer — cold vs warm labeling and cache hit ratios.

The hot-path caches (label interning, pairwise relations, group-result
memo, WordNet token memos) exist so repeated labeling of the same domain —
the service's steady state — skips the quadratic Definition-1/2 work.
This bench measures exactly that workload through
:func:`repro.perf.profile_labeling`: every domain labeled once cold and
``repeats`` times warm over one shared comparator, no response-cache
shortcuts (the full pipeline runs every time).

Artifacts:

* ``benchmarks/results/perf.txt`` — human-readable table;
* ``benchmarks/results/BENCH_perf.json`` — the machine-readable report
  (ops/sec, hit ratios, cold/warm wall time) future PRs diff against to
  track the perf trajectory.  Regenerate with
  ``repro profile -o benchmarks/results/BENCH_perf.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench import format_table, write_result
from repro.perf import profile_labeling

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The acceptance floor: warm labeling of the full seven-domain sweep must
#: be at least this much faster than cold.  Measured ~10-15x; 3x leaves
#: headroom for slow CI machines without letting the caches rot.
MIN_TOTAL_SPEEDUP = 3.0


def test_perf_report():
    report = profile_labeling(seed=0, repeats=3)

    rows = []
    for name, row in report["domains"].items():
        rows.append([
            name, f"{row['cold_ms']:.1f}", f"{row['warm_ms']:.1f}",
            f"{row['speedup']:.1f}x",
        ])
    totals = report["totals"]
    rows.append([
        "TOTAL", f"{totals['cold_ms']:.1f}", f"{totals['warm_ms']:.1f}",
        f"{totals['speedup']:.1f}x",
    ])
    caches = report["caches"]
    for cache_name in (
        "labels", "relations", "predicates", "group_results",
        "consistency_pairs",
    ):
        snap = caches[cache_name]
        rows.append([
            f"cache: {cache_name}",
            f"{snap['hits']} hits",
            f"{snap['misses']} misses",
            f"{snap['hit_rate']:.1%}",
        ])

    table = format_table(
        ["domain / cache", "cold ms", "warm ms", "speedup / hit rate"],
        rows,
        title=("Memoization layer — cold vs warm labeling per domain "
               "(one shared comparator, full pipeline each run, seed 0) "
               f"and final cache hit ratios; warm throughput "
               f"{totals['warm_labelings_per_s']} labelings/s"),
    )
    write_result("perf", table)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_perf.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )

    # The acceptance criterion: repeated labeling of the same domains must
    # come back at least MIN_TOTAL_SPEEDUP faster warm than cold.
    assert totals["speedup"] >= MIN_TOTAL_SPEEDUP, report["totals"]
    # The caches must actually be carrying the load, not sitting idle.
    assert caches["labels"]["hit_rate"] > 0.5
    assert caches["relations"]["hit_rate"] > 0.5
    assert caches["group_results"]["hits"] > 0
