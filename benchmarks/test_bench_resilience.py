"""Resilience overhead — labeling throughput fault-free vs under chaos.

Two sweeps over the same seven-domain batch with one shared comparator:

* **fault-free** — a plain engine, no plan, default breaker/retry: the
  price of having the resilience stack *wired but idle* (this is what
  production traffic pays);
* **chaos** — seeded fault plans at a 10% injection rate with retry
  healing, exactly the property-suite configuration: the price of
  actively absorbing faults.

Artifacts:

* ``benchmarks/results/resilience.txt`` — human-readable table;
* ``benchmarks/results/BENCH_resilience.json`` — machine-readable report
  (throughput both ways, overhead ratio, injected/recovered counts)
  future PRs diff against.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench import format_table, write_result
from repro.core.label import LabelAnalyzer
from repro.core.semantics import SemanticComparator
from repro.datasets.registry import DOMAINS
from repro.lexicon.data import build_default_wordnet
from repro.resilience import RetryPolicy
from repro.service.engine import LabelingEngine
from repro.testing.chaos import run_chaos_sweep

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: Chaos rounds (each = all seven domains under a fresh seeded plan).
PLANS = 6
#: Injection probability per (spec, item): the property suite's setting.
RATE = 0.10
#: A 10%-fault sweep must stay within this factor of fault-free wall time
#: (includes baseline recomputation, retries and injected latency).
MAX_OVERHEAD = 12.0


def test_resilience_overhead_report():
    comparator = SemanticComparator(LabelAnalyzer(build_default_wordnet()))
    payloads = [{"domain": name, "seed": 0} for name in sorted(DOMAINS)]
    retry = RetryPolicy(base_delay_s=0.001, max_delay_s=0.005)

    # Warm the comparator once so both measurements see hot lexicon memos.
    LabelingEngine(cache_size=0, comparator=comparator).label_batch(payloads)

    start = time.perf_counter()
    for _round in range(PLANS):
        engine = LabelingEngine(cache_size=0, comparator=comparator)
        responses = engine.label_batch(payloads, jobs=2)
        assert all(r["ok"] for r in responses)
    plain_s = time.perf_counter() - start
    plain_items = PLANS * len(payloads)

    start = time.perf_counter()
    report = run_chaos_sweep(
        plans=PLANS,
        seed=0,
        rate=RATE,
        jobs=2,
        comparator=comparator,
        latency_s=0.001,
        retry=retry,
    )
    chaos_s = time.perf_counter() - start

    assert report["ok"], report["anomalies"]
    plain_rate = plain_items / plain_s if plain_s else 0.0
    chaos_rate = report["items"] / chaos_s if chaos_s else 0.0
    overhead = chaos_s / plain_s if plain_s else 0.0

    result = {
        "plans": PLANS,
        "rate": RATE,
        "items_per_sweep": len(payloads),
        "fault_free": {
            "wall_s": round(plain_s, 4),
            "items": plain_items,
            "items_per_s": round(plain_rate, 2),
        },
        "chaos": {
            "wall_s": round(chaos_s, 4),
            "items": report["items"],
            "items_per_s": round(chaos_rate, 2),
            "ok_items": report["ok_items"],
            "failed_items": report["failed_items"],
            "recovered_items": report["recovered_items"],
            "identical_items": report["identical_items"],
            "injected_faults": report["injected_faults"],
        },
        "overhead_x": round(overhead, 3),
    }

    table = format_table(
        ["sweep", "wall s", "items", "items/s", "notes"],
        [
            [
                "fault-free", f"{plain_s:.3f}", str(plain_items),
                f"{plain_rate:.1f}", "idle resilience stack",
            ],
            [
                f"chaos {RATE:.0%}", f"{chaos_s:.3f}", str(report["items"]),
                f"{chaos_rate:.1f}",
                (
                    f"{report['injected_faults']} faults injected, "
                    f"{report['recovered_items']} items healed, "
                    f"{report['failed_items']} degraded"
                ),
            ],
        ],
        title=(
            "Resilience stack — seven-domain batch throughput, fault-free vs "
            f"{RATE:.0%} seeded chaos ({PLANS} plans, retry healing, shared "
            f"comparator); overhead {overhead:.2f}x"
        ),
    )
    write_result("resilience", table)

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "BENCH_resilience.json").write_text(
        json.dumps(result, indent=2) + "\n"
    )

    # Acceptance: chaos absorbed without anomalies, with bounded overhead,
    # and the machinery demonstrably engaged.
    assert report["injected_faults"] > 0
    assert report["identical_items"] == report["ok_items"]
    assert overhead <= MAX_OVERHEAD, result
