"""Robustness — Table 6's quality metrics across corpus seeds.

The paper evaluates one fixed corpus; a reproduction on synthetic data must
show its headline numbers are not a single lucky draw.  This bench sweeps
five corpus seeds and reports mean and spread of FldAcc / IntAcc / HA per
domain, plus how often each domain lands in each Definition-8 class.
"""

from __future__ import annotations

import statistics
from collections import Counter

from repro.bench import format_table, write_result
from repro.datasets import DOMAIN_TITLES, DOMAINS
from repro.experiment import run_all_domains

SEEDS = (0, 1, 2, 3, 4)


def _sweep():
    per_domain = {name: [] for name in DOMAINS}
    for seed in SEEDS:
        for name, run in run_all_domains(seed=seed, respondent_count=5).items():
            per_domain[name].append(run)
    return per_domain


def test_robustness_report():
    per_domain = _sweep()
    rows = []
    for name, runs in per_domain.items():
        fld = [r.fld_acc for r in runs]
        internal = [r.int_acc for r in runs]
        ha = [r.ha for r in runs]
        classes = Counter(r.classification for r in runs)
        rows.append([
            DOMAIN_TITLES[name],
            f"{statistics.mean(fld):.1%}±{statistics.pstdev(fld):.1%}",
            f"{statistics.mean(internal):.1%}±{statistics.pstdev(internal):.1%}",
            f"{statistics.mean(ha):.1%}±{statistics.pstdev(ha):.1%}",
            ", ".join(f"{c}×{n}" for c, n in classes.most_common()),
        ])
    report = format_table(
        ["Domain", "FldAcc", "IntAcc", "HA", "classifications"],
        rows,
        title=f"Robustness — metrics over seeds {SEEDS}",
    )
    write_result("robustness", report)

    # Stability claims: FldAcc stays >= 85% on every seed in every domain
    # (misses are always fields labeled nowhere in the corpus — the paper's
    # Real-Estate Lease-Rate class), and Car Rental is inconsistent on a
    # majority of seeds (it is the paper's structurally hardest domain).
    for name, runs in per_domain.items():
        for run in runs:
            assert run.fld_acc >= 0.85, (name, run.dataset.seed, run.fld_acc)
            for cluster in run.labeling.unlabeled_fields():
                if cluster in run.dataset.mapping:
                    assert run.dataset.mapping[cluster].labels() == [], (
                        name, cluster
                    )
    carrental = Counter(r.classification for r in per_domain["carrental"])
    assert carrental.get("inconsistent", 0) >= len(SEEDS) // 2 + 1


def test_bench_one_seed_sweep(benchmark):
    benchmark(run_all_domains, 3, None, 1)
