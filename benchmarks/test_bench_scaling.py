"""Scaling — naming cost versus corpus size.

The paper does not report running times; this bench characterizes the
implementation: wall-clock of the naming pipeline as the number of source
interfaces grows (subsampling the hotels corpus, the largest domain), and
the per-stage costs (merge vs naming vs survey).
"""

from __future__ import annotations

import time

import pytest

from repro.bench import format_table, write_result
from repro.core.pipeline import label_integrated_interface
from repro.core.semantics import SemanticComparator
from repro.datasets import load_domain
from repro.merge import merge_interfaces
from repro.schema.clusters import Mapping


def _subcorpus(count: int):
    """The first ``count`` hotels interfaces with a restricted mapping."""
    dataset = load_domain("hotels", seed=0)
    dataset.prepare()
    interfaces = dataset.interfaces[:count]
    names = {qi.name for qi in interfaces}
    mapping = Mapping()
    for cluster in dataset.mapping.clusters:
        for interface_name, node in cluster.members.items():
            if interface_name in names:
                mapping.assign(cluster.name, interface_name, node)
    return interfaces, mapping


def _name_subcorpus(count: int):
    interfaces, mapping = _subcorpus(count)
    root = merge_interfaces(interfaces, mapping)
    comparator = SemanticComparator()
    return label_integrated_interface(root, interfaces, mapping, comparator)


def test_scaling_report():
    rows = []
    for count in (5, 10, 20, 30):
        start = time.perf_counter()
        result = _name_subcorpus(count)
        elapsed = time.perf_counter() - start
        labeled = sum(1 for l in result.field_labels.values() if l)
        rows.append([
            count,
            f"{elapsed * 1000:.0f} ms",
            len(result.field_labels),
            labeled,
            len(result.internal_nodes()),
        ])
    report = format_table(
        ["#interfaces", "naming time", "clusters", "labeled fields", "int nodes"],
        rows,
        title="Scaling — hotels subcorpora, merge+naming wall clock",
    )
    write_result("scaling", report)

    # More sources never lose clusters.
    cluster_counts = [row[2] for row in rows]
    assert cluster_counts == sorted(cluster_counts)


@pytest.mark.parametrize("count", [5, 15, 30])
def test_bench_naming_scaling(benchmark, count):
    benchmark(_name_subcorpus, count)
