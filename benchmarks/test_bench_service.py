"""Service throughput — cold vs warm labeling, batch scaling across jobs.

The paper's algorithm was a one-shot batch step; the service layer exists
so the same pipeline can carry sustained traffic.  This bench quantifies
the two levers that layer adds:

* **result caching** — identical requests answered from the fingerprint-
  keyed LRU (cold pipeline run vs warm cache hit, requests/second both
  ways);
* **batch concurrency** — the seven-domain corpus labeled through the
  engine's batch executor at ``jobs = 1 / 2 / 4``, the path behind
  ``repro table6 --jobs`` and ``POST /batch``.
"""

from __future__ import annotations

import time

from repro.bench import format_table, write_result
from repro.datasets import DOMAINS
from repro.service.engine import LabelingEngine


def _requests_for_all_domains() -> list[dict]:
    return [{"domain": name, "seed": 0} for name in DOMAINS]


def test_service_throughput_report():
    rows = []

    # Cold vs warm: one domain, repeated requests.
    engine = LabelingEngine(cache_size=32)
    cold_start = time.perf_counter()
    cold = engine.label({"domain": "hotels", "seed": 0})
    cold_s = time.perf_counter() - cold_start
    assert cold["cached"] is False

    warm_iterations = 50
    warm_start = time.perf_counter()
    for _ in range(warm_iterations):
        warm = engine.label({"domain": "hotels", "seed": 0})
        assert warm["cached"] is True
    warm_s = (time.perf_counter() - warm_start) / warm_iterations
    rows.append([
        "label hotels (cold pipeline)", f"{cold_s * 1000:.1f} ms",
        f"{1 / cold_s:.1f} req/s",
    ])
    rows.append([
        "label hotels (warm cache hit)", f"{warm_s * 1000:.2f} ms",
        f"{1 / warm_s:.0f} req/s",
    ])
    speedup = cold_s / warm_s
    rows.append(["cache speedup", f"{speedup:.0f}x", ""])

    # Batch scaling: all seven domains, cache disabled so every item runs
    # the pipeline, at increasing concurrency.
    batch_times: dict[int, float] = {}
    for jobs in (1, 2, 4):
        batch_engine = LabelingEngine(cache_size=0)
        start = time.perf_counter()
        results = batch_engine.label_batch(_requests_for_all_domains(), jobs=jobs)
        batch_times[jobs] = time.perf_counter() - start
        assert all(r["ok"] for r in results)
        rows.append([
            f"batch 7 domains, jobs={jobs}",
            f"{batch_times[jobs] * 1000:.0f} ms",
            f"{7 / batch_times[jobs]:.1f} corpora/s",
        ])

    report = format_table(
        ["workload", "latency", "throughput"],
        rows,
        title=("Service — cold vs warm (cache-hit) labeling and batch "
               "scaling over the engine executor (seed 0)"),
    )
    write_result("service", report)

    # A cache hit must beat rerunning the pipeline by a wide margin, and
    # added workers must not make the batch slower than sequential by more
    # than scheduling noise.
    assert speedup > 3
    assert batch_times[4] <= batch_times[1] * 1.5


def test_bench_engine_cache_hit(benchmark):
    engine = LabelingEngine(cache_size=8)
    engine.label({"domain": "job", "seed": 0})  # prime

    def hit():
        return engine.label({"domain": "job", "seed": 0})

    result = benchmark(hit)
    assert result["cached"] is True


def test_bench_batch_jobs4(benchmark):
    def run():
        engine = LabelingEngine(cache_size=0)
        return engine.label_batch(_requests_for_all_domains(), jobs=4)

    results = benchmark(run)
    assert all(r["ok"] for r in results)
