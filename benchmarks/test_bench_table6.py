"""Table 6 — the paper's main results table, regenerated end to end.

Reprints every column group: per-domain source characteristics (columns
2-5), integrated-interface characteristics (columns 6-13), and the quality
statistics FldAcc / IntAcc / HA / HA* (columns 12-15).  Paper values are
shown alongside for comparison; see EXPERIMENTS.md for the analysis.

The timed benchmark measures the full per-domain pipeline (generate ->
reduce -> merge -> name -> survey) for a representative domain of each size
class.
"""

from __future__ import annotations

import pytest

from repro.bench import format_table, write_result
from repro.datasets import DOMAIN_TITLES
from repro.experiment import run_domain

from repro.datasets.table6 import PAPER_TABLE6


def test_table6_report(reference_runs):
    headers = [
        "Domain", "Lvs", "Int", "Dep", "LQ",
        "iLvs", "Grp", "Iso", "Root", "iInt", "iDep",
        "FldAcc", "IntAcc", "HA", "HA*", "Class",
    ]
    rows = []
    for name, run in reference_runs.items():
        paper = PAPER_TABLE6[name]
        stats = run.integrated
        rows.append([
            DOMAIN_TITLES[name],
            f"{run.avg_leaves:.1f}({paper.avg_leaves})",
            f"{run.avg_internal_nodes:.1f}({paper.avg_internal_nodes})",
            f"{run.avg_depth:.1f}({paper.avg_depth})",
            f"{run.lq:.0%}({paper.lq:.0%})",
            f"{stats.leaves}({paper.leaves})",
            f"{stats.groups}({paper.groups})",
            f"{stats.isolated_leaves}({paper.isolated_leaves})",
            f"{stats.root_leaves}({paper.root_leaves})",
            f"{stats.internal_nodes}({paper.internal_nodes})",
            f"{stats.depth}({paper.depth})",
            f"{run.fld_acc:.0%}({paper.fld_acc:.0%})",
            f"{run.int_acc:.0%}({paper.int_acc:.0%})",
            f"{run.ha:.1%}({paper.ha:.1%})",
            f"{run.ha_star:.1%}({paper.ha_star:.1%})",
            run.classification,
        ])
    report = format_table(
        headers, rows,
        title="Table 6 — measured (paper value in parentheses), seed 0",
    )
    write_result("table6", report)

    # Headline reproduction claims (the shapes, per DESIGN.md section 5):
    # the typed comparison must find no shape violations, and the magnitude
    # deviations are printed for the record.
    from repro.analysis import compare_to_paper, shape_violations

    for deviation in compare_to_paper(reference_runs):
        print(deviation)
    assert shape_violations(reference_runs) == []
    for name in ("airline", "carrental"):
        assert (
            reference_runs[name].classification
            == PAPER_TABLE6[name].classification
            == "inconsistent"
        )


@pytest.mark.parametrize("domain", ["job", "auto", "airline", "hotels"])
def test_bench_domain_pipeline(benchmark, domain):
    """Wall-clock of the full per-domain pipeline."""
    result = benchmark(run_domain, domain, 0)
    assert result.integrated is not None
