#!/usr/bin/env python3
"""Airline walkthrough — the paper's hardest domain, stage by stage.

Shows every intermediate the naming algorithm works with: the source
interfaces and their labeling quality, the 1:m Passengers reduction
(Figure 2), the merged tree, the group relations with their consistency
levels, the inference-rule log, the survey, and why the domain ends up
*inconsistent* (as in the paper).

Run:  python examples/airline_walkthrough.py
"""

from collections import Counter

from repro import SemanticComparator, run_domain
from repro.core import GroupRelation
from repro.core.result import NodeStatus
from repro.schema.groups import GroupKind


def main() -> None:
    run = run_domain("airline", seed=0)
    dataset = run.dataset
    labeling = run.labeling

    print("=" * 72)
    print("SOURCES")
    print("=" * 72)
    print(f"{len(dataset.interfaces)} interfaces; "
          f"avg {run.avg_leaves:.1f} fields, depth {run.avg_depth:.1f}, "
          f"labeling quality {run.lq:.0%} (paper: 10.7 fields, depth 3.6, 53%)")
    sample = dataset.interfaces[0]
    print(f"\nA sample source ({sample.name}):")
    for line in sample.root.pretty().splitlines():
        print("   ", line)

    print()
    print("=" * 72)
    print("1:m REDUCTION (the Passengers granularity mismatch, Figure 2)")
    print("=" * 72)
    if dataset.mapping.expansions:
        for record in dataset.mapping.expansions:
            print(f"  {record.interface}: field {record.field_label!r} expanded "
                  f"over {len(record.clusters)} clusters")
    else:
        print("  (no collapsed fields were sampled at this seed)")

    print()
    print("=" * 72)
    print("GROUP RELATIONS AND THEIR SOLUTIONS")
    print("=" * 72)
    for name, result in labeling.group_results.items():
        group = result.group
        if group.kind is GroupKind.ROOT:
            continue
        level = result.level.name if result.level else "partial"
        print(f"\n[{name}] consistent={result.consistent} level={level}")
        print(result.relation.as_table())
        chosen = labeling.chosen_solutions.get(name)
        if chosen:
            labels = {c: l for c, l in chosen.labels.items()}
            print(f"  -> solution: {labels}")

    print()
    print("=" * 72)
    print("THE LABELED INTEGRATED INTERFACE")
    print("=" * 72)
    for line in labeling.root.pretty().splitlines():
        print("   ", line)

    print()
    print("=" * 72)
    print("WHY THE DOMAIN IS INCONSISTENT (Definition 8)")
    print("=" * 72)
    for node in labeling.internal_nodes():
        status = labeling.node_status.get(node.name)
        if status in (NodeStatus.UNLABELED_BLOCKED,
                      NodeStatus.UNLABELED_NO_POTENTIALS):
            print(f"  unlabeled internal node over "
                  f"{sorted(node.descendant_leaf_clusters())}: {status.value}")
    print(f"  classification: {run.classification} "
          f"(paper: inconsistent, IntAcc 84.6%)")
    print(f"  IntAcc: {run.int_acc:.0%}")

    print()
    print("=" * 72)
    print("INFERENCE RULES USED (Figure 10's airline slice)")
    print("=" * 72)
    counts = Counter(labeling.inference_log.counts)
    for rule, count in counts.most_common():
        print(f"  {rule.value}: {count}")

    print()
    print("=" * 72)
    print("SURVEY (11 simulated respondents)")
    print("=" * 72)
    print(f"  HA  = {run.ha:.1%} (paper 96.6%)")
    print(f"  HA* = {run.ha_star:.1%} (paper 98.3%)")
    if run.study.flag_counts:
        print("  flagged fields (votes):")
        for cluster, votes in run.study.flag_counts.most_common():
            label = labeling.field_labels.get(cluster)
            print(f"    {cluster} (label: {label!r}): {votes}")
        print("  -- the Return From / Return To group confused the paper's")
        print("     respondents too (4 of 11).")


if __name__ == "__main__":
    main()
