#!/usr/bin/env python3
"""Custom domain — using the library on your own interfaces, two ways.

Path A: hand-written interfaces + the built-in matcher recovering the
        cluster mapping (fully automatic, no ground truth).
Path B: a custom :class:`DomainSpec` catalog, sampled like the built-in
        evaluation domains.

The scenario is a university course-search domain, which the paper never
evaluated — demonstrating that the machinery is domain-agnostic as long as
the lexicon knows the vocabulary (we extend it on the fly).

Run:  python examples/custom_domain.py
"""

from repro import SemanticComparator, label_integrated_interface, merge_interfaces
from repro.core.label import LabelAnalyzer
from repro.datasets.catalog import Concept, DomainSpec, GroupSpec, variants
from repro.datasets.generator import generate_domain
from repro.lexicon.data import build_default_wordnet
from repro.matching import match_interfaces
from repro.schema import QueryInterface, SchemaNode, make_field, make_group


def course_lexicon():
    """The default lexicon plus course-search vocabulary."""
    wordnet = build_default_wordnet()
    wordnet.load(
        synsets=[
            ("course", "class"),
            ("instructor", "teacher", "professor", "lecturer"),
            ("department", "dept"),
            ("semester", "term"),
            ("credit", "credits", "unit"),
            ("campus",),
        ],
        hypernym_pairs=[("person", "instructor"), ("time", "semester")],
    )
    return wordnet


def path_a_matcher() -> None:
    print("=" * 72)
    print("PATH A — hand-written interfaces, matcher-recovered clusters")
    print("=" * 72)
    comparator = SemanticComparator(LabelAnalyzer(course_lexicon()))

    def qi(name, group_label, fields):
        nodes = [make_field(l, name=f"{name}:{i}") for i, l in enumerate(fields)]
        return QueryInterface(
            name,
            SchemaNode(None, [make_group(group_label, nodes, name=f"{name}:g")],
                       name=f"{name}:r"),
        )

    interfaces = [
        qi("uni-a", "Find Courses",
           ["Course Title", "Instructor", "Department", "Semester"]),
        qi("uni-b", "Course Search",
           ["Title", "Professor", "Department", "Term"]),
        qi("uni-c", "Find Courses",
           ["Course Title", "Teacher", "Dept", "Credits"]),
    ]

    mapping = match_interfaces(interfaces, comparator)
    print(f"  recovered {len(mapping)} clusters:")
    for cluster in mapping.clusters:
        print(f"    {cluster.name}: {cluster.labels()}")

    integrated = merge_interfaces(interfaces, mapping)
    result = label_integrated_interface(integrated, interfaces, mapping, comparator)
    print("\n  labeled integrated interface:")
    for line in integrated.pretty().splitlines():
        print("   ", line)
    print(f"\n  classification: {result.classification.value}")


def path_b_catalog() -> None:
    print()
    print("=" * 72)
    print("PATH B — a custom catalog, sampled like the built-in domains")
    print("=" * 72)
    spec = DomainSpec(
        name="courses",
        interface_count=8,
        groups=(
            GroupSpec(
                key="g_course",
                concepts=(
                    Concept("c_title",
                            variants(("Course Title", "wordy"), ("Title", "terse"))),
                    Concept("c_number",
                            variants(("Course Number", "wordy"), ("Number", "terse")),
                            prevalence=0.7),
                ),
                group_labels=variants("Course", "Find Courses"),
                labeled_prob=0.7,
            ),
            GroupSpec(
                key="g_when",
                concepts=(
                    Concept("c_semester",
                            variants(("Semester", "a"), ("Term", "b"))),
                    Concept("c_year", variants("Year"), prevalence=0.6),
                ),
                group_labels=variants("When", "Schedule"),
                labeled_prob=0.6,
            ),
        ),
        root_concepts=(
            Concept("c_instructor",
                    variants("Instructor", "Professor", "Teacher"),
                    prevalence=0.8),
            Concept("c_department", variants("Department", "Dept"),
                    prevalence=0.7),
        ),
    )
    dataset = generate_domain(spec, seed=42)
    comparator = SemanticComparator(LabelAnalyzer(course_lexicon()))
    integrated = dataset.integrated()
    result = label_integrated_interface(
        integrated, dataset.interfaces, dataset.mapping, comparator
    )
    print(f"  sampled {len(dataset.interfaces)} interfaces, "
          f"{len(dataset.mapping)} clusters")
    print("\n  labeled integrated interface:")
    for line in integrated.pretty().splitlines():
        print("   ", line)
    print(f"\n  classification: {result.classification.value}")


if __name__ == "__main__":
    path_a_matcher()
    path_b_catalog()
