#!/usr/bin/env python3
"""The whole deep-web story — every step of the paper's Section 2.

A crawler hands us a *mixed pile* of extracted query interfaces (two
domains shuffled together, as HTML). The larger system the paper belongs
to then runs:

  1. cluster the interfaces into domain classes            (repro.matching)
  2. match equivalent fields within each domain            (repro.matching)
  3. merge each domain's interfaces into an integrated tree (repro.merge)
  4. NAME the integrated interface                         (repro.core) ← the paper
  5. render the well-designed integrated interface         (repro.html)

Run:  python examples/deep_web_pipeline.py
"""

from pathlib import Path

from repro import SemanticComparator, label_integrated_interface, merge_interfaces
from repro.html import parse_form, render_form
from repro.matching import cluster_interfaces, match_interfaces

BOOK_FORMS = [
    """
    <form>
      <label for="a">Author</label><input id="a" type="text" name="a">
      <label for="t">Title</label><input id="t" type="text" name="t">
      <label for="i">ISBN</label><input id="i" type="text" name="i">
      <fieldset><legend>Price Range</legend>
        Min Price <input type="text" name="lo">
        Max Price <input type="text" name="hi">
      </fieldset>
    </form>
    """,
    """
    <form>
      <label for="w">Writer</label><input id="w" type="text" name="w">
      <label for="bt">Book Title</label><input id="bt" type="text" name="bt">
      <label for="p">Publisher</label><input id="p" type="text" name="p">
      <fieldset><legend>Price</legend>
        Min Price <input type="text" name="lo">
        Max Price <input type="text" name="hi">
      </fieldset>
    </form>
    """,
    """
    <form>
      <label for="an">Author Name</label><input id="an" type="text" name="an">
      <label for="ti">Title</label><input id="ti" type="text" name="ti">
      <label for="fm">Format</label>
      <select id="fm" name="fm">
        <option>Hardcover</option><option>Paperback</option>
      </select>
    </form>
    """,
]

JOB_FORMS = [
    """
    <form>
      <label for="k">Keywords</label><input id="k" type="text" name="k">
      <label for="jt">Job Type</label>
      <select id="jt" name="jt">
        <option>Full-Time</option><option>Part-Time</option>
      </select>
      <label for="st">State</label><input id="st" type="text" name="st">
    </form>
    """,
    """
    <form>
      <label for="kw">Keyword</label><input id="kw" type="text" name="kw">
      <label for="et">Employment Type</label>
      <select id="et" name="et">
        <option>Full-Time</option><option>Part-Time</option>
      </select>
      <label for="co">Company</label><input id="co" type="text" name="co">
    </form>
    """,
]


def main() -> None:
    comparator = SemanticComparator()

    # Step 0: extraction (paper refs [11, 26]).
    pile = []
    for i, html in enumerate(BOOK_FORMS):
        pile.append(parse_form(html, f"site-{i}"))
    for i, html in enumerate(JOB_FORMS):
        pile.append(parse_form(html, f"site-{len(BOOK_FORMS) + i}"))
    print(f"extracted {len(pile)} interfaces from the crawl")

    # Step 1: domain classification (paper ref [18]).  Tiny forms share few
    # stems, so a lower threshold than the default suits this toy crawl.
    domains = cluster_interfaces(pile, comparator.analyzer, threshold=0.10)
    print(f"clustered into {len(domains)} domain classes:")
    for cluster in domains:
        print(f"  {cluster.names()}  — top terms: {cluster.top_terms(4)}")

    # Steps 2-5 per domain.
    for number, cluster in enumerate(domains):
        interfaces = cluster.interfaces
        print()
        print("=" * 72)
        print(f"DOMAIN {number}: {', '.join(cluster.top_terms(3))}")
        print("=" * 72)

        mapping = match_interfaces(interfaces, comparator)       # step 2
        mapping.expand_one_to_many(interfaces)
        root = merge_interfaces(interfaces, mapping)             # step 3
        result = label_integrated_interface(                     # step 4 (THE PAPER)
            root, interfaces, mapping, comparator
        )
        for line in root.pretty().splitlines():
            print("  ", line)
        print(f"   -> {result.classification.value}")

        out = Path(f"/tmp/integrated_domain_{number}.html")     # step 5
        out.write_text(render_form(root, title=f"Domain {number} Search"))
        print(f"   -> wrote {out}")


if __name__ == "__main__":
    main()
