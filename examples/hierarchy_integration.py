#!/usr/bin/env python3
"""Concept-hierarchy integration — the paper's Section-9 extension, live.

Three online stores publish product taxonomies with heterogeneous names
("Laptops" / "Notebook Computers", "Computers" / "Computer Equipment").
The naming framework integrates them into one taxonomy whose category and
concept names are horizontally and vertically consistent.

Run:  python examples/hierarchy_integration.py
"""

from repro.extensions import ConceptHierarchy, integrate_hierarchies
from repro.schema.interface import make_field, make_group
from repro.schema.tree import SchemaNode


def taxonomy(name, sections):
    top = []
    for i, (category, concepts) in enumerate(sections):
        leaves = [make_field(c, name=f"{name}:{i}:{j}")
                  for j, c in enumerate(concepts)]
        top.append(make_group(category, leaves, name=f"{name}:{i}"))
    return ConceptHierarchy(name, SchemaNode(None, top, name=f"{name}:root"))


def main() -> None:
    stores = [
        taxonomy("megastore", [
            ("Computers", ["Laptops", "Desktops", "Monitors"]),
            ("Phones", ["Smartphones", "Phone Cases"]),
            ("Cameras", ["Digital Cameras", "Camera Lenses"]),
        ]),
        taxonomy("technook", [
            ("Computer Equipment", ["Laptops", "Desktop Computers", "Tablets"]),
            ("Mobile Phones", ["Smartphones", "Phone Cases"]),
        ]),
        taxonomy("gadgetbarn", [
            ("Computers", ["Laptops", "Monitors", "Tablets"]),
            ("Phones", ["Smartphones"]),
            ("Cameras", ["Digital Cameras", "Tripods"]),
        ]),
    ]

    print("SOURCE TAXONOMIES")
    print("=" * 72)
    for store in stores:
        print(f"\n[{store.name}]")
        for line in store.root.pretty().splitlines()[1:]:
            print("  ", line)

    integrated = integrate_hierarchies(stores)

    print()
    print("INTEGRATED TAXONOMY")
    print("=" * 72)
    for line in integrated.pretty().splitlines():
        print("  ", line)
    print(f"\n  classification: {integrated.classification}")
    print(f"  merged concepts: {len(integrated.mapping)} clusters from "
          f"{sum(len(s.concepts()) for s in stores)} source concepts")

    print("\nCLUSTERS (recovered by the Definition-1 matcher)")
    print("=" * 72)
    for cluster in integrated.mapping.clusters:
        if cluster.frequency() > 1:
            print(f"  {cluster.name}: {cluster.labels()} "
                  f"({cluster.frequency()} stores)")


if __name__ == "__main__":
    main()
