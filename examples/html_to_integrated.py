#!/usr/bin/env python3
"""HTML in, HTML out — the full deep-web story on real form markup.

Three airline search forms arrive as HTML (the way a crawler would deliver
them).  The pipeline extracts their schema trees, matches equivalent
fields, merges the trees, names every node, and renders the *labeled
integrated query interface* back as an HTML form — the artifact the paper's
introduction promises the end user.

Run:  python examples/html_to_integrated.py        # prints trees + writes
                                                   # /tmp/integrated_interface.html
"""

from pathlib import Path

from repro import SemanticComparator, label_integrated_interface, merge_interfaces
from repro.html import parse_form, render_form
from repro.matching import match_interfaces

SITE_A = """
<form>
  <fieldset><legend>Where do you want to go?</legend>
    Departing from <input type="text" name="orig">
    Going to <input type="text" name="dest">
  </fieldset>
  <fieldset><legend>How many people are going?</legend>
    <label for="ad">Adults</label><input type="number" id="ad" name="adults">
    <label for="ch">Children</label><input type="number" id="ch" name="children">
  </fieldset>
  <label for="cl">Class</label>
  <select id="cl" name="class">
    <option>Economy</option><option>Business</option><option>First</option>
  </select>
</form>
"""

SITE_B = """
<form>
  <fieldset><legend>Route</legend>
    From <input type="text" name="from">
    To <input type="text" name="to">
  </fieldset>
  <fieldset><legend>Passengers</legend>
    <label for="a">Adults</label><input type="number" id="a" name="a">
    <label for="s">Seniors</label><input type="number" id="s" name="s">
    <label for="c">Children</label><input type="number" id="c" name="c">
  </fieldset>
  <label for="fc">Flight Class</label>
  <select id="fc" name="fc">
    <option>Economy</option><option>Business</option><option>First</option>
  </select>
</form>
"""

SITE_C = """
<form>
  <fieldset><legend>Itinerary</legend>
    Departure City <input type="text" name="dc">
    Arrival City <input type="text" name="ac">
  </fieldset>
  <fieldset><legend>Travelers</legend>
    <label for="ad2">Adults</label><input type="number" id="ad2" name="ad">
    <label for="in2">Infants</label><input type="number" id="in2" name="inf">
  </fieldset>
  <label for="ct">Class of Ticket</label>
  <select id="ct" name="ct">
    <option>Economy</option><option>First</option>
  </select>
</form>
"""


def main() -> None:
    comparator = SemanticComparator()
    interfaces = [
        parse_form(SITE_A, "site-a"),
        parse_form(SITE_B, "site-b"),
        parse_form(SITE_C, "site-c"),
    ]

    print("EXTRACTED SCHEMA TREES")
    print("=" * 72)
    for qi in interfaces:
        print(f"\n[{qi.name}] ({qi.leaf_count()} fields, LQ {qi.labeling_quality():.0%})")
        for line in qi.root.pretty().splitlines()[1:]:
            print("  ", line)

    mapping = match_interfaces(interfaces, comparator)
    mapping.expand_one_to_many(interfaces)
    print("\nMATCHED CLUSTERS")
    print("=" * 72)
    for cluster in mapping.clusters:
        print(f"  {cluster.name}: {cluster.labels()}")

    integrated = merge_interfaces(interfaces, mapping)
    result = label_integrated_interface(integrated, interfaces, mapping, comparator)

    print("\nLABELED INTEGRATED INTERFACE")
    print("=" * 72)
    for line in integrated.pretty().splitlines():
        print("  ", line)
    print(f"\n  classification: {result.classification.value}")

    html = render_form(integrated, title="Integrated Flight Search")
    out = Path("/tmp/integrated_interface.html")
    out.write_text(html)
    print(f"\nwrote {out} ({len(html)} bytes) — open it in a browser.")


if __name__ == "__main__":
    main()
