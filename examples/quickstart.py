#!/usr/bin/env python3
"""Quickstart — the naming algorithm in three bites.

1. Definition-1 label relations (the semantic substrate).
2. Naming one field group by hand: the paper's Table 2 passenger group.
3. The full pipeline on a generated domain.

Run:  python examples/quickstart.py
"""

from repro import SemanticComparator, run_domain
from repro.core import GroupRelation, name_group
from repro.schema import Mapping, QueryInterface, SchemaNode, make_field, make_group
from repro.schema.groups import Group, GroupKind


def bite_1_label_relations() -> None:
    print("=" * 72)
    print("1. Definition 1 — semantic relations between labels")
    print("=" * 72)
    comparator = SemanticComparator()
    pairs = [
        ("From", "From"),
        ("Type of Job", "Job Type"),
        ("Preferred Airline", "Airline Preference"),
        ("Area of Study", "Field of Work"),
        ("Class", "Class of Tickets"),
        ("Location", "Zip Code"),
        ("Price", "Airline"),
    ]
    for a, b in pairs:
        relation = comparator.relation_between(a, b)
        print(f"  {a!r:24} ~ {b!r:24} -> {relation.name}")
    print()


def bite_2_table2_group() -> None:
    print("=" * 72)
    print("2. Naming a group — the paper's Table 2 (airline passengers)")
    print("=" * 72)
    rows = {
        "aa": {"c_adult": "Adults", "c_child": "Children"},
        "airfareplanet": {"c_adult": "Adult", "c_child": "Child"},
        "airtravel": {"c_adult": "Adult", "c_child": "Child", "c_infant": "Infant"},
        "british": {"c_senior": "Seniors", "c_adult": "Adults", "c_child": "Children"},
        "economytravel": {"c_adult": "Adults", "c_child": "Children",
                          "c_infant": "Infants"},
        "vacations": {"c_senior": "Seniors", "c_adult": "Adults",
                      "c_child": "Children"},
    }
    clusters = ["c_senior", "c_adult", "c_child", "c_infant"]

    mapping = Mapping()
    for interface_name, labels in rows.items():
        fields = []
        for cluster in clusters:
            if cluster in labels:
                field = make_field(labels[cluster], cluster=cluster,
                                   name=f"{interface_name}:{cluster}")
                fields.append(field)
                mapping.assign(cluster, interface_name, field)
        QueryInterface(
            interface_name,
            SchemaNode(None, [make_group(None, fields, name=f"{interface_name}:g")],
                       name=f"{interface_name}:r"),
        )

    group = Group(name="passengers", kind=GroupKind.REGULAR,
                  clusters=tuple(clusters), parent_name="root")
    relation = GroupRelation.from_mapping(group, mapping)
    print(relation.as_table())
    print()
    result = name_group(relation, SemanticComparator())
    print(f"  consistent: {result.consistent} (level: {result.level.name})")
    print(f"  solution:   {result.best.labels}")
    print("  -- no single source labels all four fields, yet the combination")
    print("     of british + economytravel yields (Seniors, Adults, Children,")
    print("     Infants), exactly as in the paper.")
    print()


def bite_3_full_pipeline() -> None:
    print("=" * 72)
    print("3. Full pipeline — the Auto domain, end to end")
    print("=" * 72)
    run = run_domain("auto", seed=0)
    print(f"  sources: {len(run.dataset.interfaces)} interfaces, "
          f"avg {run.avg_leaves:.1f} fields each, LQ {run.lq:.0%}")
    print(f"  integrated: {run.integrated.leaves} fields in "
          f"{run.integrated.groups} groups; classification: "
          f"{run.classification}")
    print(f"  FldAcc {run.fld_acc:.0%} | IntAcc {run.int_acc:.0%} | "
          f"HA {run.ha:.1%} | HA* {run.ha_star:.1%}")
    print()
    print("  The labeled integrated interface:")
    for line in run.labeling.root.pretty().splitlines():
        print("   ", line)


if __name__ == "__main__":
    bite_1_label_relations()
    bite_2_table2_group()
    bite_3_full_pipeline()
