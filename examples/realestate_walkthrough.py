#!/usr/bin/env python3
"""Real Estate walkthrough — Figure 11 and the paper's documented blemishes.

The Real Estate domain carries two phenomena the paper singles out:

* the Lease-Rate group whose left field is unlabeled on *every* source —
  the algorithm cannot invent a label, so the field stays blank (and the
  sibling "To" plus the field's instances carry the semantics), which is
  the one FldAcc deduction in the paper's Table 6 (96.4%);
* the isolated Garage cluster under the features section (Figure 3's C_int
  example), named by the RAN variant with LI6/LI7 refinement.

Run:  python examples/realestate_walkthrough.py
"""

from repro import run_domain
from repro.schema.groups import GroupKind


def main() -> None:
    run = run_domain("realestate", seed=0)
    labeling = run.labeling

    print("=" * 72)
    print("THE LABELED INTEGRATED INTERFACE (cf. Figure 11)")
    print("=" * 72)
    for line in labeling.root.pretty().splitlines():
        print("   ", line)

    print()
    print("=" * 72)
    print("GROUP PARTITION (cf. Figure 3)")
    print("=" * 72)
    partition = labeling.partition
    print(f"  C_groups: {[g.clusters for g in partition.regular]}")
    print(f"  C_root:   {partition.c_root()}")
    print(f"  C_int:    {partition.c_int()}")

    print()
    print("=" * 72)
    print("THE UNLABELABLE FIELD (the paper's FldAcc 96.4% case)")
    print("=" * 72)
    unlabeled = labeling.unlabeled_fields()
    if unlabeled:
        for cluster in unlabeled:
            members = run.dataset.mapping[cluster].members
            print(f"  {cluster}: unlabeled; sources label it "
                  f"{[n.label for n in members.values()]} "
                  f"-> nothing the algorithm can do (as the paper notes)")
    else:
        print("  (this seed's corpus labels every field somewhere —")
        print("   rerun with other seeds to see the Lease-Rate gap)")
    print(f"  FldAcc: {run.fld_acc:.1%} (paper 96.4%)")

    print()
    print("=" * 72)
    print("ISOLATED-CLUSTER NAMING (the Garage / RAN variant)")
    print("=" * 72)
    if labeling.isolated_outcomes:
        for cluster, outcome in labeling.isolated_outcomes.items():
            print(f"  {cluster}:")
            print(f"    candidate labels: {run.dataset.mapping[cluster].labels()}")
            print(f"    hierarchy roots:  {outcome.roots}")
            if outcome.li6_replacements:
                for root, pick in outcome.li6_replacements:
                    print(f"    LI6: generic {root!r} domain-bounded to {pick!r}")
            if outcome.discarded_value_labels:
                print(f"    LI7 discarded:   {outcome.discarded_value_labels}")
            print(f"    elected:          {outcome.label!r}")
    else:
        print("  (no isolated clusters at this seed)")

    print()
    print("=" * 72)
    print("VERTICAL CONSISTENCY")
    print("=" * 72)
    for node in labeling.internal_nodes():
        label = labeling.node_labels.get(node.name)
        status = labeling.node_status.get(node.name)
        clusters = sorted(node.descendant_leaf_clusters())
        shown = clusters if len(clusters) <= 4 else [*clusters[:4], "..."]
        print(f"  {label!r:30} {status.value if status else '?':20} over {shown}")
    print(f"\n  classification: {run.classification}")
    print(f"  HA {run.ha:.1%} / HA* {run.ha_star:.1%} (paper 97.8% / 97.8%)")

    groups_ok = sum(
        1 for r in labeling.group_results.values()
        if r.consistent and r.group.kind is GroupKind.REGULAR
    )
    total = sum(
        1 for r in labeling.group_results.values()
        if r.group.kind is GroupKind.REGULAR
    )
    print(f"  regular groups with consistent solutions: {groups_ok}/{total}")


if __name__ == "__main__":
    main()
