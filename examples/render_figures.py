#!/usr/bin/env python3
"""Regenerate the paper's figure-style artifacts as Graphviz sources.

Produces DOT files under /tmp/repro_figures/ for the integrated trees of
Auto (Figure 6), Real Estate (Figures 3 and 11) and Airline, plus one
source interface for contrast (Figure 2's style).  Render with::

    dot -Tpng /tmp/repro_figures/auto_integrated.dot -o auto.png

Run:  python examples/render_figures.py
"""

from pathlib import Path

from repro import run_domain
from repro.viz import write_dot

OUT = Path("/tmp/repro_figures")


def main() -> None:
    OUT.mkdir(exist_ok=True)
    written = []

    for domain, figure in (
        ("auto", "Figure 6 — the integrated Auto schema tree"),
        ("realestate", "Figure 11 — the integrated Real Estate schema tree"),
        ("airline", "The integrated Airline schema tree"),
    ):
        run = run_domain(domain, seed=0, respondent_count=1)
        path = OUT / f"{domain}_integrated.dot"
        write_dot(run.labeling.root, path, title=figure)
        written.append(path)

        # One source interface for contrast (the Figure 2 visual style).
        source = run.dataset.interfaces[0]
        source_path = OUT / f"{domain}_source.dot"
        write_dot(
            source.root, source_path,
            title=f"A source interface ({source.name})",
        )
        written.append(source_path)

    for path in written:
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    print("\nrender with:  dot -Tpng <file>.dot -o <file>.png")


if __name__ == "__main__":
    main()
