#!/usr/bin/env python3
"""The labeling service end to end: serve, query, hit the cache, read metrics.

The ROADMAP's north star is labeling as an *online* service: a deep-web
integrator crawls query interfaces continuously and labels each freshly
integrated batch.  This walkthrough starts the real HTTP server on an
ephemeral port (the same thing ``python -m repro serve`` runs), then talks
to it with the urllib client:

1. liveness (``GET /healthz``);
2. a cold ``POST /label`` for a domain corpus — the pipeline runs;
3. the identical request again — served from the LRU result cache;
4. a raw-corpus request with lint findings included;
5. a ``POST /batch`` with a poisoned item, isolated as an error entry;
6. ``GET /metrics``: request counts, latency percentiles, cache counters.

Run:  python examples/serve_and_query.py
"""

from repro.datasets.registry import load_domain
from repro.schema.serialize import corpus_to_dict
from repro.service import LabelingServer, ServiceClient


def main() -> None:
    print("=" * 72)
    print("repro.service — the naming pipeline as a long-lived HTTP service")
    print("=" * 72)

    with LabelingServer(port=0, cache_size=32) as server:
        client = ServiceClient(server.url)
        print(f"\nserver up on {server.url}")

        health = client.healthz()
        print(f"GET /healthz -> {health['status']}")

        print("\n--- POST /label (cold: the pipeline runs) ---")
        cold = client.label(domain="airline", seed=0)
        stats = cold["stats"]
        print(f"airline: {cold['classification']}, "
              f"{stats['labeled_fields']}/{stats['leaves']} fields labeled "
              f"in {stats['elapsed_ms']:.0f} ms (cached={cold['cached']})")
        for cluster, label in list(cold["field_labels"].items())[:5]:
            print(f"  {cluster:<16} -> {label!r}")

        print("\n--- POST /label again (warm: served from the LRU cache) ---")
        warm = client.label(domain="airline", seed=0)
        print(f"same fingerprint: {warm['fingerprint'] == cold['fingerprint']}, "
              f"cached={warm['cached']}")

        print("\n--- POST /label with a raw corpus document + lint ---")
        dataset = load_domain("auto", seed=0)
        document = corpus_to_dict(dataset.interfaces, dataset.mapping)
        response = client.label(corpus=document, lint=True)
        warns = [f for f in response["lint"] if f["severity"] == "warn"]
        print(f"auto corpus ({response['stats']['interfaces']} interfaces): "
              f"{response['classification']}, "
              f"{len(response['lint'])} lint finding(s), {len(warns)} warn(s)")

        print("\n--- POST /batch: one poisoned item cannot kill the batch ---")
        batch = client.batch(
            [
                {"domain": "job", "seed": 0},
                {"domain": "atlantis"},        # no such domain
                {"domain": "hotels", "seed": 0},
            ],
            jobs=2,
        )
        for i, result in enumerate(batch["results"]):
            if result.get("ok"):
                print(f"  item {i}: ok    {result['classification']}")
            else:
                print(f"  item {i}: ERROR {result['error']}")

        print("\n--- GET /metrics ---")
        metrics = client.metrics()
        http, engine = metrics["http"], metrics["engine"]
        print(f"requests: {http['requests_total']}  "
              f"by endpoint: {http['by_endpoint']}")
        latency = http["latency"]
        print(f"latency p50/p90/max: {latency['p50_ms']:.1f}/"
              f"{latency['p90_ms']:.1f}/{latency['max_ms']:.1f} ms "
              f"(window {latency['window']})")
        cache = engine["cache"]
        print(f"cache: {cache['hits']} hit(s), {cache['misses']} miss(es), "
              f"hit rate {cache['hit_rate']:.0%}, size {cache['size']}")

    print("\nserver stopped cleanly")


if __name__ == "__main__":
    main()
