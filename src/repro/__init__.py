"""repro — reproduction of "Meaningful Labeling of Integrated Query Interfaces"
(Dragut, Yu, Meng; VLDB 2006).

The package labels the fields and internal nodes of an integrated deep-web
query interface so that labels are *horizontally* consistent (within field
groups) and *vertically* consistent (along ancestor-descendant paths).

Quickstart::

    from repro import run_domain

    run = run_domain("airline")
    print(run.labeling.root.pretty())      # the labeled integrated interface
    print(run.fld_acc, run.int_acc, run.ha)

Packages
--------
``repro.lexicon``   Porter stemmer, MiniWordNet, label normalization.
``repro.schema``    schema trees, query interfaces, clusters, groups.
``repro.merge``     integrated-tree construction (the structural step [8]).
``repro.matching``  optional label-based cluster recovery.
``repro.core``      THE PAPER: Definitions 1-8, rules LI1-LI7, the 3-phase
                    naming pipeline and the evaluation metrics.
``repro.datasets``  the seeded 7-domain synthetic evaluation corpus.
``repro.survey``    simulated human-acceptance study (HA / HA*).
"""

from .core.label import Label, LabelAnalyzer
from .core.pipeline import NamingOptions, label_integrated_interface
from .core.result import LabelingResult, NodeStatus, TreeConsistency
from .core.semantics import LabelRelation, SemanticComparator
from .datasets.registry import DOMAINS, load_all_domains, load_domain
from .experiment import DomainRunResult, run_all_domains, run_domain
from .merge.merger import merge_interfaces
from .schema.interface import FieldKind, QueryInterface, make_field, make_group
from .schema.tree import SchemaNode
from .survey.study import run_study

__version__ = "1.0.0"

__all__ = [
    "DOMAINS",
    "DomainRunResult",
    "FieldKind",
    "Label",
    "LabelAnalyzer",
    "LabelRelation",
    "LabelingResult",
    "NamingOptions",
    "NodeStatus",
    "QueryInterface",
    "SchemaNode",
    "SemanticComparator",
    "TreeConsistency",
    "__version__",
    "label_integrated_interface",
    "load_all_domains",
    "load_domain",
    "make_field",
    "make_group",
    "merge_interfaces",
    "run_all_domains",
    "run_domain",
    "run_study",
]
