"""Programmatic paper-vs-measured comparison.

EXPERIMENTS.md narrates the reproduction; this module computes it.
:func:`compare_to_paper` diffs a full evaluation sweep against the
transcribed Table 6 (:mod:`repro.datasets.table6`) and returns typed
deviations, each tagged with whether it violates a *shape claim* — the
qualitative findings the reproduction stands on — or is mere magnitude
noise from the synthetic corpus.

The Table 6 benchmark asserts ``shape_violations == []``; CI therefore
fails exactly when a change breaks something the paper claims, not when a
percentage wiggles.
"""

from __future__ import annotations

from dataclasses import dataclass

from .datasets.table6 import PAPER_TABLE6
from .experiment import DomainRunResult

__all__ = ["Deviation", "compare_to_paper", "shape_violations"]

#: |measured - paper| above this (absolute, on 0-1 metrics) is a deviation
#: worth listing; below it is reproduction-grade agreement.
MAGNITUDE_TOLERANCE = 0.05


@dataclass(frozen=True)
class Deviation:
    """One measured value that strays from the paper's."""

    domain: str
    metric: str
    paper: float | str
    measured: float | str
    is_shape_violation: bool
    note: str = ""

    def __str__(self) -> str:  # pragma: no cover - display helper
        kind = "SHAPE" if self.is_shape_violation else "magnitude"
        return (
            f"[{kind}] {self.domain}.{self.metric}: "
            f"measured {self.measured} vs paper {self.paper} {self.note}"
        )


def compare_to_paper(runs: dict[str, DomainRunResult]) -> list[Deviation]:
    """All deviations of ``runs`` from the paper's Table 6.

    Shape claims checked (DESIGN.md section 5):

    * classification matches the paper's narrative per domain;
    * FldAcc ≥ 90% everywhere;
    * IntAcc = 100% exactly where the paper has 100%;
    * HA* ≥ HA;
    * Auto and Job at HA = 100%.

    Everything else (LQ, counts, exact percentages) is magnitude-only.
    """
    deviations: list[Deviation] = []
    for name, run in runs.items():
        paper = PAPER_TABLE6[name]

        if run.classification != paper.classification:
            # weakly_consistent vs consistent is narrative-compatible; the
            # shape claim is about *inconsistent* or not.
            measured_inconsistent = run.classification == "inconsistent"
            paper_inconsistent = paper.classification == "inconsistent"
            deviations.append(
                Deviation(
                    domain=name,
                    metric="classification",
                    paper=paper.classification,
                    measured=run.classification,
                    is_shape_violation=(
                        measured_inconsistent != paper_inconsistent
                    ),
                )
            )

        if run.fld_acc < 0.9:
            deviations.append(
                Deviation(
                    domain=name, metric="fld_acc",
                    paper=paper.fld_acc, measured=round(run.fld_acc, 3),
                    is_shape_violation=True,
                    note="(below the >=90% floor)",
                )
            )
        elif abs(run.fld_acc - paper.fld_acc) > MAGNITUDE_TOLERANCE:
            deviations.append(
                Deviation(
                    domain=name, metric="fld_acc",
                    paper=paper.fld_acc, measured=round(run.fld_acc, 3),
                    is_shape_violation=False,
                )
            )

        paper_perfect = paper.int_acc == 1.0
        measured_perfect = run.int_acc == 1.0
        if paper_perfect != measured_perfect:
            deviations.append(
                Deviation(
                    domain=name, metric="int_acc",
                    paper=paper.int_acc, measured=round(run.int_acc, 3),
                    is_shape_violation=paper_perfect and not measured_perfect,
                    note="(100%-vs-not split)",
                )
            )
        elif abs(run.int_acc - paper.int_acc) > MAGNITUDE_TOLERANCE:
            deviations.append(
                Deviation(
                    domain=name, metric="int_acc",
                    paper=paper.int_acc, measured=round(run.int_acc, 3),
                    is_shape_violation=False,
                )
            )

        if run.ha_star < run.ha - 1e-9:
            deviations.append(
                Deviation(
                    domain=name, metric="ha_star",
                    paper=paper.ha_star, measured=round(run.ha_star, 3),
                    is_shape_violation=True,
                    note="(HA* below HA)",
                )
            )
        if name in ("auto", "job") and run.ha < 1.0:
            deviations.append(
                Deviation(
                    domain=name, metric="ha",
                    paper=paper.ha, measured=round(run.ha, 3),
                    is_shape_violation=True,
                    note="(the paper's survey found zero problems here)",
                )
            )
        elif abs(run.ha - paper.ha) > MAGNITUDE_TOLERANCE:
            deviations.append(
                Deviation(
                    domain=name, metric="ha",
                    paper=paper.ha, measured=round(run.ha, 3),
                    is_shape_violation=False,
                )
            )
    return deviations


def shape_violations(runs: dict[str, DomainRunResult]) -> list[Deviation]:
    """Only the deviations that break the paper's qualitative claims."""
    return [d for d in compare_to_paper(runs) if d.is_shape_violation]
