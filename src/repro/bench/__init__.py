"""Benchmark-harness helpers shared by the ``benchmarks/`` suite."""

from .tables import format_table, write_result

__all__ = ["format_table", "write_result"]
