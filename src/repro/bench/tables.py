"""Plain-text table rendering + result persistence for the benchmarks.

Each benchmark regenerates one of the paper's tables/figures; the rendered
rows go both to stdout (visible with ``pytest -s``) and to
``benchmarks/results/<name>.txt`` so the artifacts survive captured runs.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["format_table", "write_result"]


def format_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Fixed-width table with a separator under the header."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def write_result(name: str, content: str, directory: str | Path | None = None) -> Path:
    """Print ``content`` and persist it under ``benchmarks/results/``."""
    if directory is None:
        directory = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.txt"
    path.write_text(content + "\n")
    print(content)
    return path
