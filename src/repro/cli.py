"""Command-line interface: experiments and labeling from the shell.

::

    python -m repro table6                 # the paper's main results table
    python -m repro figure10               # inference-rule involvement
    python -m repro domain airline --tree  # one domain, labeled tree printed
    python -m repro generate auto -o corpus.json
    python -m repro label corpus.json --html out.html
    python -m repro parse page.html        # extract forms from HTML
    python -m repro serve --port 8080      # the HTTP labeling service
    python -m repro batch a.json b.json --jobs 4
    python -m repro profile -o BENCH_perf.json
    python -m repro trace corpus.json      # span tree with per-phase timings
    python -m repro chaos --plans 10 --rate 0.1   # seeded fault sweep

Every command accepts ``--seed`` where a corpus is generated.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .core.inference import InferenceRule
from .core.pipeline import label_corpus
from .core.semantics import SemanticComparator
from .datasets.registry import DOMAIN_TITLES, DOMAINS, load_domain
from .experiment import run_all_domains, run_domain
from .html import parse_forms, render_form
from .schema.serialize import load_corpus, save_corpus
from .service.parallel import EXECUTORS, default_jobs, normalize_jobs

__all__ = ["main", "build_parser"]

#: Shared ``--jobs`` default for the concurrent subcommands (``batch``,
#: ``serve``, ``chaos``): derived from the usable CPU count, capped at 8.
#: ``table6`` stays at 1 — its default must remain the sequential,
#: byte-for-byte-reference path.
DEFAULT_JOBS = default_jobs()


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: 0 clamps to 1, negatives are rejected."""
    try:
        return normalize_jobs(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _add_executor_arg(subparser) -> None:
    subparser.add_argument(
        "--executor", choices=EXECUTORS, default="thread",
        help="batch backend: 'thread' (default) or 'process' "
             "(worker processes warmed with the compiled lexicon; "
             "identical output)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Meaningful Labeling of Integrated Query "
            "Interfaces' (Dragut, Yu, Meng; VLDB 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    table6 = sub.add_parser("table6", help="regenerate the paper's Table 6")
    table6.add_argument("--seed", type=int, default=0)
    table6.add_argument(
        "--respondents", type=int, default=11,
        help="simulated survey size (the paper used 11)",
    )
    table6.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="domains labeled concurrently (1 = sequential, identical output)",
    )
    _add_executor_arg(table6)

    figure10 = sub.add_parser("figure10", help="inference-rule involvement")
    figure10.add_argument("--seed", type=int, default=0)

    domain = sub.add_parser("domain", help="run one domain end to end")
    domain.add_argument("name", choices=sorted(DOMAINS))
    domain.add_argument("--seed", type=int, default=0)
    domain.add_argument("--tree", action="store_true",
                        help="print the labeled integrated tree")
    domain.add_argument("--html", type=Path, default=None,
                        help="write the labeled interface as an HTML form")

    generate = sub.add_parser("generate", help="save a synthetic corpus as JSON")
    generate.add_argument("name", choices=sorted(DOMAINS))
    generate.add_argument("-o", "--out", type=Path, required=True)
    generate.add_argument("--seed", type=int, default=0)

    label = sub.add_parser("label", help="merge + label a saved corpus")
    label.add_argument("corpus", type=Path)
    label.add_argument("--html", type=Path, default=None)
    label.add_argument("--lexicon", type=Path, default=None,
                       help="extra synsets/hypernyms (JSON) merged over the "
                            "built-in lexicon")

    parse = sub.add_parser("parse", help="extract query interfaces from HTML")
    parse.add_argument("page", type=Path)
    parse.add_argument("--json", action="store_true",
                       help="emit the schema trees as JSON")

    describe = sub.add_parser("describe", help="corpus statistics for a domain")
    describe.add_argument("name", choices=sorted(DOMAINS))
    describe.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep", help="Table 6 metrics across corpus seeds")
    sweep.add_argument("--seeds", type=int, nargs="+", default=[0, 1, 2])
    sweep.add_argument("--respondents", type=int, default=5)

    lint = sub.add_parser(
        "lint", help="check a form/corpus against the well-designedness properties"
    )
    lint.add_argument("page", type=Path,
                      help="an HTML page with a form, or a corpus JSON")

    report = sub.add_parser("report", help="full Markdown report for a domain")
    report.add_argument("name", choices=sorted(DOMAINS))
    report.add_argument("--seed", type=int, default=0)
    report.add_argument("-o", "--out", type=Path, default=None,
                        help="write to a file instead of stdout")

    serve = sub.add_parser(
        "serve", help="run the HTTP labeling service (POST /label, /batch)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8777,
                       help="0 picks an ephemeral port")
    serve.add_argument("--cache-size", type=int, default=128,
                       help="LRU result-cache capacity (0 disables caching)")
    serve.add_argument("--jobs", type=_jobs_arg, default=DEFAULT_JOBS,
                       help="default batch concurrency for POST /batch "
                            "(default: usable CPUs, capped at 8)")
    _add_executor_arg(serve)
    serve.add_argument("--disk-cache", type=Path, default=None,
                       help="persistent result-cache directory (warm "
                            "restarts answer from disk)")
    serve.add_argument("--max-concurrent", type=int, default=8,
                       help="admission cap: concurrent requests in flight")
    serve.add_argument("--max-queue", type=int, default=32,
                       help="admission queue depth; beyond it requests are "
                            "shed with HTTP 429")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")
    serve.add_argument("--trace", action="store_true",
                       help="request-scoped span tracing: every POST runs "
                            "under a trace retrievable via "
                            "GET /trace/<request_id>")
    serve.add_argument("--trace-log", type=Path, default=None,
                       help="append every request's spans to DIR/spans.jsonl "
                            "(CRC-safe JSONL; implies --trace)")

    batch = sub.add_parser(
        "batch", help="merge + label many saved corpora concurrently"
    )
    batch.add_argument("corpora", type=Path, nargs="+")
    batch.add_argument("--jobs", type=_jobs_arg, default=DEFAULT_JOBS,
                       help="corpora labeled concurrently "
                            "(default: usable CPUs, capped at 8)")
    _add_executor_arg(batch)
    batch.add_argument("--timeout", type=float, default=None,
                       help="per-corpus time budget in seconds")
    batch.add_argument("--lint", action="store_true",
                       help="include well-designedness findings per corpus")

    profile = sub.add_parser(
        "profile",
        help="cold-vs-warm labeling profile + cache hit ratios (perf report)",
    )
    profile.add_argument("--domains", nargs="+", default=None,
                         choices=sorted(DOMAINS),
                         help="domains to profile (default: all)")
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--repeats", type=int, default=3,
                         help="warm labelings per domain after the cold one")
    profile.add_argument("-o", "--out", type=Path, default=None,
                         help="also write the report as JSON (BENCH_perf.json)")
    profile.add_argument("--json", action="store_true",
                         help="print the JSON report instead of the summary")

    trace = sub.add_parser(
        "trace",
        help="label once under a span trace and print the span tree "
             "(per-phase timings)",
    )
    trace.add_argument("corpus", type=Path, nargs="?", default=None,
                       help="a saved corpus JSON (see 'repro generate')")
    trace.add_argument("--domain", choices=sorted(DOMAINS), default=None,
                       help="trace a registered domain instead of a corpus file")
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--json", action="store_true",
                       help="emit the trace as JSON instead of the tree view")
    trace.add_argument("--chrome", type=Path, default=None,
                       help="also write a chrome://tracing JSON array")

    chaos = sub.add_parser(
        "chaos",
        help="sweep seeded fault plans through the service stack "
             "(fault injection + retry/breaker verification)",
    )
    chaos.add_argument("--plans", type=int, default=10,
                       help="how many seeded fault plans to run")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed; plan i uses seed+i")
    chaos.add_argument("--rate", type=float, default=0.1,
                       help="per-item fault probability at each injection point")
    chaos.add_argument("--jobs", type=_jobs_arg, default=DEFAULT_JOBS,
                       help="batch concurrency per plan "
                            "(default: usable CPUs, capped at 8)")
    chaos.add_argument("--domains", nargs="+", default=None,
                       choices=sorted(DOMAINS),
                       help="seed domains per plan (default: all)")
    chaos.add_argument("-o", "--out", type=Path, default=None,
                       help="also write the full JSON report")

    return parser


# ----------------------------------------------------------------------
# Commands.
# ----------------------------------------------------------------------


def _cmd_table6(args) -> int:
    runs = run_all_domains(
        seed=args.seed,
        respondent_count=args.respondents,
        jobs=args.jobs,
        executor=args.executor,
    )
    header = (
        f"{'Domain':<12} {'srcL':>5} {'LQ':>4} {'intL':>5} {'grp':>4} "
        f"{'FldAcc':>7} {'IntAcc':>7} {'HA':>6} {'HA*':>6}  class"
    )
    print(header)
    print("-" * len(header))
    for name, run in runs.items():
        stats = run.integrated
        print(
            f"{DOMAIN_TITLES[name]:<12} {run.avg_leaves:>5.1f} {run.lq:>4.0%} "
            f"{stats.leaves:>5} {stats.groups:>4} {run.fld_acc:>7.0%} "
            f"{run.int_acc:>7.0%} {run.ha:>6.1%} {run.ha_star:>6.1%}  "
            f"{run.classification}"
        )
    return 0


def _cmd_figure10(args) -> int:
    runs = run_all_domains(seed=args.seed, respondent_count=1)
    combined = {}
    for run in runs.values():
        for rule, count in run.inference_log.counts.items():
            combined[rule] = combined.get(rule, 0) + count
    total = sum(combined.values()) or 1
    print(f"{'Rule':<5} {'Count':>6} {'Share':>7}")
    print("-" * 20)
    for rule in InferenceRule:
        count = combined.get(rule, 0)
        print(f"{rule.value:<5} {count:>6} {count / total:>7.1%}")
    return 0


def _cmd_domain(args) -> int:
    run = run_domain(args.name, seed=args.seed)
    print(f"{DOMAIN_TITLES[args.name]}: {run.classification}")
    print(f"  FldAcc {run.fld_acc:.0%} | IntAcc {run.int_acc:.0%} | "
          f"HA {run.ha:.1%} | HA* {run.ha_star:.1%}")
    if args.tree:
        print(run.labeling.root.pretty())
    if args.html is not None:
        html = render_form(
            run.labeling.root,
            title=f"Integrated {DOMAIN_TITLES[args.name]} Search",
        )
        args.html.write_text(html)
        print(f"wrote {args.html}")
    return 0


def _cmd_generate(args) -> int:
    dataset = load_domain(args.name, seed=args.seed)
    save_corpus(args.out, dataset.interfaces, dataset.mapping)
    print(f"wrote {args.out}: {len(dataset.interfaces)} interfaces, "
          f"{len(dataset.mapping)} clusters")
    return 0


def _cmd_label(args) -> int:
    interfaces, mapping = load_corpus(args.corpus)
    comparator = SemanticComparator()
    if args.lexicon is not None:
        from .core.label import LabelAnalyzer
        from .lexicon.io import load_wordnet

        comparator = SemanticComparator(LabelAnalyzer(load_wordnet(args.lexicon)))
    root, result = label_corpus(interfaces, mapping, comparator)
    print(root.pretty())
    print(f"classification: {result.classification.value}")
    if args.html is not None:
        args.html.write_text(render_form(root))
        print(f"wrote {args.html}")
    return 0


def _cmd_describe(args) -> int:
    from .core.metrics import labeling_quality

    dataset = load_domain(args.name, seed=args.seed)
    interfaces = dataset.interfaces
    print(f"{DOMAIN_TITLES[args.name]} (seed {args.seed}): "
          f"{len(interfaces)} interfaces")
    avg_leaves = sum(qi.leaf_count() for qi in interfaces) / len(interfaces)
    avg_int = sum(qi.internal_node_count() for qi in interfaces) / len(interfaces)
    avg_depth = sum(qi.depth() for qi in interfaces) / len(interfaces)
    print(f"  avg fields {avg_leaves:.1f} | avg internal nodes {avg_int:.1f} | "
          f"avg depth {avg_depth:.1f} | LQ {labeling_quality(interfaces):.0%}")
    dataset.prepare()
    print(f"  clusters: {len(dataset.mapping)}"
          f" | 1:m reductions: {len(dataset.mapping.expansions)}")
    print("  cluster frequencies (top 10):")
    clusters = sorted(
        dataset.mapping.clusters, key=lambda c: -c.frequency()
    )[:10]
    for cluster in clusters:
        labels = ", ".join(cluster.labels()[:4])
        print(f"    {cluster.name:<22} x{cluster.frequency():<3} {labels}")
    return 0


def _cmd_sweep(args) -> int:
    from .experiment import sweep_seeds

    rows = sweep_seeds(seeds=tuple(args.seeds), respondent_count=args.respondents)
    header = (
        f"{'Domain':<12} {'FldAcc':>14} {'IntAcc':>14} {'HA':>6}  classes"
    )
    print(f"seeds: {args.seeds}")
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        classes = ", ".join(
            f"{c}x{n}" for c, n in sorted(row.classifications.items())
        )
        print(
            f"{DOMAIN_TITLES[name]:<12} "
            f"{row.fld_acc_mean:>6.1%}/{row.fld_acc_min:<6.1%} "
            f"{row.int_acc_mean:>6.1%}/{row.int_acc_min:<6.1%} "
            f"{row.ha_mean:>6.1%}  {classes}"
        )
    return 0


def _cmd_lint(args) -> int:
    from .lint import lint_interface

    text = args.page.read_text()
    roots = []
    if text.lstrip().startswith("{"):
        interfaces, __ = load_corpus(args.page)
        roots = [(qi.name, qi.root) for qi in interfaces]
    else:
        roots = [
            (qi.name, qi.root) for qi in parse_forms(text, args.page.stem)
        ]
    if not roots:
        print("nothing to lint", file=sys.stderr)
        return 1
    total_warns = 0
    for name, root in roots:
        findings = lint_interface(root)
        print(f"[{name}] {len(findings)} finding(s)")
        for finding in findings:
            print(f"  {finding}")
            if finding.severity == "warn":
                total_warns += 1
    return 1 if total_warns else 0


def _cmd_report(args) -> int:
    from .report import domain_report

    run = run_domain(args.name, seed=args.seed)
    document = domain_report(run)
    if args.out is not None:
        args.out.write_text(document)
        print(f"wrote {args.out}")
    else:
        print(document)
    return 0


def _cmd_parse(args) -> int:
    html = args.page.read_text()
    interfaces = parse_forms(html, name_prefix=args.page.stem)
    if not interfaces:
        print("no forms found", file=sys.stderr)
        return 1
    if args.json:
        from .schema.serialize import interface_to_dict

        print(json.dumps([interface_to_dict(qi) for qi in interfaces], indent=2))
    else:
        for qi in interfaces:
            print(f"[{qi.name}] {qi.leaf_count()} fields, "
                  f"LQ {qi.labeling_quality():.0%}")
            print(qi.root.pretty())
    return 0


def _cmd_serve(args) -> int:
    from .service.server import LabelingServer

    server = LabelingServer(
        host=args.host,
        port=args.port,
        cache_size=args.cache_size,
        jobs=args.jobs,
        quiet=not args.verbose,
        max_concurrent=args.max_concurrent,
        max_queue=args.max_queue,
        executor=args.executor,
        disk_cache=args.disk_cache,
        tracing=args.trace,
        trace_log=args.trace_log,
    )
    print(f"repro labeling service on {server.url}")
    print("  POST /label   POST /batch   GET /healthz   GET /metrics"
          + ("   GET /trace/<id>" if args.trace or args.trace_log else ""))
    if args.trace_log is not None:
        print(f"  trace log: {server.trace_log.path}")
    print(f"  cache capacity {args.cache_size}, default batch jobs {args.jobs} "
          f"({args.executor} executor)")
    if args.disk_cache is not None:
        disk = server.engine.disk.stats()
        print(f"  disk cache: {disk['entries']} warm entr(ies) from "
              f"{args.disk_cache} in {disk['load_ms']:.0f} ms")
    print(f"  admission: {args.max_concurrent} concurrent, "
          f"queue {args.max_queue} (429 beyond)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _cmd_batch(args) -> int:
    from .service.engine import LabelingEngine

    payloads = []
    for path in args.corpora:
        try:
            payload: dict = {"corpus": json.loads(path.read_text())}
        except (OSError, json.JSONDecodeError) as exc:
            payload = {"__error__": f"{path}: {exc}"}
        if args.lint:
            payload["lint"] = True
        payloads.append(payload)

    engine = LabelingEngine(cache_size=0)
    results = engine.label_batch(
        [p for p in payloads if "__error__" not in p],
        jobs=args.jobs,
        timeout=args.timeout,
        executor=args.executor,
    )
    # Re-interleave unreadable files with engine results, in input order.
    merged: list[dict] = []
    it = iter(results)
    for payload in payloads:
        if "__error__" in payload:
            merged.append({"ok": False, "error": payload["__error__"],
                           "error_type": "unreadable"})
        else:
            merged.append(next(it))

    failures = 0
    for path, result in zip(args.corpora, merged):
        if result.get("ok"):
            stats = result["stats"]
            line = (
                f"[{path.name}] {result['classification']} | "
                f"{stats['labeled_fields']}/{stats['leaves']} fields labeled | "
                f"{stats['elapsed_ms']:.0f} ms"
            )
            if args.lint:
                warns = sum(
                    1 for f in result.get("lint", []) if f["severity"] == "warn"
                )
                line += f" | {warns} lint warn(s)"
            print(line)
        else:
            failures += 1
            print(f"[{path.name}] ERROR ({result.get('error_type')}): "
                  f"{result.get('error')}")
    print(f"{len(merged) - failures}/{len(merged)} corpora labeled "
          f"(jobs={args.jobs})")
    return 1 if failures else 0


def _cmd_profile(args) -> int:
    from .perf import profile_labeling

    report = profile_labeling(
        domains=args.domains, seed=args.seed, repeats=args.repeats
    )
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
    if args.json:
        print(json.dumps(report, indent=2))
        if args.out is not None:
            print(f"wrote {args.out}", file=sys.stderr)
        return 0

    print(f"{'Domain':<12} {'cold ms':>9} {'warm ms':>9} {'speedup':>8}")
    print("-" * 40)
    for name, row in report["domains"].items():
        print(
            f"{DOMAIN_TITLES[name]:<12} {row['cold_ms']:>9.1f} "
            f"{row['warm_ms']:>9.1f} {row['speedup']:>7.1f}x"
        )
    totals = report["totals"]
    print("-" * 40)
    print(
        f"{'TOTAL':<12} {totals['cold_ms']:>9.1f} {totals['warm_ms']:>9.1f} "
        f"{totals['speedup']:>7.1f}x"
    )
    print(f"warm labelings/s: {totals['warm_labelings_per_s']}")
    print("\ncache hit rates (one shared comparator):")
    for cache_name in (
        "labels", "relations", "predicates", "group_results",
        "consistency_pairs",
    ):
        stats = report["caches"][cache_name]
        print(
            f"  {cache_name:<18} {stats['hit_rate']:>7.1%}  "
            f"({stats['hits']} hits / {stats['misses']} misses)"
        )
    wordnet = report["caches"]["wordnet"]
    for cache_name in ("base_form", "relations"):
        stats = wordnet[cache_name]
        print(
            f"  wordnet.{cache_name:<10} {stats['hit_rate']:>7.1%}  "
            f"({stats['hits']} hits / {stats['misses']} misses)"
        )
    if args.out is not None:
        print(f"\nwrote {args.out}")
    return 0


def _cmd_trace(args) -> int:
    from .obs import Trace, chrome_trace, format_trace
    from .service.engine import LabelingEngine, RequestError

    if (args.corpus is None) == (args.domain is None):
        print("trace needs exactly one of a corpus file or --domain",
              file=sys.stderr)
        return 2
    if args.corpus is not None:
        try:
            payload: dict = {"corpus": json.loads(args.corpus.read_text())}
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read corpus {args.corpus}: {exc}", file=sys.stderr)
            return 1
    else:
        payload = {"domain": args.domain, "seed": args.seed}

    engine = LabelingEngine(cache_size=0)
    trace = Trace(name="trace")
    try:
        with trace.scope():
            engine.label(payload)
    except RequestError as exc:
        print(f"invalid request: {exc}", file=sys.stderr)
        return 1
    record = trace.to_dict()
    if args.json:
        print(json.dumps(record, indent=2))
    else:
        print(format_trace(record))
        phases = [
            s for s in trace.root.iter_spans() if s.name.startswith("phase:")
        ]
        if phases:
            total = trace.root.duration_ms or 1.0
            print()
            print(f"{'phase':<26} {'ms':>10} {'share':>7}")
            print("-" * 45)
            for sp in phases:
                print(f"{sp.name:<26} {sp.duration_ms:>10.3f} "
                      f"{sp.duration_ms / total:>7.1%}")
    if args.chrome is not None:
        args.chrome.write_text(
            json.dumps(chrome_trace([record]), indent=2) + "\n"
        )
        print(f"wrote {args.chrome}", file=sys.stderr)
    return 0


def _cmd_chaos(args) -> int:
    from .testing.chaos import run_chaos_sweep

    comparator = SemanticComparator()
    report = run_chaos_sweep(
        plans=args.plans,
        seed=args.seed,
        rate=args.rate,
        jobs=args.jobs,
        domains=args.domains,
        comparator=comparator,
    )
    print(
        f"chaos sweep: {report['plans']} plans x {report['items_per_plan']} "
        f"items (rate {args.rate:g}, jobs {args.jobs})"
    )
    print(
        f"  ok {report['ok_items']} | failed {report['failed_items']} | "
        f"recovered {report['recovered_items']} | "
        f"byte-identical {report['identical_items']} | "
        f"injected faults {report['injected_faults']}"
    )
    if report["anomalies"]:
        print(f"  {len(report['anomalies'])} ANOMALY(IES):")
        for anomaly in report["anomalies"][:20]:
            print(
                f"    [{anomaly['plan']}#{anomaly['item']}] "
                f"{anomaly['kind']}: {anomaly['message']}"
            )
    else:
        print("  degradation contract held for every plan")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 1 if report["anomalies"] else 0


_COMMANDS = {
    "table6": _cmd_table6,
    "figure10": _cmd_figure10,
    "domain": _cmd_domain,
    "generate": _cmd_generate,
    "label": _cmd_label,
    "parse": _cmd_parse,
    "report": _cmd_report,
    "sweep": _cmd_sweep,
    "describe": _cmd_describe,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "batch": _cmd_batch,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "chaos": _cmd_chaos,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests/test_cli
    raise SystemExit(main())
