"""Core: the paper's naming algorithm — Definitions 1-8 and rules LI1-LI7."""

from .conflicts import HomonymRepair, find_homonym_pairs, resolve_homonyms
from .consistency import (
    ConsistencyLevel,
    Partition,
    combine,
    combine_closure,
    covering_partitions,
    find_partitions,
    solutions_of_partition,
    tuples_consistent,
)
from .group_relation import GroupRelation, GroupTuple
from .inference import InferenceEvent, InferenceLog, InferenceRule
from .instances import (
    domain_of_label,
    li6_semantically_equivalent,
    li7_at_least_as_general,
    li7_value_labels,
)
from .internal_nodes import (
    CandidateFinder,
    CandidateLabel,
    SourceInternalNode,
    collect_source_internal_nodes,
)
from .isolated import HypernymyHierarchy, build_hierarchies, name_isolated_cluster
from .label import Label, LabelAnalyzer
from .metrics import (
    IntegratedStats,
    fields_consistency_accuracy,
    inference_shares,
    integrated_stats,
    internal_nodes_accuracy,
    labeling_quality,
)
from .pipeline import NamingOptions, label_corpus, label_integrated_interface
from .result import LabelingResult, NodeStatus, TreeConsistency
from .semantics import LabelRelation, SemanticComparator
from .solutions import GroupNamingResult, GroupSolution, name_group, rank_tuple_solutions

__all__ = [
    "CandidateFinder",
    "CandidateLabel",
    "ConsistencyLevel",
    "GroupNamingResult",
    "GroupRelation",
    "GroupSolution",
    "GroupTuple",
    "HomonymRepair",
    "HypernymyHierarchy",
    "InferenceEvent",
    "InferenceLog",
    "InferenceRule",
    "IntegratedStats",
    "Label",
    "LabelAnalyzer",
    "LabelRelation",
    "LabelingResult",
    "NamingOptions",
    "NodeStatus",
    "Partition",
    "SemanticComparator",
    "SourceInternalNode",
    "TreeConsistency",
    "build_hierarchies",
    "collect_source_internal_nodes",
    "combine",
    "combine_closure",
    "covering_partitions",
    "domain_of_label",
    "fields_consistency_accuracy",
    "find_homonym_pairs",
    "find_partitions",
    "inference_shares",
    "integrated_stats",
    "internal_nodes_accuracy",
    "label_corpus",
    "label_integrated_interface",
    "labeling_quality",
    "li6_semantically_equivalent",
    "li7_at_least_as_general",
    "li7_value_labels",
    "name_group",
    "name_isolated_cluster",
    "rank_tuple_solutions",
    "resolve_homonyms",
    "solutions_of_partition",
    "tuples_consistent",
]
