"""Baseline labeler — majority voting without any consistency machinery.

The paper's implicit baseline is what integration systems did before it:
pick each field's most frequent source label (WISE-Integrator's style,
modulo its generality rule) and each section's most frequent candidate,
independently, with no horizontal/vertical consistency, no homonym repair,
no inference rules.  This module implements that baseline so the benefit
of the naming algorithm is measurable (``benchmarks/test_bench_baseline.py``
lints both outputs and counts the defects the consistency machinery
removes).
"""

from __future__ import annotations

from collections import Counter

from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode
from .internal_nodes import collect_source_internal_nodes

__all__ = ["naive_label_interface"]


def _majority(labels: list[str]) -> str | None:
    """Most frequent label, ties broken lexicographically."""
    if not labels:
        return None
    counts = Counter(labels)
    best = max(counts.items(), key=lambda kv: (kv[1], [-ord(c) for c in kv[0]]))
    # Deterministic tie-break: highest count, then lexicographically first.
    top_count = max(counts.values())
    candidates = sorted(l for l, c in counts.items() if c == top_count)
    return candidates[0]


def naive_label_interface(
    integrated_root: SchemaNode,
    interfaces: list[QueryInterface],
    mapping: Mapping,
) -> dict[str, str | None]:
    """Label the integrated tree by per-node majority vote, in place.

    * each field takes its cluster's most frequent source label;
    * each internal node takes the most frequent *potential* label (source
      internal nodes whose leaves map inside the node's cluster set) — with
      no coverage analysis, no Definition-6/7 consistency, no path
      deduplication.

    Returns ``{node name or cluster: label}`` for inspection.
    """
    assigned: dict[str, str | None] = {}

    for leaf in integrated_root.leaves():
        if leaf.cluster is None:
            continue
        labels: list[str] = []
        if leaf.cluster in mapping:
            for node in mapping[leaf.cluster].members.values():
                if node.is_labeled:
                    labels.append(node.label)
        label = _majority(labels)
        leaf.label = label
        assigned[leaf.cluster] = label

    source_nodes = collect_source_internal_nodes(interfaces)
    for node in integrated_root.internal_nodes():
        if node is integrated_root:
            continue
        target = node.descendant_leaf_clusters()
        potentials = [
            sn.label for sn in source_nodes if sn.leaf_clusters <= target
        ]
        label = _majority(potentials)
        node.label = label
        assigned[node.name] = label
    return assigned
