"""Homonym conflict detection and repair (Section 4.2.3).

"Two fields of a group may have the same name but different meanings."
Before a naming solution is reported, pairs of clusters whose chosen labels
are *similar* (equal or synonymous) are repaired by finding a source row
that labels both clusters distinctly — "the assumption is that designers of
source interfaces avoid these evident ambiguities" — and adopting its labels.

Paper example: the tuple-solution (Position Options, Job Type, Type of Job,
Company Name) has similar second and third entries; the row
(X, Job Type, Employment Type, X) repairs it to
(Position Options, Job Type, Employment Type, Company Name).
"""

from __future__ import annotations

from dataclasses import dataclass

from .group_relation import GroupRelation
from .semantics import SemanticComparator
from .solutions import GroupSolution

__all__ = ["HomonymRepair", "find_homonym_pairs", "resolve_homonyms"]


@dataclass(frozen=True)
class HomonymRepair:
    """Record of one applied repair (for diagnostics and the experiments)."""

    cluster_a: str
    cluster_b: str
    old_label_a: str
    old_label_b: str
    new_label_a: str
    new_label_b: str
    source_interface: str


def find_homonym_pairs(
    labels: dict[str, str | None], comparator: SemanticComparator
) -> list[tuple[str, str]]:
    """Cluster pairs whose assigned labels are similar (the homonym smell)."""
    named = [(c, l) for c, l in labels.items() if l is not None]
    pairs = []
    for i, (ca, la) in enumerate(named):
        for cb, lb in named[i + 1 :]:
            if comparator.similar(la, lb):
                pairs.append((ca, cb))
    return pairs


def resolve_homonyms(
    solution: GroupSolution,
    relation: GroupRelation,
    comparator: SemanticComparator,
    max_rounds: int = 8,
) -> list[HomonymRepair]:
    """Repair homonym pairs in ``solution`` in place; return the repairs.

    For each conflicting pair we look for a row with non-null entries in
    both clusters where one entry is (equivalent to) one of the conflicting
    labels and the other is not similar to it, then adopt the row's labels.
    Unrepairable pairs (no such row) are left as-is — the survey simulation
    will flag them, mirroring how residual ambiguity shows up in the paper's
    human-acceptance numbers.
    """
    repairs: list[HomonymRepair] = []
    for _ in range(max_rounds):
        pairs = find_homonym_pairs(solution.labels, comparator)
        pairs = [
            p for p in pairs
            if not any(r.cluster_a == p[0] and r.cluster_b == p[1] for r in repairs)
        ]
        if not pairs:
            break
        repaired_any = False
        for cluster_a, cluster_b in pairs:
            label_a = solution.labels[cluster_a]
            label_b = solution.labels[cluster_b]
            row = _find_repair_row(
                relation, cluster_a, cluster_b, label_a, label_b, comparator
            )
            if row is None:
                continue
            new_a = row.label_for(cluster_a)
            new_b = row.label_for(cluster_b)
            solution.labels[cluster_a] = new_a
            solution.labels[cluster_b] = new_b
            repairs.append(
                HomonymRepair(
                    cluster_a=cluster_a,
                    cluster_b=cluster_b,
                    old_label_a=label_a,
                    old_label_b=label_b,
                    new_label_a=new_a,
                    new_label_b=new_b,
                    source_interface=row.interface,
                )
            )
            repaired_any = True
        if not repaired_any:
            break
    return repairs


def _find_repair_row(
    relation: GroupRelation,
    cluster_a: str,
    cluster_b: str,
    label_a: str,
    label_b: str,
    comparator: SemanticComparator,
):
    """A row labeling both clusters where one side matches a conflicting
    label and the two row entries are not themselves similar."""
    for row in relation.tuples:
        a = row.label_for(cluster_a)
        b = row.label_for(cluster_b)
        if a is None or b is None:
            continue
        if comparator.similar(a, b):
            continue  # the row itself is ambiguous — no help
        if comparator.similar(a, label_a) or comparator.similar(b, label_b):
            return row
    return None
