"""Consistency levels, Combine/Combine*, and tuple partitioning (Sec. 4.1).

Implements:

* **Definition 2** — the three levels of naming consistency between rows of
  a group relation: *string*, *equality*, *synonymy*.  Levels are cumulative
  (string-equal labels are also equal; equal labels also count at the
  synonymy level), matching the algorithm's level-relaxation ladder.
* **Definition 3** — the ``Combine`` operator and its closure ``Combine*``.
* **Section 4.1.1** — the graph-oriented closure computation: vertices are
  rows, edges join consistent rows, and each connected component is a
  *partition* that both identifies a set of clusters a consistent solution
  can cover and confines the rows the solution may draw from.
* **Proposition 1** — a consistent naming solution for a group exists iff
  some partition covers all its clusters; :func:`solutions_of_partition`
  realizes the constructive direction (closure first, spanning-tree merge as
  the linear-time fallback the paper describes in Section 4.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..perf import CacheCounter
from .group_relation import GroupRelation, GroupTuple
from .semantics import LabelRelation, SemanticComparator

__all__ = [
    "ConsistencyLevel",
    "ConsistencyPairCache",
    "Partition",
    "tuples_consistent",
    "combine",
    "combine_closure",
    "find_partitions",
    "covering_partitions",
    "solutions_of_partition",
]

#: Safety bound on the Combine* closure; far above anything the evaluation
#: corpus produces, present so adversarial inputs cannot blow up memory.
CLOSURE_LIMIT = 4096


class ConsistencyLevel(IntEnum):
    """Definition 2's ladder, in the order the algorithm relaxes it."""

    STRING = 1
    EQUALITY = 2
    SYNONYMY = 3


class ConsistencyPairCache:
    """Per-run memo for Definition-2 row-pair decisions.

    The naming algorithm re-asks the same row pairs many times per group:
    ``find_partitions`` runs once per ladder level, ``combine_closure``
    pairs every derived tuple against the originals, and the spanning-tree
    fallback re-walks the component.  One cache instance scopes one
    ``name_group`` run, so a tuple pair is compared at most once per group
    per run — and a long-lived relation stays uncached across runs, which
    keeps the memo small and makes invalidation trivial (drop the object).

    The key includes the level, the column restriction, and both rows'
    cluster/label tuples; consistency is symmetric, so both orders are
    stored.  Hits and misses roll up into ``counter`` (the comparator's
    ``pair_counter`` when created by ``name_group``), surfacing in
    ``cache_stats()`` under ``consistency_pairs``.
    """

    __slots__ = ("entries", "counter")

    def __init__(self, counter: CacheCounter | None = None) -> None:
        self.entries: dict = {}
        self.counter = counter if counter is not None else CacheCounter("pairs")


def _labels_consistent(
    a: str, b: str, level: ConsistencyLevel, comparator: SemanticComparator
) -> bool:
    """Two non-null labels witness consistency at ``level`` (cumulative).

    Definition 2's ladder, answered from the comparator's memoised
    strongest relation: string-equality witnesses every level, equality
    witnesses EQUALITY and up, synonymy witnesses SYNONYMY.  Equivalent to
    checking ``string_equal`` / ``equal`` / ``synonym`` in turn, because
    ``relation_between`` tries those exact predicates strongest-first.
    """
    relation = comparator.relation_between(a, b)
    if relation is LabelRelation.STRING_EQUAL:
        return True
    if relation is LabelRelation.EQUAL:
        return level >= ConsistencyLevel.EQUALITY
    if relation is LabelRelation.SYNONYM:
        return level >= ConsistencyLevel.SYNONYMY
    return False


def tuples_consistent(
    s: GroupTuple,
    t: GroupTuple,
    level: ConsistencyLevel,
    comparator: SemanticComparator,
    clusters: tuple[str, ...] | None = None,
    cache: ConsistencyPairCache | None = None,
) -> bool:
    """Definition 2: rows ``s`` and ``t`` are consistent at ``level`` when
    some cluster (of ``clusters``, default all) carries witnessing labels.

    With a ``cache`` (scoped to one naming run by ``name_group``), each
    distinct row pair is decided once per level and column restriction.
    """
    if cache is not None:
        key = (level, clusters, s.clusters, s.labels, t.clusters, t.labels)
        cached = cache.entries.get(key)
        if cached is not None:
            cache.counter.hit()
            return cached
        cache.counter.miss()
    result = _tuples_consistent_uncached(s, t, level, comparator, clusters)
    if cache is not None:
        cache.entries[key] = result
        # Consistency is symmetric in s and t: store the mirror entry too.
        cache.entries[(level, clusters, t.clusters, t.labels, s.clusters, s.labels)] = result
    return result


def _tuples_consistent_uncached(
    s: GroupTuple,
    t: GroupTuple,
    level: ConsistencyLevel,
    comparator: SemanticComparator,
    clusters: tuple[str, ...] | None,
) -> bool:
    columns = clusters if clusters is not None else s.clusters
    for cluster in columns:
        a = s.label_for(cluster)
        b = t.label_for(cluster)
        if a is None or b is None:
            continue
        if _labels_consistent(a, b, level, comparator):
            return True
    return False


def combine(r: GroupTuple, s: GroupTuple) -> GroupTuple:
    """Definition 3: the non-null components of ``r`` plus those of ``s``
    where ``r`` is null."""
    if r.clusters != s.clusters:
        raise ValueError("Combine requires tuples over the same clusters")
    merged = tuple(
        rv if rv is not None else sv for rv, sv in zip(r.labels, s.labels)
    )
    return GroupTuple(
        interface=f"{r.interface}+{s.interface}", labels=merged, clusters=r.clusters
    )


@dataclass
class Partition:
    """A connected component of the consistency graph (Section 4.1.1)."""

    tuples: list[GroupTuple]
    level: ConsistencyLevel

    @property
    def covered_clusters(self) -> frozenset[str]:
        """Union of the non-null cluster sets of the component's rows."""
        covered: set[str] = set()
        for t in self.tuples:
            covered.update(t.non_null_clusters())
        return frozenset(covered)

    def covers(self, clusters) -> bool:
        return frozenset(clusters) <= self.covered_clusters

    def interface_names(self) -> frozenset[str]:
        return frozenset(t.interface for t in self.tuples)

    def __len__(self) -> int:
        return len(self.tuples)


def find_partitions(
    relation: GroupRelation,
    level: ConsistencyLevel,
    comparator: SemanticComparator,
    clusters: tuple[str, ...] | None = None,
    cache: ConsistencyPairCache | None = None,
) -> list[Partition]:
    """All maximal partitions of the relation's rows at ``level``.

    Connected components of the undirected graph whose vertices are rows and
    whose edges join consistent rows (restricted to ``clusters`` when given).
    """
    rows = list(relation.tuples)
    n = len(rows)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    for i in range(n):
        for j in range(i + 1, n):
            if tuples_consistent(rows[i], rows[j], level, comparator, clusters, cache):
                union(i, j)

    components: dict[int, list[GroupTuple]] = {}
    for i, row in enumerate(rows):
        components.setdefault(find(i), []).append(row)
    return [Partition(tuples=members, level=level) for members in components.values()]


def covering_partitions(
    relation: GroupRelation,
    level: ConsistencyLevel,
    comparator: SemanticComparator,
    cache: ConsistencyPairCache | None = None,
) -> tuple[list[Partition], list[Partition]]:
    """(all partitions, those covering every cluster of the group).

    The second component being non-empty is exactly Proposition 1's
    condition for a consistent naming solution to exist at ``level``.
    """
    partitions = find_partitions(relation, level, comparator, cache=cache)
    covering = [p for p in partitions if p.covers(relation.clusters)]
    return partitions, covering


def combine_closure(
    tuples: list[GroupTuple],
    level: ConsistencyLevel,
    comparator: SemanticComparator,
    limit: int = CLOSURE_LIMIT,
    cache: ConsistencyPairCache | None = None,
) -> list[GroupTuple]:
    """Combine* (Definition 3 generalized): all tuples derivable by
    repeatedly combining consistent pairs, duplicates (by label values)
    ignored.

    The closure pairs every derived tuple against the *original* rows, which
    reaches every spanning-tree combination of a connected component while
    keeping the frontier small.
    """
    seen: dict[tuple[str | None, ...], GroupTuple] = {}
    order: list[GroupTuple] = []
    for t in tuples:
        if t.key() not in seen:
            seen[t.key()] = t
            order.append(t)

    frontier = list(order)
    while frontier and len(order) < limit:
        next_frontier: list[GroupTuple] = []
        for current in frontier:
            for original in tuples:
                if not tuples_consistent(current, original, level, comparator, cache=cache):
                    continue
                for merged in (combine(current, original), combine(original, current)):
                    if merged.key() not in seen:
                        seen[merged.key()] = merged
                        order.append(merged)
                        next_frontier.append(merged)
                        if len(order) >= limit:
                            return order
        frontier = next_frontier
    return order


def _spanning_tree_merge(
    partition: Partition,
    comparator: SemanticComparator,
    cache: ConsistencyPairCache | None = None,
) -> GroupTuple:
    """Linear-time solution: Combine along a spanning tree of the component.

    "If the time to retrieve a consistent solution is an issue then one can
    always be found in linear time by applying the Combine operator along a
    spanning tree of the connected component." (Section 4.2.1)
    """
    remaining = list(partition.tuples)
    merged = remaining.pop(0)
    while remaining:
        # Pick a neighbor consistent with some already-merged original row —
        # the component is connected, so one always exists.
        for candidate in remaining:
            if tuples_consistent(merged, candidate, partition.level, comparator, cache=cache):
                merged = combine(merged, candidate)
                remaining.remove(candidate)
                break
        else:
            # Merged labels may mask the witnessing ones; force the union —
            # the component being connected guarantees the paper's semantics.
            candidate = remaining.pop(0)
            merged = combine(merged, candidate)
    return merged


def solutions_of_partition(
    partition: Partition,
    clusters: tuple[str, ...],
    comparator: SemanticComparator,
    limit: int = CLOSURE_LIMIT,
    cache: ConsistencyPairCache | None = None,
) -> list[GroupTuple]:
    """Tuple-solutions (Definition 4) for ``clusters`` from ``partition``.

    Returns every complete tuple (no nulls over ``clusters``) in the
    Combine* closure; when the closure yields none but the partition covers
    the clusters, falls back to the spanning-tree merge so Proposition 1's
    constructive direction always holds.
    """
    projected = [t.project(clusters) for t in partition.tuples]
    projected = [t for t in projected if t.non_null_count() > 0]
    if not projected:
        return []
    closure = combine_closure(projected, partition.level, comparator, limit, cache)
    complete = [t for t in closure if t.is_complete()]
    if complete:
        return complete
    covered: set[str] = set()
    for t in projected:
        covered.update(t.non_null_clusters())
    if frozenset(clusters) <= covered:
        merged = _spanning_tree_merge(
            Partition(tuples=projected, level=partition.level), comparator, cache
        )
        if merged.is_complete():
            return [merged]
    return []
