"""Group relations — the (n+1)-ary relations of Section 4.1.

"We organize the clusters of a group in a (n+1)-ary relation, where n is the
number of clusters in the group and a component denoting the name of the
interface.  A tuple in this relation denotes the labels a particular
interface supplies for the clusters of the group."  Tables 2, 3 and 4 of the
paper are instances.

A :class:`GroupTuple` is one row (one interface's labels, with ``None`` for
missing entries); a :class:`GroupRelation` is the set of rows for one group,
built from the cluster mapping.  Tuples whose entries are all null are
discarded (Section 4.1.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..schema.clusters import Mapping
from ..schema.groups import Group

__all__ = ["GroupTuple", "GroupRelation"]


@dataclass(frozen=True)
class GroupTuple:
    """One row of a group relation: an interface's labels for the clusters."""

    interface: str
    labels: tuple[str | None, ...]
    clusters: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.clusters):
            raise ValueError("labels/clusters arity mismatch")

    @cached_property
    def _column_index(self) -> dict[str, int]:
        return {cluster: i for i, cluster in enumerate(self.clusters)}

    def label_for(self, cluster: str) -> str | None:
        return self.labels[self._column_index[cluster]]

    def non_null_clusters(self) -> frozenset[str]:
        """The set of clusters this tuple supplies a label for — the second
        role a partition-graph vertex plays (Section 4.1.1)."""
        return frozenset(
            cluster
            for cluster, label in zip(self.clusters, self.labels)
            if label is not None
        )

    def non_null_count(self) -> int:
        return sum(1 for label in self.labels if label is not None)

    def is_complete(self) -> bool:
        return all(label is not None for label in self.labels)

    def project(self, clusters: tuple[str, ...]) -> "GroupTuple":
        """π_C projection onto a subset of clusters (Definition 2)."""
        return GroupTuple(
            interface=self.interface,
            labels=tuple(self.label_for(c) for c in clusters),
            clusters=clusters,
        )

    def key(self) -> tuple[str | None, ...]:
        """Value identity (ignoring which interface supplied it)."""
        return self.labels


class GroupRelation:
    """All rows supplied by the source interfaces for one group of clusters."""

    def __init__(self, group: Group, tuples: list[GroupTuple]) -> None:
        self.group = group
        self.clusters: tuple[str, ...] = group.clusters
        self.tuples: list[GroupTuple] = [
            t for t in tuples if t.non_null_count() > 0
        ]

    # ------------------------------------------------------------------
    # Construction from the mapping.
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, group: Group, mapping: Mapping) -> "GroupRelation":
        """Build the relation of ``group`` from the cluster mapping.

        An interface contributes a row when it has a *labeled* field in at
        least one of the group's clusters.  An unlabeled field contributes a
        null entry, just like an absent one — the relation is about labels.
        """
        interface_names: list[str] = []
        seen: set[str] = set()
        for cluster_name in group.clusters:
            for interface_name in mapping[cluster_name].members:
                if interface_name not in seen:
                    seen.add(interface_name)
                    interface_names.append(interface_name)

        tuples = []
        for interface_name in interface_names:
            labels = tuple(
                mapping[cluster_name].label_of(interface_name)
                for cluster_name in group.clusters
            )
            tuples.append(
                GroupTuple(
                    interface=interface_name, labels=labels, clusters=group.clusters
                )
            )
        return cls(group, tuples)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------

    def tuple_of(self, interface: str) -> GroupTuple | None:
        """The row interface ``interface`` supplies, if any."""
        return next((t for t in self.tuples if t.interface == interface), None)

    def frequency_of(self, labels: tuple[str | None, ...]) -> int:
        """How many interfaces supply exactly this row — the *frequency of
        occurrence* criterion of Section 4.2.1 (only meaningful for
        candidate solutions, i.e. rows present in the relation)."""
        return sum(1 for t in self.tuples if t.key() == labels)

    def complete_tuples(self) -> list[GroupTuple]:
        return [t for t in self.tuples if t.is_complete()]

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    def as_table(self) -> str:
        """Plain-text rendering in the style of the paper's Tables 2-4."""
        header = ["interface", *self.clusters]
        rows = [
            [t.interface, *("" if v is None else v for v in t.labels)]
            for t in self.tuples
        ]
        widths = [
            max(len(str(row[i])) for row in [header, *rows]) for i in range(len(header))
        ]
        lines = []
        for row in [header, *rows]:
            lines.append("  ".join(str(v).ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)
