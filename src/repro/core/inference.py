"""The logical inference rules LI1-LI7 as first-class, countable objects.

The paper's Figure 10 reports, per rule, "the ratio of the total number of
times the inference was used to produce candidate labels over the total
number all inferences were used to produce candidate labels".  Every module
that applies a rule records it on an :class:`InferenceLog`; the benchmark
for Figure 10 reads the shares off the log.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["InferenceRule", "InferenceEvent", "InferenceLog"]


class InferenceRule(str, Enum):
    """The seven logical inferences of Sections 5 and 6.1."""

    LI1 = "LI1"  # subset-of-leaves + hypernym label => in-domain equivalence
    LI2 = "LI2"  # overlapping descendant leaves: union of same-label coverage
    LI3 = "LI3"  # hypernym label absorbs the hyponym's coverage
    LI4 = "LI4"  # hypernymy hierarchy root covers the union
    LI5 = "LI5"  # extend meaning over a characterized (dependent) subset
    LI6 = "LI6"  # domain containment bounds a generic label to a descriptive one
    LI7 = "LI7"  # a label occurring as another field's instance is a value


@dataclass(frozen=True)
class InferenceEvent:
    """One application of a rule while producing a candidate label."""

    rule: InferenceRule
    domain: str | None
    node: str | None
    label: str | None
    detail: str = ""


@dataclass
class InferenceLog:
    """Counts (and optionally full events) of inference-rule applications."""

    events: list[InferenceEvent] = field(default_factory=list)
    counts: Counter = field(default_factory=Counter)
    keep_events: bool = True

    def record(
        self,
        rule: InferenceRule,
        *,
        domain: str | None = None,
        node: str | None = None,
        label: str | None = None,
        detail: str = "",
    ) -> None:
        self.counts[rule] += 1
        if self.keep_events:
            self.events.append(
                InferenceEvent(rule=rule, domain=domain, node=node, label=label, detail=detail)
            )

    def total(self) -> int:
        return sum(self.counts.values())

    def shares(self) -> dict[InferenceRule, float]:
        """Figure 10: each rule's share of all rule applications."""
        total = self.total()
        if total == 0:
            return {rule: 0.0 for rule in InferenceRule}
        return {rule: self.counts.get(rule, 0) / total for rule in InferenceRule}

    def merged_with(self, other: "InferenceLog") -> "InferenceLog":
        merged = InferenceLog(keep_events=self.keep_events and other.keep_events)
        merged.counts = self.counts + other.counts
        if merged.keep_events:
            merged.events = [*self.events, *other.events]
        return merged
