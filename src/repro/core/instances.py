"""Instance-based inference rules LI6 and LI7 (Section 6.1).

Fields of query interfaces may carry predefined domains (selection lists).
Where they do, two delicate labeling decisions improve:

* **LI6 — reconcile most-general vs. more-descriptive** (Section 6.1.1):
  for labels ``l1`` hypernym of ``l2`` within one cluster, if
  ``domain(l1) ⊆ domain(l2)`` then the generic ``l1`` is *bounded* to the
  meaning of the descriptive ``l2`` in this domain — they are semantically
  equivalent, and the descriptive one should be preferred (the Figure 9
  example: *Class* vs *Flight Class* share a domain, so *Flight Class* wins).

* **LI7 — discard labels that are values** (Section 6.1.2):
  if field *e*'s label occurs among the instances of sibling field *f* in
  the same cluster, *f*'s label is semantically at least as general as
  *e*'s — *e*'s label (e.g. ``Hardcover``) is really a value of *f*
  (``Format``) and must not be elected as the cluster label.
"""

from __future__ import annotations

from ..schema.clusters import Cluster
from .semantics import SemanticComparator

__all__ = [
    "domain_of_label",
    "li6_semantically_equivalent",
    "li7_value_labels",
    "li7_at_least_as_general",
]


def _normalize_value(value: str) -> str:
    return " ".join(value.lower().split())


def domain_of_label(cluster: Cluster, label: str) -> frozenset[str]:
    """``domain(l)``: union of instances of the cluster's fields labeled l."""
    return frozenset(
        _normalize_value(v) for v in cluster.instances_union(label)
    )


def li6_semantically_equivalent(
    cluster: Cluster,
    general_label: str,
    specific_label: str,
    comparator: SemanticComparator,
) -> bool:
    """LI6: ``general`` and ``specific`` are equivalent in this domain.

    Requires ``general`` hypernym ``specific`` (Definition 1) and
    ``domain(general) ⊆ domain(specific)`` with both domains non-empty.
    """
    if not comparator.hypernym(general_label, specific_label):
        return False
    dom_general = domain_of_label(cluster, general_label)
    dom_specific = domain_of_label(cluster, specific_label)
    if not dom_general or not dom_specific:
        return False
    return dom_general <= dom_specific


def li7_value_labels(cluster: Cluster) -> dict[str, list[str]]:
    """LI7 occurrences in ``cluster``: ``{general_label: [value_labels]}``.

    A label is a *value label* when it appears (case-insensitively) among
    the instances of another field of the same cluster.
    """
    findings: dict[str, list[str]] = {}
    labels = cluster.labels()
    for node in cluster.members.values():
        if not node.instances or not node.is_labeled:
            continue
        instance_values = {_normalize_value(v) for v in node.instances}
        for other_label in labels:
            if other_label == node.label:
                continue
            if _normalize_value(other_label) in instance_values:
                findings.setdefault(node.label, []).append(other_label)
    return findings


def li7_at_least_as_general(cluster: Cluster, label_f: str, label_e: str) -> bool:
    """LI7 predicate: ``label_e`` occurs among the instances of a field of
    the cluster labeled ``label_f``."""
    target = _normalize_value(label_e)
    for node in cluster.members.values():
        if node.label != label_f or not node.instances:
            continue
        if target in {_normalize_value(v) for v in node.instances}:
            return True
    return False
