"""Candidate labels for internal nodes — Section 5 (Definitions 5-7, LI1-LI5).

For a global internal node with descendant-leaf cluster set X, every source
internal node whose own descendant leaves map inside X offers its label as a
*potential* label.  A potential label is promoted to a *candidate* when its
*semantic coverage* can be shown to reach all of X, via:

* **LI2** — the same label used across interfaces covers the union of the
  leaf sets it covers in each (the Location panels of Figure 8);
* **LI3 / LI4** — a label that is a Definition-1 hypernym of another absorbs
  the hyponym's coverage; iterated over the hypernymy hierarchy, roots cover
  the union (the "Do you have any preferences?" example);
* **LI5** — coverage extends over a *characterized* (dependent) cluster
  subset: Keywords merely qualifies Make/Model, so Car Information may cover
  it too;
* **LI1** — a label that names a subset of another's leaves yet is its
  Definition-1 hypernym is *semantically equivalent in the domain*
  (Location vs Property Location), so each may borrow the other's coverage.

Definition 6 ties a candidate to group solutions: the candidate is
consistent with a solution S of a descendant group iff the interface it
originates from supplies a row inside S's partition.  Definition 7 then
relates ancestor/descendant internal-node labels (generality + common group
solutions); labels meeting only its generality half are *weakly consistent*.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode
from .inference import InferenceLog, InferenceRule
from .label import LabelAnalyzer
from .semantics import SemanticComparator
from .solutions import GroupNamingResult, GroupSolution

__all__ = [
    "SourceInternalNode",
    "CandidateLabel",
    "collect_source_internal_nodes",
    "CandidateFinder",
]


@dataclass(frozen=True)
class SourceInternalNode:
    """A labeled internal node of one source interface, cluster-projected."""

    interface: str
    node_name: str
    label: str
    leaf_clusters: frozenset[str]


@dataclass
class CandidateLabel:
    """A label whose semantic coverage reaches a global node's leaf set."""

    text: str
    rule: InferenceRule
    origins: frozenset[str]           # interfaces the label originates from
    coverage: frozenset[str]          # clusters semantically covered
    support: int = 1                  # number of source nodes carrying it

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CandidateLabel({self.text!r}, {self.rule.value})"


def collect_source_internal_nodes(
    interfaces: list[QueryInterface],
) -> list[SourceInternalNode]:
    """All labeled internal nodes of the sources with their leaf clusters.

    Nodes whose leaves carry no cluster assignments are skipped — they can
    never be placed relative to the integrated tree.
    """
    collected: list[SourceInternalNode] = []
    for interface in interfaces:
        for node in interface.root.internal_nodes():
            if node is interface.root:
                continue
            if not node.is_labeled:
                continue
            clusters = node.descendant_leaf_clusters()
            if not clusters:
                continue
            collected.append(
                SourceInternalNode(
                    interface=interface.name,
                    node_name=node.name,
                    label=node.label,
                    leaf_clusters=clusters,
                )
            )
    return collected


@dataclass
class _PotentialLabel:
    """Working record while coverage is being grown for one global node."""

    text: str
    origins: set[str]
    coverage: set[str]
    support: int
    rule: InferenceRule  # strongest rule used so far to grow coverage


class CandidateFinder:
    """Computes candidate labels for the internal nodes of an integrated tree."""

    def __init__(
        self,
        interfaces: list[QueryInterface],
        mapping: Mapping,
        comparator: SemanticComparator,
        analyzer: LabelAnalyzer | None = None,
        log: InferenceLog | None = None,
        domain: str | None = None,
        enabled_rules: frozenset[InferenceRule] | None = None,
    ) -> None:
        self.interfaces = interfaces
        self.mapping = mapping
        self.comparator = comparator
        self.analyzer = analyzer or comparator.analyzer
        self.log = log if log is not None else InferenceLog()
        self.domain = domain
        self.source_nodes = collect_source_internal_nodes(interfaces)
        if enabled_rules is None:
            enabled_rules = frozenset(InferenceRule)
        self.enabled_rules = enabled_rules

    # ------------------------------------------------------------------
    # LI1: in-domain equivalences between source internal-node labels.
    # ------------------------------------------------------------------

    def li1_equivalences(self) -> list[tuple[str, str]]:
        """Pairs of labels made semantically equivalent by LI1.

        v1's leaves ⊆ v2's leaves and label(v1) hypernym label(v2)
        ⟹ the labels are equivalent in this domain of discourse.
        """
        pairs: list[tuple[str, str]] = []
        if InferenceRule.LI1 not in self.enabled_rules:
            return pairs
        for v1 in self.source_nodes:
            for v2 in self.source_nodes:
                if v1 is v2 or v1.label == v2.label:
                    continue
                if not v1.leaf_clusters <= v2.leaf_clusters:
                    continue
                if self.comparator.hypernym(v1.label, v2.label):
                    pairs.append((v1.label, v2.label))
        return pairs

    # ------------------------------------------------------------------
    # Candidate computation for one global internal node.
    # ------------------------------------------------------------------

    def candidates_for(self, global_node: SchemaNode) -> list[CandidateLabel]:
        """Candidate labels for ``global_node`` (Section 5.1).

        Returns candidates whose coverage equals the node's full descendant
        cluster set, ranked most-supported/most-descriptive first.
        """
        target = global_node.descendant_leaf_clusters()
        if not target:
            return []

        potentials = self._initial_potentials(target, global_node.name)
        if not potentials:
            return []

        self._apply_li3_li4(potentials, global_node.name)
        self._apply_li1(potentials, global_node.name, target)
        self._apply_li5(potentials, target, global_node.name)

        candidates = [
            CandidateLabel(
                text=p.text,
                rule=p.rule,
                origins=frozenset(p.origins),
                coverage=frozenset(p.coverage),
                support=p.support,
            )
            for p in potentials.values()
            if p.coverage >= target
        ]
        candidates.sort(
            key=lambda c: (
                -c.support,
                -self.analyzer.label(c.text).content_word_count,
                c.text,
            )
        )
        return candidates

    def potential_labels_for(self, global_node: SchemaNode) -> list[str]:
        """The raw potential labels (before coverage analysis) — used by
        Definition 8's inconsistency test."""
        target = global_node.descendant_leaf_clusters()
        return sorted(
            {
                sn.label
                for sn in self.source_nodes
                if sn.leaf_clusters and sn.leaf_clusters <= target
            }
        )

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _initial_potentials(
        self, target: frozenset[str], node_name: str
    ) -> dict[str, _PotentialLabel]:
        """LI2 seeding: same-label source nodes pool their coverage."""
        potentials: dict[str, _PotentialLabel] = {}
        for sn in self.source_nodes:
            if not sn.leaf_clusters <= target:
                continue
            entry = potentials.get(sn.label)
            if entry is None:
                potentials[sn.label] = _PotentialLabel(
                    text=sn.label,
                    origins={sn.interface},
                    coverage=set(sn.leaf_clusters),
                    support=1,
                    rule=InferenceRule.LI2,
                )
            else:
                entry.origins.add(sn.interface)
                entry.coverage.update(sn.leaf_clusters)
                entry.support += 1
        if InferenceRule.LI2 in self.enabled_rules:
            for entry in potentials.values():
                if entry.support > 1 and entry.coverage >= target:
                    self.log.record(
                        InferenceRule.LI2,
                        domain=self.domain,
                        node=node_name,
                        label=entry.text,
                        detail=f"union over {entry.support} source nodes",
                    )
        else:
            # With LI2 disabled a label only covers what a single source
            # node covers: keep the largest single coverage.
            for sn in self.source_nodes:
                if not sn.leaf_clusters <= target:
                    continue
                entry = potentials[sn.label]
                if len(sn.leaf_clusters) > 0:
                    entry.coverage = set(
                        max(
                            (
                                other.leaf_clusters
                                for other in self.source_nodes
                                if other.label == sn.label
                                and other.leaf_clusters <= target
                            ),
                            key=len,
                        )
                    )
        return potentials

    def _apply_li3_li4(
        self, potentials: dict[str, _PotentialLabel], node_name: str
    ) -> None:
        """Propagate coverage up Definition-1 hypernymy until fixpoint."""
        if InferenceRule.LI3 not in self.enabled_rules:
            return
        labels = list(potentials)
        changed = True
        absorbed_counts: dict[str, int] = {l: 0 for l in labels}
        while changed:
            changed = False
            for general in labels:
                for specific in labels:
                    if general == specific:
                        continue
                    if not self.comparator.hypernym(general, specific):
                        continue
                    before = len(potentials[general].coverage)
                    potentials[general].coverage.update(potentials[specific].coverage)
                    if len(potentials[general].coverage) > before:
                        changed = True
                        absorbed_counts[general] += 1
        for label, count in absorbed_counts.items():
            if count == 0:
                continue
            rule = (
                InferenceRule.LI4
                if count >= 2 and InferenceRule.LI4 in self.enabled_rules
                else InferenceRule.LI3
            )
            potentials[label].rule = rule
            self.log.record(
                rule,
                domain=self.domain,
                node=node_name,
                label=label,
                detail=f"absorbed {count} hyponym coverage(s)",
            )

    def _apply_li1(
        self,
        potentials: dict[str, _PotentialLabel],
        node_name: str,
        target: frozenset[str],
    ) -> None:
        """Equivalent-in-domain labels (LI1) share their coverage."""
        if InferenceRule.LI1 not in self.enabled_rules:
            return
        for label_a, label_b in self.li1_equivalences():
            if label_a in potentials and label_b in potentials:
                merged = potentials[label_a].coverage | potentials[label_b].coverage
                grew_a = merged > potentials[label_a].coverage
                grew_b = merged > potentials[label_b].coverage
                if not (grew_a or grew_b):
                    continue
                potentials[label_a].coverage = set(merged)
                potentials[label_b].coverage = set(merged)
                for label, grew in ((label_a, grew_a), (label_b, grew_b)):
                    if grew:
                        potentials[label].rule = InferenceRule.LI1
                        self.log.record(
                            InferenceRule.LI1,
                            domain=self.domain,
                            node=node_name,
                            label=label,
                            detail=f"equivalent in domain to {label_b if label == label_a else label_a!r}",
                        )

    # -- LI5 -----------------------------------------------------------

    def _apply_li5(
        self,
        potentials: dict[str, _PotentialLabel],
        target: frozenset[str],
        node_name: str,
    ) -> None:
        """Extend coverage over characterized (dependent) cluster subsets."""
        if InferenceRule.LI5 not in self.enabled_rules:
            return
        for entry in potentials.values():
            missing = target - entry.coverage
            if not missing or not entry.coverage & target:
                continue
            if self._characterized_by(missing, entry.coverage & target):
                entry.coverage.update(missing)
                entry.rule = InferenceRule.LI5
                self.log.record(
                    InferenceRule.LI5,
                    domain=self.domain,
                    node=node_name,
                    label=entry.text,
                    detail=f"extended over dependent clusters {sorted(missing)}",
                )

    def _characterized_by(self, z: set[str], y: set[str]) -> bool:
        """LI5's premise: clusters ``z`` are characterized by a subset of ``y``.

        Condition 1: instances of the fields in Z ⊆ instances of fields in Y.
        Condition 2: some source internal node v has leaf clusters W ∪ Z with
        W ⊆ Y, and the content words of v's label are a subset of the content
        words of the labels of the fields in W.
        """
        z_instances = self._cluster_instances(z)
        if z_instances:
            y_instances = self._cluster_instances(y)
            if z_instances <= y_instances:
                return True
        for sn in self.source_nodes:
            w = sn.leaf_clusters - frozenset(z)
            if not w or not (w <= y) or not (frozenset(z) <= sn.leaf_clusters):
                continue
            label_stems = self.analyzer.label(sn.label).stems
            if not label_stems:
                continue
            w_stems: set[str] = set()
            for cluster_name in w:
                if cluster_name not in self.mapping:
                    continue
                for field_label in self.mapping[cluster_name].labels():
                    w_stems.update(self.analyzer.label(field_label).stems)
            if label_stems <= w_stems:
                return True
        return False

    def _cluster_instances(self, clusters: set[str]) -> frozenset[str]:
        values: set[str] = set()
        for name in clusters:
            if name in self.mapping:
                values.update(
                    v.lower() for v in self.mapping[name].instances_union()
                )
        return frozenset(values)

    # ------------------------------------------------------------------
    # Definition 7: consistency between ancestor/descendant labels.
    # ------------------------------------------------------------------

    def definition7_consistent(
        self,
        ancestor: "CandidateLabel",
        descendant: "CandidateLabel",
        common_groups: list[GroupNamingResult],
    ) -> bool:
        """Definition 7 for two candidate labels of nested global nodes.

        (1) the ancestor's label must be semantically at least as general
        as the descendant's — witnessed either lexically (Definition 1 /
        Definition 5(i)) or structurally, by the ancestor's semantic
        coverage containing the descendant's (Definition 5(ii), which for
        full candidates of nested nodes holds by construction);
        (2) some solution of every common descendant group must be
        consistent (Definition 6) with both labels.

        Labels meeting only condition (1) are *weakly consistent*.
        """
        generality = (
            descendant.coverage <= ancestor.coverage
            or self.comparator.at_least_as_general(ancestor.text, descendant.text)
        )
        if not generality:
            return False
        for group_result in common_groups:
            if not any(
                self.candidate_consistent_with_solution(ancestor, group_result, s)
                and self.candidate_consistent_with_solution(
                    descendant, group_result, s
                )
                for s in group_result.solutions
            ):
                return False
        return True

    def weakly_consistent_pair(
        self,
        ancestor: "CandidateLabel",
        descendant: "CandidateLabel",
    ) -> bool:
        """Definition 7's first condition alone (the weak form)."""
        return (
            descendant.coverage <= ancestor.coverage
            or self.comparator.at_least_as_general(ancestor.text, descendant.text)
        )

    # ------------------------------------------------------------------
    # Definition 6: candidate/group-solution consistency.
    # ------------------------------------------------------------------

    def candidate_consistent_with_solution(
        self,
        candidate: CandidateLabel,
        group_result: GroupNamingResult,
        solution: GroupSolution,
    ) -> bool:
        """Definition 6 for one descendant group.

        The candidate is consistent with solution S when some origin
        interface's row in the group relation belongs to S's partition.
        An origin that supplies no row imposes no constraint.
        """
        if solution.partition is None:
            return False  # partially consistent solutions support nobody
        partition_interfaces = solution.supplying_interfaces()
        unconstrained = True
        for origin in candidate.origins:
            row = group_result.relation.tuple_of(origin)
            if row is None:
                continue
            unconstrained = False
            if origin in partition_interfaces:
                return True
        return unconstrained
