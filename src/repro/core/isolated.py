"""Labeling isolated clusters — the RAN variant of Section 4.4.

An isolated cluster (C_int) is a lone leaf child of a non-root internal
node; its label needs no correlation with surrounding fields, so the paper
adapts the representative attribute name (RAN) algorithm of WISE [12]:

1. build hypernymy hierarchies over the cluster's distinct labels using the
   Definition-1 relations;
2. the hierarchy roots are the most general labels; elect the **most
   descriptive** root that appears in the most interfaces — the paper's
   replacement for WISE's majority rule (Section 8: "with a modification by
   replacing the majority rule by the most descriptive rule");
3. instance knowledge refines the choice: value-labels are discarded first
   (LI7), and a generic root whose domain is contained in a descriptive
   hyponym's domain yields to that hyponym (LI6, the Figure 9 example).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.clusters import Cluster
from .instances import li6_semantically_equivalent, li7_value_labels
from .label import LabelAnalyzer
from .semantics import SemanticComparator

__all__ = ["HypernymyHierarchy", "build_hierarchies", "name_isolated_cluster"]


@dataclass
class HypernymyHierarchy:
    """A hypernymy forest over a set of labels.

    ``parents[l]`` holds the labels that are Definition-1 hypernyms of
    ``l``; roots are labels with no hypernym among the set.
    """

    labels: list[str]
    parents: dict[str, list[str]] = field(default_factory=dict)

    @property
    def roots(self) -> list[str]:
        return [l for l in self.labels if not self.parents.get(l)]

    def hyponyms_of(self, label: str) -> list[str]:
        """Labels (transitively) below ``label`` in the hierarchy."""
        below = []
        frontier = [label]
        while frontier:
            current = frontier.pop()
            for candidate in self.labels:
                if candidate in below or candidate == label:
                    continue
                if current in self.parents.get(candidate, ()):
                    below.append(candidate)
                    frontier.append(candidate)
        return below


def build_hierarchies(
    labels: list[str], comparator: SemanticComparator
) -> HypernymyHierarchy:
    """Hypernymy forest over ``labels`` via Definition 1 (Section 4.4)."""
    distinct: list[str] = []
    for label in labels:
        if label not in distinct:
            distinct.append(label)
    hierarchy = HypernymyHierarchy(labels=distinct)
    for child in distinct:
        for parent in distinct:
            if parent == child:
                continue
            if comparator.hypernym(parent, child):
                hierarchy.parents.setdefault(child, []).append(parent)
    return hierarchy


@dataclass
class IsolatedNamingOutcome:
    """Chosen label plus the evidence trail (for diagnostics/experiments)."""

    label: str | None
    roots: list[str]
    discarded_value_labels: list[str]
    li6_replacements: list[tuple[str, str]]  # (generic root, descriptive pick)


def name_isolated_cluster(
    cluster: Cluster,
    comparator: SemanticComparator,
    analyzer: LabelAnalyzer | None = None,
    use_instances: bool = True,
) -> IsolatedNamingOutcome:
    """Elect the label of an isolated cluster (Section 4.4 + LI6/LI7).

    ``use_instances=False`` disables LI6/LI7 for the ablation experiments.
    """
    analyzer = analyzer or comparator.analyzer
    labels = cluster.labels()
    if not labels:
        return IsolatedNamingOutcome(None, [], [], [])

    discarded: list[str] = []
    if use_instances:
        # LI7: labels that are values of sibling fields never get elected.
        value_findings = li7_value_labels(cluster)
        value_labels = {v for values in value_findings.values() for v in values}
        kept = [l for l in labels if l not in value_labels]
        if kept:
            discarded = [l for l in labels if l in value_labels]
            labels = kept

    hierarchy = build_hierarchies(labels, comparator)
    roots = hierarchy.roots

    def label_frequency(label: str) -> int:
        return sum(
            1 for node in cluster.members.values() if node.label == label
        )

    # LI6: a generic root bounded (by domain containment) to a descriptive
    # hyponym yields to that hyponym.
    replacements: list[tuple[str, str]] = []
    elected_pool: list[str] = []
    for root in roots:
        choice = root
        if use_instances:
            hyponyms = hierarchy.hyponyms_of(root)
            hyponyms.sort(
                key=lambda l: (-analyzer.label(l).content_word_count, -label_frequency(l), l)
            )
            for hyponym in hyponyms:
                if li6_semantically_equivalent(cluster, root, hyponym, comparator):
                    choice = hyponym
                    replacements.append((root, hyponym))
                    break
        elected_pool.append(choice)

    # Most descriptive first; frequency in the cluster breaks ties.
    elected_pool.sort(
        key=lambda l: (-analyzer.label(l).content_word_count, -label_frequency(l), l)
    )
    return IsolatedNamingOutcome(
        label=elected_pool[0] if elected_pool else None,
        roots=roots,
        discarded_value_labels=discarded,
        li6_replacements=replacements,
    )
