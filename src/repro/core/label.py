"""Labels as text + content-word sets — the unit the naming algorithm works on.

Section 3.2: "it is preferable to treat labels in a more systematic manner,
e.g. as n-dimensional vectors or set of tokens.  In the second normalization
step each field will be represented by a set of content words of its label."

A :class:`Label` bundles the raw text, the step-1 display form, and the
step-2 content-word tokens.  Labels are produced (and cached) by a
:class:`LabelAnalyzer`, which carries the lexicon used for base forms.

Interning
---------
Every Definition-1 predicate is fully determined by a label's case-folded
display form plus its conjunction flag: string equality compares the display
form, and the token sequence (hence stems and lemmas) is computed from the
display form alone (`content_tokens` tokenizes the step-1 form, which is
pure ASCII alphanumerics and spaces).  The analyzer therefore *interns*
labels on that canonical identity: distinct raw texts that normalize alike
(``"Day/Time"`` and ``"Day & Time"`` both display as ``"Day Time"`` with the
conjunction flag set) share one token tuple and one intern :attr:`Label.key`.
The :class:`~repro.core.semantics.SemanticComparator` keys its pairwise
relation cache on those intern keys, so each distinct display string is
analyzed — and each distinct pair compared — once per comparator lifetime.

Intern keys are drawn from a process-wide counter, so keys from different
analyzers never collide; a key is only ever reused for a label that is
interchangeable in every comparison.  When the underlying lexicon mutates
(:attr:`MiniWordNet.version` bumps), all analyses are stale — lemmas came
from the old vocabulary — so the analyzer drops everything and re-interns.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import cached_property

from ..lexicon.normalize import Token, content_tokens, display_form
from ..lexicon.wordnet import MiniWordNet
from ..perf import CacheCounter

__all__ = ["Label", "LabelAnalyzer"]

_CONJUNCTION_MARKERS = ("&", "/")
_CONJUNCTION_WORDS = frozenset({"and", "or"})


def _detect_conjunction(raw: str) -> bool:
    """True when ``raw`` contains and/&, or// (Definition 1's restriction)."""
    lowered = raw.lower()
    if any(marker in lowered for marker in _CONJUNCTION_MARKERS):
        return True
    return any(word in _CONJUNCTION_WORDS for word in lowered.split())


@dataclass(frozen=True)
class Label:
    """An analyzed field/internal-node label.

    ``raw``
        the text as it appears on the interface;
    ``display``
        step-1 normalization (comments stripped, punctuation spaced);
    ``tokens``
        step-2 content words, in label order, deduplicated by stem;
    ``stems``
        the frozen set of token stems — the "set of content words"
        representation of Definition 1;
    ``key``
        the analyzer's intern id: labels with equal keys are
        interchangeable in every Definition-1 comparison.  ``-1`` marks a
        label built outside an analyzer (never interned, never cached by
        key).
    """

    raw: str
    display: str
    tokens: tuple[Token, ...]
    key: int = field(default=-1, compare=False)

    @cached_property
    def stems(self) -> frozenset[str]:
        return frozenset(token.stem for token in self.tokens)

    @property
    def content_word_count(self) -> int:
        """The *expressiveness* contribution of this label (Section 4.2.1)."""
        return len(self.tokens)

    @cached_property
    def has_conjunction(self) -> bool:
        """True when the label contains and/&, or//.

        Definition 1 restricts the synonym/hypernym relations to labels
        without conjunctions ("We assume A and B do not contain and (&),
        or (/)").
        """
        return _detect_conjunction(self.raw)

    def __str__(self) -> str:
        return self.raw

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Label({self.raw!r}, stems={sorted(self.stems)})"


class LabelAnalyzer:
    """Builds, caches and interns :class:`Label` objects against one lexicon.

    All Definition-1 comparisons in :mod:`repro.core.semantics` require both
    labels to come from the same analyzer so token lemmas agree.

    Three caches stack here, cheapest first:

    * ``raw text -> Label`` — repeat analyses of the same string are one
      dict hit;
    * ``case-folded display -> tokens`` — distinct raw texts with the same
      step-1 form ("Price $", "Price!") share the expensive step-2
      morphy/stem work;
    * the intern table — canonical identity ``(display casefold,
      conjunction flag)`` to a process-unique :attr:`Label.key`, the cache
      key downstream relation caches use.

    All three are dropped when the lexicon's mutation stamp moves, since
    token lemmas are validated against its vocabulary.
    """

    #: Process-wide id source: keys never collide across analyzers.
    _intern_ids = itertools.count()

    def __init__(self, wordnet: MiniWordNet | None = None) -> None:
        if wordnet is None:
            from ..lexicon.data import default_wordnet

            wordnet = default_wordnet()
        self.wordnet = wordnet
        self._cache: dict[str, Label] = {}
        self._tokens_by_display: dict[str, tuple[Token, ...]] = {}
        self._intern: dict[tuple[str, bool], int] = {}
        self._lexicon_version = wordnet.version
        self.counter = CacheCounter("labels")

    def label(self, text: str) -> Label:
        """Analyze ``text`` (cached and interned)."""
        if self.wordnet.version != self._lexicon_version:
            self.invalidate()
        cached = self._cache.get(text)
        if cached is not None:
            self.counter.hit()
            return cached
        self.counter.miss()
        display = display_form(text)
        display_key = display.casefold()
        tokens = self._tokens_by_display.get(display_key)
        if tokens is None:
            tokens = content_tokens(text, self.wordnet)
            self._tokens_by_display[display_key] = tokens
        canonical = (display_key, _detect_conjunction(text))
        key = self._intern.get(canonical)
        if key is None:
            key = next(LabelAnalyzer._intern_ids)
            self._intern[canonical] = key
        analyzed = Label(raw=text, display=display, tokens=tokens, key=key)
        self._cache[text] = analyzed
        return analyzed

    def invalidate(self) -> None:
        """Forget every analysis — the lexicon changed underneath us.

        Fresh intern keys are handed out afterwards (the id counter never
        rewinds), so relation caches keyed on old ids can never serve a
        stale answer for a re-analyzed label.
        """
        self._cache.clear()
        self._tokens_by_display.clear()
        self._intern.clear()
        self._lexicon_version = self.wordnet.version

    def cache_stats(self) -> dict:
        """JSON-ready cache counters (part of the perf cache hierarchy)."""
        return {
            **self.counter.snapshot(),
            "size": len(self._cache),
            "distinct_displays": len(self._tokens_by_display),
            "interned": len(self._intern),
        }

    def __call__(self, text: str) -> Label:
        return self.label(text)
