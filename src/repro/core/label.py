"""Labels as text + content-word sets — the unit the naming algorithm works on.

Section 3.2: "it is preferable to treat labels in a more systematic manner,
e.g. as n-dimensional vectors or set of tokens.  In the second normalization
step each field will be represented by a set of content words of its label."

A :class:`Label` bundles the raw text, the step-1 display form, and the
step-2 content-word tokens.  Labels are produced (and cached) by a
:class:`LabelAnalyzer`, which carries the lexicon used for base forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lexicon.normalize import Token, content_tokens, display_form
from ..lexicon.wordnet import MiniWordNet

__all__ = ["Label", "LabelAnalyzer"]

_CONJUNCTION_MARKERS = ("&", "/")
_CONJUNCTION_WORDS = frozenset({"and", "or"})


@dataclass(frozen=True)
class Label:
    """An analyzed field/internal-node label.

    ``raw``
        the text as it appears on the interface;
    ``display``
        step-1 normalization (comments stripped, punctuation spaced);
    ``tokens``
        step-2 content words, in label order, deduplicated by stem;
    ``stems``
        the frozen set of token stems — the "set of content words"
        representation of Definition 1.
    """

    raw: str
    display: str
    tokens: tuple[Token, ...]

    @property
    def stems(self) -> frozenset[str]:
        return frozenset(token.stem for token in self.tokens)

    @property
    def content_word_count(self) -> int:
        """The *expressiveness* contribution of this label (Section 4.2.1)."""
        return len(self.tokens)

    @property
    def has_conjunction(self) -> bool:
        """True when the label contains and/&, or//.

        Definition 1 restricts the synonym/hypernym relations to labels
        without conjunctions ("We assume A and B do not contain and (&),
        or (/)").
        """
        lowered = self.raw.lower()
        if any(marker in lowered for marker in _CONJUNCTION_MARKERS):
            return True
        return any(word in _CONJUNCTION_WORDS for word in lowered.split())

    def __str__(self) -> str:
        return self.raw

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Label({self.raw!r}, stems={sorted(self.stems)})"


class LabelAnalyzer:
    """Builds and caches :class:`Label` objects against one lexicon.

    All Definition-1 comparisons in :mod:`repro.core.semantics` require both
    labels to come from the same analyzer so token lemmas agree.
    """

    def __init__(self, wordnet: MiniWordNet | None = None) -> None:
        if wordnet is None:
            from ..lexicon.data import default_wordnet

            wordnet = default_wordnet()
        self.wordnet = wordnet
        self._cache: dict[str, Label] = {}

    def label(self, text: str) -> Label:
        """Analyze ``text`` (cached)."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        analyzed = Label(
            raw=text,
            display=display_form(text),
            tokens=content_tokens(text, self.wordnet),
        )
        self._cache[text] = analyzed
        return analyzed

    def __call__(self, text: str) -> Label:
        return self.label(text)
