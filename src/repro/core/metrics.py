"""Evaluation metrics of Section 7: LQ, FldAcc, IntAcc, LI involvement.

* **LQ** (labeling quality) — per-interface percentage of labeled nodes,
  averaged over a domain's source interfaces (Table 6, column 5).
* **FldAcc** (fields consistency accuracy) — fields consistently labeled
  over total fields; an unlabeled field is excused when it carries
  instances ("if there are leaves without a label then they will have
  instances associated with them").
* **IntAcc** (internal nodes accuracy) — internal nodes with labels (at
  least weakly consistent) over all internal nodes.
* **LI involvement** — Figure 10's per-rule shares, read off the
  :class:`InferenceLog`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode
from .inference import InferenceRule
from .result import LabelingResult

__all__ = [
    "IntegratedStats",
    "labeling_quality",
    "fields_consistency_accuracy",
    "internal_nodes_accuracy",
    "integrated_stats",
    "inference_shares",
]


def labeling_quality(interfaces: list[QueryInterface]) -> float:
    """Average per-interface fraction of labeled nodes (LQ)."""
    if not interfaces:
        return 1.0
    return sum(qi.labeling_quality() for qi in interfaces) / len(interfaces)


def fields_consistency_accuracy(result: LabelingResult) -> float:
    """FldAcc over the integrated interface's fields.

    A field counts as consistently labeled when the algorithm assigned it a
    label, or when it is unlabeled but carries instances that make its
    semantics inferable (the paper's Real-Estate Lease-Rate example shows
    the remaining case counting against the metric).
    """
    leaves = [leaf for leaf in result.root.leaves() if leaf.cluster is not None]
    if not leaves:
        return 1.0
    ok = 0
    for leaf in leaves:
        label = result.field_labels.get(leaf.cluster)
        if label:
            ok += 1
        elif leaf.instances:
            ok += 1
    return ok / len(leaves)


def internal_nodes_accuracy(result: LabelingResult) -> float:
    """IntAcc: labeled internal nodes over all internal nodes (excl. root)."""
    internal = result.internal_nodes()
    if not internal:
        return 1.0
    labeled = sum(
        1 for node in internal if result.node_labels.get(node.name)
    )
    return labeled / len(internal)


@dataclass(frozen=True)
class IntegratedStats:
    """Table 6, columns 6-13 for one domain's integrated interface."""

    leaves: int
    groups: int
    isolated_leaves: int
    root_leaves: int
    internal_nodes: int
    depth: int

    @classmethod
    def of(cls, result: LabelingResult) -> "IntegratedStats":
        root: SchemaNode = result.root
        partition = result.partition
        return cls(
            leaves=len(root.leaves()),
            groups=len(partition.regular),
            isolated_leaves=len(partition.isolated),
            root_leaves=len(partition.c_root()),
            internal_nodes=len(result.internal_nodes()),
            depth=root.height(),
        )


def integrated_stats(result: LabelingResult) -> IntegratedStats:
    """Table 6's integrated-interface characteristics for one run."""
    return IntegratedStats.of(result)


def inference_shares(result: LabelingResult) -> dict[InferenceRule, float]:
    """Figure 10's involvement shares for one labeling run."""
    return result.inference_log.shares()
