"""The three-phase naming algorithm (Section 6) end to end.

"The naming algorithm is a three-phase traversal algorithm.  In the first
phase, in a bottom-up traversal, it determines the set of candidate labels
for leaves and internal nodes.  Second traversal determines the level of
consistency which may be possible for the schema tree.  In the third phase,
each node is assigned a label from its set of candidate labels so that the
label complies with consistency level established in the previous phase."

Entry point: :func:`label_integrated_interface`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.tracer import event as obs_event
from ..obs.tracer import span as obs_span
from ..resilience.faults import maybe_inject
from ..schema.clusters import Mapping
from ..schema.groups import Group, GroupKind, partition_clusters
from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode
from .conflicts import resolve_homonyms
from .consistency import ConsistencyLevel
from .group_relation import GroupRelation
from .inference import InferenceLog, InferenceRule
from .internal_nodes import CandidateFinder, CandidateLabel
from .isolated import name_isolated_cluster
from .label import LabelAnalyzer
from .result import LabelingResult, NodeStatus, TreeConsistency
from .semantics import SemanticComparator
from .solutions import GroupNamingResult, GroupSolution, name_group

__all__ = ["NamingOptions", "label_corpus", "label_integrated_interface"]


@dataclass(frozen=True)
class NamingOptions:
    """Configuration knobs, mostly for the ablation experiments."""

    use_instances: bool = True
    max_level: ConsistencyLevel = ConsistencyLevel.SYNONYMY
    enabled_rules: frozenset[InferenceRule] = frozenset(InferenceRule)
    repair_homonyms: bool = True
    keep_inference_events: bool = True


def label_integrated_interface(
    integrated_root: SchemaNode,
    interfaces: list[QueryInterface],
    mapping: Mapping,
    comparator: SemanticComparator | None = None,
    options: NamingOptions | None = None,
    domain: str | None = None,
) -> LabelingResult:
    """Assign meaningful labels to every node of the integrated interface.

    ``integrated_root`` — the merged schema tree, leaves tagged with cluster
    names; ``interfaces``/``mapping`` — the source interfaces and the global
    cluster mapping (after 1:m reduction).  Labels are written in place on
    the tree and collected in the returned :class:`LabelingResult`.
    """
    options = options or NamingOptions()
    comparator = comparator or SemanticComparator()
    analyzer = comparator.analyzer
    log = InferenceLog(keep_events=options.keep_inference_events)

    maybe_inject("pipeline.phase1", wordnet=comparator.wordnet)
    with obs_span("phase:partitions") as sp:
        partition = partition_clusters(integrated_root)
        if sp is not None:
            sp.tags.update(
                regular=len(partition.regular),
                isolated=len(partition.isolated),
                root_group=partition.root_group is not None,
            )
    result = LabelingResult(
        root=integrated_root, partition=partition, inference_log=log
    )

    # ------------------------------------------------------------------
    # Phase 1a: name groups (regular + root pseudo-group).
    # ------------------------------------------------------------------
    named_groups: list[Group] = list(partition.regular)
    if partition.root_group is not None:
        named_groups.append(partition.root_group)
    with obs_span("phase:group_relations", groups=len(named_groups)):
        relations = {
            group.name: GroupRelation.from_mapping(group, mapping)
            for group in named_groups
        }
    # The per-group ladder walk: find_partitions + combine closure +
    # solution ranking (Sections 4-5); the closure dominates its cost.
    with obs_span("phase:combine_closure", groups=len(named_groups)):
        for group in named_groups:
            relation = relations[group.name]
            with obs_span(
                group.name,
                clusters=len(relation.clusters),
                tuples=len(relation.tuples),
            ) as sp:
                group_result = name_group(
                    relation, comparator, analyzer, max_level=options.max_level
                )
                result.group_results[group.name] = group_result
                if sp is not None:
                    sp.tags["consistent"] = group_result.consistent
                    if group_result.level is not None:
                        sp.tags["level"] = group_result.level.name

    # Phase 1b: isolated clusters via the RAN variant.
    with obs_span("isolated_clusters", count=len(partition.isolated)):
        for group in partition.isolated:
            cluster_name = group.clusters[0]
            outcome = name_isolated_cluster(
                mapping[cluster_name],
                comparator,
                analyzer,
                use_instances=options.use_instances,
            )
            result.isolated_outcomes[cluster_name] = outcome
            if options.use_instances:
                for __ in outcome.discarded_value_labels:
                    log.record(
                        InferenceRule.LI7, domain=domain, node=cluster_name,
                        label=outcome.label, detail="discarded value label",
                    )
                for __ in outcome.li6_replacements:
                    log.record(
                        InferenceRule.LI6, domain=domain, node=cluster_name,
                        label=outcome.label, detail="domain-bounded generic root",
                    )

    with obs_span("phase:internal_inference") as sp:
        # Phase 1c: candidate labels for internal nodes.
        finder = CandidateFinder(
            interfaces,
            mapping,
            comparator,
            analyzer,
            log=log,
            domain=domain,
            enabled_rules=options.enabled_rules,
        )
        internal = [
            node
            for node in integrated_root.internal_nodes()
            if node is not integrated_root
        ]
        candidates: dict[str, list[CandidateLabel]] = {
            node.name: finder.candidates_for(node) for node in internal
        }
        potentials: dict[str, list[str]] = {
            node.name: finder.potential_labels_for(node) for node in internal
        }

        # --------------------------------------------------------------
        # Phases 2+3: assign labels top-down, narrowing group solutions.
        # --------------------------------------------------------------
        maybe_inject("pipeline.phase3", wordnet=comparator.wordnet)
        allowed: dict[str, list[GroupSolution]] = {
            name: list(res.solutions) for name, res in result.group_results.items()
        }
        groups_by_parent = _groups_by_name(named_groups)

        for node in internal:  # pre-order == top-down
            _assign_internal_label(
                node,
                candidates[node.name],
                potentials[node.name],
                result,
                finder,
                allowed,
                groups_by_parent,
                comparator,
            )
        if sp is not None:
            sp.tags.update(
                internal_nodes=len(internal),
                labeled=sum(
                    1
                    for node in internal
                    if result.node_labels.get(node.name)
                ),
            )

    # Finalize group solutions and write leaf labels.
    with obs_span("phase:conflict_repair") as sp:
        for group in named_groups:
            group_result = result.group_results[group.name]
            pool = allowed.get(group.name) or group_result.solutions
            solution = pool[0] if pool else None
            if solution is None:
                continue
            if options.repair_homonyms:
                result.repairs.extend(
                    resolve_homonyms(solution, group_result.relation, comparator)
                )
            result.chosen_solutions[group.name] = solution
            for cluster_name in group.clusters:
                result.field_labels[cluster_name] = solution.label_for(cluster_name)
        if sp is not None:
            sp.tags["repairs"] = len(result.repairs)
            if result.repairs:
                obs_event("homonyms.repaired", count=len(result.repairs))

    for group in partition.isolated:
        cluster_name = group.clusters[0]
        outcome = result.isolated_outcomes[cluster_name]
        result.field_labels[cluster_name] = outcome.label

    _write_leaf_labels(integrated_root, result)
    result.classification = _classify(result)
    return result


def label_corpus(
    interfaces: list[QueryInterface],
    mapping: Mapping,
    comparator: SemanticComparator | None = None,
    options: NamingOptions | None = None,
    domain: str | None = None,
) -> tuple[SchemaNode, LabelingResult]:
    """Merge and label a raw corpus end to end: the reusable entry point.

    Takes a corpus exactly as :func:`repro.schema.serialize.load_corpus`
    returns it (1:m correspondences not yet reduced), performs the
    reduction, builds the integrated tree, and runs the naming algorithm.
    Everything it touches is owned by the caller's ``interfaces``/``mapping``
    objects — no module or process state is read or written — so concurrent
    calls on independent corpora are safe.  This is what the labeling
    service (:mod:`repro.service`) executes per request; the ``label`` CLI
    command goes through it too.
    """
    # Local import: repro.merge is structurally upstream of the naming
    # algorithm and must not become an import-time dependency of repro.core.
    from ..merge.merger import merge_interfaces

    maybe_inject("pipeline.merge")
    with obs_span("merge", interfaces=len(interfaces), clusters=len(mapping)):
        mapping.expand_one_to_many(interfaces)
        root = merge_interfaces(interfaces, mapping)
    result = label_integrated_interface(
        root,
        interfaces,
        mapping,
        comparator=comparator,
        options=options,
        domain=domain,
    )
    return root, result


# ----------------------------------------------------------------------
# Helpers.
# ----------------------------------------------------------------------


def _groups_by_name(groups: list[Group]) -> dict[str, Group]:
    return {group.name: group for group in groups}


def _descendant_groups(node: SchemaNode, result: LabelingResult) -> list[str]:
    """Names of named groups whose clusters all lie under ``node``."""
    under = node.descendant_leaf_clusters()
    names = []
    for name, group_result in result.group_results.items():
        clusters = frozenset(group_result.group.clusters)
        if group_result.group.kind is GroupKind.ROOT:
            continue  # root-group fields have no internal ancestors but the root
        if clusters <= under:
            names.append(name)
    return names


def _path_labels(node: SchemaNode, result: LabelingResult) -> list[str]:
    """Labels already assigned on the path from ``node`` to the root."""
    labels = []
    for ancestor in node.ancestors():
        assigned = result.node_labels.get(ancestor.name)
        if assigned:
            labels.append(assigned)
    return labels


def _assign_internal_label(
    node: SchemaNode,
    node_candidates: list[CandidateLabel],
    node_potentials: list[str],
    result: LabelingResult,
    finder: CandidateFinder,
    allowed: dict[str, list[GroupSolution]],
    groups_by_name: dict[str, Group],
    comparator: SemanticComparator,
) -> None:
    """Pick a label for one internal node (Definitions 6-8 logic).

    Preference order: a candidate consistent (Definition 6) with some
    still-allowed solution of *every* descendant group — assigning it
    narrows those groups' allowed solutions (the cross-stage correlation of
    Section 4.3); otherwise the best candidate at all (weak consistency);
    otherwise the node stays unlabeled.  Candidates string-equal to a label
    already used on the path to the root are skipped (Proposition 2's
    ``Le - Lpath(e)``).
    """
    path_labels = _path_labels(node, result)
    usable = [
        c
        for c in node_candidates
        if not any(comparator.string_equal(c.text, p) for p in path_labels)
    ]
    group_names = _descendant_groups(node, result)

    for candidate in usable:
        narrowed: dict[str, list[GroupSolution]] = {}
        feasible = True
        for group_name in group_names:
            group_result = result.group_results[group_name]
            pool = allowed.get(group_name, [])
            compatible = [
                s
                for s in pool
                if finder.candidate_consistent_with_solution(
                    candidate, group_result, s
                )
            ]
            if not compatible:
                feasible = False
                break
            narrowed[group_name] = compatible
        if feasible:
            for group_name, pool in narrowed.items():
                allowed[group_name] = pool
            result.node_labels[node.name] = candidate.text
            node.label = candidate.text
            all_groups_consistent = all(
                result.group_results[g].consistent for g in group_names
            )
            result.node_status[node.name] = (
                NodeStatus.CONSISTENT
                if all_groups_consistent
                else NodeStatus.WEAKLY_CONSISTENT
            )
            return

    if usable:
        # No candidate satisfies Definition 6 against every group —
        # fall back to the best candidate: weakly consistent (Def. 7 cond. 1).
        best = usable[0]
        result.node_labels[node.name] = best.text
        node.label = best.text
        result.node_status[node.name] = NodeStatus.WEAKLY_CONSISTENT
        return

    result.node_labels[node.name] = None
    node.label = None
    result.node_status[node.name] = (
        NodeStatus.UNLABELED_BLOCKED
        if node_potentials
        else NodeStatus.UNLABELED_NO_POTENTIALS
    )


def _write_leaf_labels(root: SchemaNode, result: LabelingResult) -> None:
    for leaf in root.leaves():
        if leaf.cluster is None:
            continue
        if leaf.cluster in result.field_labels:
            leaf.label = result.field_labels[leaf.cluster]


def _classify(result: LabelingResult) -> TreeConsistency:
    """Definition 8's three-way classification.

    Two readings are reconciled here.  Definition 8 literally says a group
    without a consistent naming solution makes the tree inconsistent, yet
    the paper's own auto domain contains Table 3's partially consistent
    group and is still reported (weakly) consistent; its inconsistency
    narrative is about *propagation* — internal nodes left unlabeled while
    their potential-label sets are nonempty (airline), or candidate sets
    promoted to ancestors (car rental).  We therefore call a tree
    inconsistent when (a) some internal node is blocked that way, or
    (b) a regular group's final solution leaves a *labelable* cluster
    (one some source labels) without a label.  Partially consistent
    solutions that still name every labelable field downgrade the tree to
    weakly consistent only.  The root pseudo-group is exempt throughout —
    Section 4 accepts partially consistent solutions there by design.
    """
    blocked = any(
        status is NodeStatus.UNLABELED_BLOCKED
        for status in result.node_status.values()
    )
    if blocked or _regular_group_label_gap(result):
        return TreeConsistency.INCONSISTENT
    statuses = list(result.node_status.values())
    all_groups_consistent = all(
        res.consistent
        for res in result.group_results.values()
        if res.group.kind is GroupKind.REGULAR
    )
    if all_groups_consistent and all(
        s is NodeStatus.CONSISTENT for s in statuses
    ):
        return TreeConsistency.CONSISTENT
    # Unlabeled nodes with empty potential sets do not make the tree
    # inconsistent by Definition 8, but they do preclude full consistency.
    return TreeConsistency.WEAKLY_CONSISTENT


def _regular_group_label_gap(result: LabelingResult) -> bool:
    """True when a regular group leaves a labelable cluster unlabeled."""
    for group_result in result.group_results.values():
        if group_result.group.kind is not GroupKind.REGULAR:
            continue
        labelable = {
            c
            for c in group_result.group.clusters
            if any(
                t.label_for(c) is not None for t in group_result.relation.tuples
            )
        }
        for cluster in labelable:
            if not result.field_labels.get(cluster):
                return True
    return False
