"""Result objects of the naming pipeline: assignments, statuses, diagnostics."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..schema.groups import GroupPartition
from ..schema.tree import SchemaNode
from .conflicts import HomonymRepair
from .inference import InferenceLog
from .isolated import IsolatedNamingOutcome
from .solutions import GroupNamingResult, GroupSolution

__all__ = ["NodeStatus", "TreeConsistency", "LabelingResult"]


class NodeStatus(str, Enum):
    """Per-internal-node outcome of the labeling (Definitions 7-8)."""

    CONSISTENT = "consistent"
    WEAKLY_CONSISTENT = "weakly_consistent"
    UNLABELED_BLOCKED = "unlabeled_blocked"        # potentials existed, all unusable
    UNLABELED_NO_POTENTIALS = "unlabeled_no_potentials"


class TreeConsistency(str, Enum):
    """Definition 8's three-way classification of the integrated tree."""

    CONSISTENT = "consistent"
    WEAKLY_CONSISTENT = "weakly_consistent"
    INCONSISTENT = "inconsistent"


@dataclass
class LabelingResult:
    """Everything the naming algorithm produced for one integrated tree.

    Labels are also written onto the integrated tree's nodes in place, so
    ``root.pretty()`` renders the labeled interface directly.
    """

    root: SchemaNode
    partition: GroupPartition
    group_results: dict[str, GroupNamingResult] = field(default_factory=dict)
    chosen_solutions: dict[str, GroupSolution] = field(default_factory=dict)
    isolated_outcomes: dict[str, IsolatedNamingOutcome] = field(default_factory=dict)
    node_labels: dict[str, str | None] = field(default_factory=dict)
    node_status: dict[str, NodeStatus] = field(default_factory=dict)
    field_labels: dict[str, str | None] = field(default_factory=dict)  # by cluster
    repairs: list[HomonymRepair] = field(default_factory=list)
    inference_log: InferenceLog = field(default_factory=InferenceLog)
    classification: TreeConsistency = TreeConsistency.INCONSISTENT

    # ------------------------------------------------------------------
    # Convenience accessors.
    # ------------------------------------------------------------------

    def label_of_cluster(self, cluster: str) -> str | None:
        return self.field_labels.get(cluster)

    def label_of_node(self, node_name: str) -> str | None:
        return self.node_labels.get(node_name)

    def internal_nodes(self) -> list[SchemaNode]:
        return [
            node
            for node in self.root.internal_nodes()
            if node is not self.root
        ]

    def unlabeled_fields(self) -> list[str]:
        """Clusters whose field ended up without a label (the paper's
        Real-Estate "No Label" case)."""
        return [c for c, l in self.field_labels.items() if l is None]

    def summary(self) -> str:
        """Human-readable digest used by examples and the benches."""
        lines = [
            f"classification: {self.classification.value}",
            f"fields labeled: "
            f"{sum(1 for l in self.field_labels.values() if l)}/{len(self.field_labels)}",
            f"internal nodes labeled: "
            f"{sum(1 for l in self.node_labels.values() if l)}/{len(self.node_labels)}",
            f"homonym repairs: {len(self.repairs)}",
            f"inference applications: {self.inference_log.total()}",
        ]
        return "\n".join(lines)
