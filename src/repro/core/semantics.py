"""Definition 1 — the semantic relationships between two labels.

Given labels A, B with content-word sets ``Acw = {a1..an}``, ``Bcw = {b1..bm}``:

* **A string_equal B** — identical display forms (plain string comparison).
* **A equal B** — ``Acw = Bcw`` (e.g. *Type of Job* equals *Job Type*).
* **A synonym B** — n = m, every element of Acw and Bcw participates in at
  least one equality-or-synonymy relationship with the other side, and at
  least one of those relationships is WordNet synonymy (e.g. *Area of Study*
  synonym *Field of Work*).
* **A hypernym B** — n <= m and every ai is related (equality, synonymy or
  WordNet hypernymy) to some bj, with n < m or at least one hypernymy
  (e.g. *Class* hypernym *Class of Tickets*).
* **A hyponym B** — B hypernym A.

The synonym and hypernym relations are only defined for labels without
conjunctions (and/&, or//), per the paper's closing note on Definition 1.

All functions are methods of :class:`SemanticComparator` so the lexicon is
fixed once; :func:`relation_between` reports the strongest relation, which
Definition 2's consistency ladder and the LI rules build on.
"""

from __future__ import annotations

from enum import IntEnum

from ..lexicon.normalize import Token
from ..lexicon.wordnet import MiniWordNet
from .label import Label, LabelAnalyzer

__all__ = ["LabelRelation", "SemanticComparator"]


class LabelRelation(IntEnum):
    """Strength-ordered label relations (higher = stronger)."""

    NONE = 0
    HYPONYM = 1
    HYPERNYM = 2
    SYNONYM = 3
    EQUAL = 4
    STRING_EQUAL = 5


class SemanticComparator:
    """Definition-1 relations over labels, bound to one lexicon."""

    def __init__(self, analyzer: LabelAnalyzer | None = None) -> None:
        self.analyzer = analyzer or LabelAnalyzer()
        self.wordnet: MiniWordNet = self.analyzer.wordnet

    # ------------------------------------------------------------------
    # Coercion.
    # ------------------------------------------------------------------

    def _as_label(self, label: str | Label) -> Label:
        if isinstance(label, Label):
            return label
        return self.analyzer.label(label)

    # ------------------------------------------------------------------
    # Token-level relations.
    # ------------------------------------------------------------------

    def tokens_equal(self, a: Token, b: Token) -> bool:
        """Content-word equality: identical stems (Preference ~ Preferred)."""
        return a.stem == b.stem

    def tokens_synonym(self, a: Token, b: Token) -> bool:
        """WordNet synonymy between the tokens' base forms."""
        return self.wordnet.are_synonyms(a.lemma, b.lemma)

    def tokens_hypernym(self, a: Token, b: Token) -> bool:
        """True when ``a`` is a WordNet hypernym of ``b``."""
        return self.wordnet.is_hypernym(a.lemma, b.lemma)

    def _tokens_related_for_hypernymy(self, a: Token, b: Token) -> tuple[bool, bool]:
        """(related?, via-hypernymy?) for the hypernym definition."""
        if self.tokens_equal(a, b) or self.tokens_synonym(a, b):
            return True, False
        if self.tokens_hypernym(a, b):
            return True, True
        return False, False

    # ------------------------------------------------------------------
    # Definition 1 relations.
    # ------------------------------------------------------------------

    def string_equal(self, a: str | Label, b: str | Label) -> bool:
        la, lb = self._as_label(a), self._as_label(b)
        return la.display.casefold() == lb.display.casefold()

    def equal(self, a: str | Label, b: str | Label) -> bool:
        la, lb = self._as_label(a), self._as_label(b)
        return bool(la.stems) and la.stems == lb.stems

    def synonym(self, a: str | Label, b: str | Label) -> bool:
        la, lb = self._as_label(a), self._as_label(b)
        if la.has_conjunction or lb.has_conjunction:
            return False
        n, m = len(la.tokens), len(lb.tokens)
        if n == 0 or n != m:
            return False
        saw_synonymy = False
        # Every element of Acw must relate to some element of Bcw ...
        for a_tok in la.tokens:
            related = False
            for b_tok in lb.tokens:
                if self.tokens_equal(a_tok, b_tok):
                    related = True
                elif self.tokens_synonym(a_tok, b_tok):
                    related = True
                    saw_synonymy = True
            if not related:
                return False
        # ... and vice versa.
        for b_tok in lb.tokens:
            if not any(
                self.tokens_equal(b_tok, a_tok) or self.tokens_synonym(b_tok, a_tok)
                for a_tok in la.tokens
            ):
                return False
        return saw_synonymy

    def hypernym(self, a: str | Label, b: str | Label) -> bool:
        """True when ``a`` is (strictly) more general than ``b`` by Def. 1."""
        la, lb = self._as_label(a), self._as_label(b)
        if la.has_conjunction or lb.has_conjunction:
            return False
        n, m = len(la.tokens), len(lb.tokens)
        if n == 0 or n > m:
            return False
        saw_hypernymy = False
        for a_tok in la.tokens:
            related = False
            for b_tok in lb.tokens:
                rel, via_hyp = self._tokens_related_for_hypernymy(a_tok, b_tok)
                if rel:
                    related = True
                    saw_hypernymy = saw_hypernymy or via_hyp
            if not related:
                return False
        return n < m or saw_hypernymy

    def hyponym(self, a: str | Label, b: str | Label) -> bool:
        return self.hypernym(b, a)

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    def relation_between(self, a: str | Label, b: str | Label) -> LabelRelation:
        """The strongest Definition-1 relation holding from ``a`` to ``b``."""
        if self.string_equal(a, b):
            return LabelRelation.STRING_EQUAL
        if self.equal(a, b):
            return LabelRelation.EQUAL
        if self.synonym(a, b):
            return LabelRelation.SYNONYM
        if self.hypernym(a, b):
            return LabelRelation.HYPERNYM
        if self.hyponym(a, b):
            return LabelRelation.HYPONYM
        return LabelRelation.NONE

    def similar(self, a: str | Label, b: str | Label) -> bool:
        """Equality-or-synonymy — the "essentially the same label" test the
        homonym check of Section 4.2.3 relies on."""
        return (
            self.string_equal(a, b)
            or self.equal(a, b)
            or self.synonym(a, b)
        )

    def at_least_as_general(self, a: str | Label, b: str | Label) -> bool:
        """Lexical part of Definition 5(i): a hypernym-or-equivalent of b."""
        return self.similar(a, b) or self.hypernym(a, b)
