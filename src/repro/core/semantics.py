"""Definition 1 — the semantic relationships between two labels.

Given labels A, B with content-word sets ``Acw = {a1..an}``, ``Bcw = {b1..bm}``:

* **A string_equal B** — identical display forms (plain string comparison).
* **A equal B** — ``Acw = Bcw`` (e.g. *Type of Job* equals *Job Type*).
* **A synonym B** — n = m, every element of Acw and Bcw participates in at
  least one equality-or-synonymy relationship with the other side, and at
  least one of those relationships is WordNet synonymy (e.g. *Area of Study*
  synonym *Field of Work*).
* **A hypernym B** — n <= m and every ai is related (equality, synonymy or
  WordNet hypernymy) to some bj, with n < m or at least one hypernymy
  (e.g. *Class* hypernym *Class of Tickets*).
* **A hyponym B** — B hypernym A.

The synonym and hypernym relations are only defined for labels without
conjunctions (and/&, or//), per the paper's closing note on Definition 1.

All functions are methods of :class:`SemanticComparator` so the lexicon is
fixed once; :func:`relation_between` reports the strongest relation, which
Definition 2's consistency ladder and the LI rules build on.

Memoization
-----------
The naming algorithm asks the same label pairs over and over — once per
consistency level in Definition 2's ladder, again for the LI rules, again
for homonym repair.  The comparator therefore memoises, per lifetime:

* ``relation_between`` — one entry per (a, b) pair, keyed on the labels'
  intern keys (:attr:`repro.core.label.Label.key`) or, for plain-string
  arguments, the strings themselves.  The stored strongest relation answers
  the whole Definition-2 ladder (string / equality / synonymy) as well as
  :meth:`similar` and :meth:`at_least_as_general` — all three are exact
  functions of the strongest relation (see the proofs inline).
* ``synonym`` / ``hypernym`` — the two predicates with quadratic token
  loops, memoised separately so the LI rules (which call them directly,
  not through the ladder) hit too.

Every memo is dropped when the lexicon's mutation stamp
(:attr:`MiniWordNet.version`) moves, so a vocabulary edit mid-run is
observed on the very next query — the same discipline the lexicon applies
to its own memos.  Caches are bounded by :data:`RELATION_CACHE_LIMIT`
against unbounded service vocabularies.
"""

from __future__ import annotations

from enum import IntEnum

from ..lexicon.normalize import Token
from ..lexicon.wordnet import MiniWordNet
from ..perf import CacheCounter
from .label import Label, LabelAnalyzer

__all__ = ["LabelRelation", "SemanticComparator"]

#: Per-memo entry bound; past it the memo is cleared (counted as evictions).
RELATION_CACHE_LIMIT = 1 << 18

#: Bound on memoised group-naming results (fewer, larger entries).
GROUP_CACHE_LIMIT = 1 << 11


class LabelRelation(IntEnum):
    """Strength-ordered label relations (higher = stronger)."""

    NONE = 0
    HYPONYM = 1
    HYPERNYM = 2
    SYNONYM = 3
    EQUAL = 4
    STRING_EQUAL = 5


class SemanticComparator:
    """Definition-1 relations over labels, bound to one lexicon.

    Safe to share across threads serving the same lexicon: the memos are
    append-only maps from deterministic keys to deterministic values, so
    the worst concurrent outcome is two threads computing the same entry.
    """

    def __init__(self, analyzer: LabelAnalyzer | None = None) -> None:
        self.analyzer = analyzer or LabelAnalyzer()
        self.wordnet: MiniWordNet = self.analyzer.wordnet
        self._relation_cache: dict = {}
        self._synonym_cache: dict = {}
        self._hypernym_cache: dict = {}
        #: Memoised ``name_group`` results keyed on the relation's content
        #: fingerprint (owned here because the comparator's lifetime defines
        #: the memoization scope; read and written by
        #: :func:`repro.core.solutions.name_group`).
        self._group_cache: dict = {}
        self._lexicon_version = self.wordnet.version
        self.relation_counter = CacheCounter("relations")
        self.predicate_counter = CacheCounter("predicates")
        self.group_counter = CacheCounter("group_results")
        #: Aggregates the per-run consistency pair caches (Definition 2).
        self.pair_counter = CacheCounter("consistency_pairs")

    # ------------------------------------------------------------------
    # Coercion and cache plumbing.
    # ------------------------------------------------------------------

    def _as_label(self, label: str | Label) -> Label:
        if isinstance(label, Label):
            return label
        return self.analyzer.label(label)

    @staticmethod
    def _cache_key(label: str | Label):
        """A hashable identity under which a comparison may be memoised.

        Strings key as themselves (skipping analysis entirely on a hit);
        analyzer-built labels key by their intern id.  A label built by
        hand (``key == -1``) keys as the object — content-hashed, still
        correct, just never shared.
        """
        if type(label) is str:
            return label
        return label.key if label.key >= 0 else label

    def _check_lexicon_version(self) -> None:
        """Drop every memo if the lexicon mutated since the last query."""
        if self.wordnet.version != self._lexicon_version:
            self._relation_cache.clear()
            self._synonym_cache.clear()
            self._hypernym_cache.clear()
            self._group_cache.clear()
            self._lexicon_version = self.wordnet.version

    def _bound(self, memo: dict, counter: CacheCounter) -> None:
        if len(memo) >= RELATION_CACHE_LIMIT:
            counter.evict(len(memo))
            memo.clear()

    # ------------------------------------------------------------------
    # Token-level relations.
    # ------------------------------------------------------------------

    def tokens_equal(self, a: Token, b: Token) -> bool:
        """Content-word equality: identical stems (Preference ~ Preferred)."""
        return a.stem == b.stem

    def tokens_synonym(self, a: Token, b: Token) -> bool:
        """WordNet synonymy between the tokens' base forms."""
        return self.wordnet.are_synonyms(a.lemma, b.lemma)

    def tokens_hypernym(self, a: Token, b: Token) -> bool:
        """True when ``a`` is a WordNet hypernym of ``b``."""
        return self.wordnet.is_hypernym(a.lemma, b.lemma)

    def _tokens_related_for_hypernymy(self, a: Token, b: Token) -> tuple[bool, bool]:
        """(related?, via-hypernymy?) for the hypernym definition."""
        if self.tokens_equal(a, b) or self.tokens_synonym(a, b):
            return True, False
        if self.tokens_hypernym(a, b):
            return True, True
        return False, False

    # ------------------------------------------------------------------
    # Definition 1 relations.
    # ------------------------------------------------------------------

    def string_equal(self, a: str | Label, b: str | Label) -> bool:
        la, lb = self._as_label(a), self._as_label(b)
        return la.display.casefold() == lb.display.casefold()

    def equal(self, a: str | Label, b: str | Label) -> bool:
        la, lb = self._as_label(a), self._as_label(b)
        return bool(la.stems) and la.stems == lb.stems

    def synonym(self, a: str | Label, b: str | Label) -> bool:
        self._check_lexicon_version()
        key = (self._cache_key(a), self._cache_key(b))
        cached = self._synonym_cache.get(key)
        if cached is not None:
            self.predicate_counter.hit()
            return cached
        self.predicate_counter.miss()
        result = self._synonym_uncached(self._as_label(a), self._as_label(b))
        self._bound(self._synonym_cache, self.predicate_counter)
        self._synonym_cache[key] = result
        # The synonym definition is symmetric (both directions are checked).
        self._synonym_cache[(key[1], key[0])] = result
        return result

    def _synonym_uncached(self, la: Label, lb: Label) -> bool:
        if la.has_conjunction or lb.has_conjunction:
            return False
        n, m = len(la.tokens), len(lb.tokens)
        if n == 0 or n != m:
            return False
        saw_synonymy = False
        # Every element of Acw must relate to some element of Bcw ...
        for a_tok in la.tokens:
            related = False
            for b_tok in lb.tokens:
                if self.tokens_equal(a_tok, b_tok):
                    related = True
                elif self.tokens_synonym(a_tok, b_tok):
                    related = True
                    saw_synonymy = True
            if not related:
                return False
        # ... and vice versa.
        for b_tok in lb.tokens:
            if not any(
                self.tokens_equal(b_tok, a_tok) or self.tokens_synonym(b_tok, a_tok)
                for a_tok in la.tokens
            ):
                return False
        return saw_synonymy

    def hypernym(self, a: str | Label, b: str | Label) -> bool:
        """True when ``a`` is (strictly) more general than ``b`` by Def. 1."""
        self._check_lexicon_version()
        key = (self._cache_key(a), self._cache_key(b))
        cached = self._hypernym_cache.get(key)
        if cached is not None:
            self.predicate_counter.hit()
            return cached
        self.predicate_counter.miss()
        result = self._hypernym_uncached(self._as_label(a), self._as_label(b))
        self._bound(self._hypernym_cache, self.predicate_counter)
        self._hypernym_cache[key] = result
        return result

    def _hypernym_uncached(self, la: Label, lb: Label) -> bool:
        if la.has_conjunction or lb.has_conjunction:
            return False
        n, m = len(la.tokens), len(lb.tokens)
        if n == 0 or n > m:
            return False
        saw_hypernymy = False
        for a_tok in la.tokens:
            related = False
            for b_tok in lb.tokens:
                rel, via_hyp = self._tokens_related_for_hypernymy(a_tok, b_tok)
                if rel:
                    related = True
                    saw_hypernymy = saw_hypernymy or via_hyp
            if not related:
                return False
        return n < m or saw_hypernymy

    def hyponym(self, a: str | Label, b: str | Label) -> bool:
        return self.hypernym(b, a)

    # ------------------------------------------------------------------
    # Aggregates.
    # ------------------------------------------------------------------

    def relation_between(self, a: str | Label, b: str | Label) -> LabelRelation:
        """The strongest Definition-1 relation holding from ``a`` to ``b``."""
        self._check_lexicon_version()
        ka, kb = self._cache_key(a), self._cache_key(b)
        cached = self._relation_cache.get((ka, kb))
        if cached is not None:
            self.relation_counter.hit()
            return cached
        self.relation_counter.miss()
        relation = self._relation_uncached(a, b)
        self._bound(self._relation_cache, self.relation_counter)
        self._relation_cache[(ka, kb)] = relation
        # The reverse entry follows for free in every case but HYPERNYM:
        # string/equality/synonymy are symmetric, NONE rules out all five
        # predicates in both directions, and HYPONYM(a,b) means
        # hypernym(b,a) holds, which the ladder for (b,a) reaches first.
        # A HYPERNYM result leaves hypernym(b,a) undetermined (the ladder
        # checks it before hyponym), so that direction is computed when
        # asked.
        if relation is not LabelRelation.HYPERNYM:
            reverse = (
                LabelRelation.HYPERNYM
                if relation is LabelRelation.HYPONYM
                else relation
            )
            self._relation_cache[(kb, ka)] = reverse
        return relation

    def _relation_uncached(self, a: str | Label, b: str | Label) -> LabelRelation:
        """Definition 1's ladder, strongest first (no relation-cache use)."""
        if self.string_equal(a, b):
            return LabelRelation.STRING_EQUAL
        if self.equal(a, b):
            return LabelRelation.EQUAL
        if self.synonym(a, b):
            return LabelRelation.SYNONYM
        if self.hypernym(a, b):
            return LabelRelation.HYPERNYM
        if self.hyponym(a, b):
            return LabelRelation.HYPONYM
        return LabelRelation.NONE

    def similar(self, a: str | Label, b: str | Label) -> bool:
        """Equality-or-synonymy — the "essentially the same label" test the
        homonym check of Section 4.2.3 relies on.

        Exactly ``relation_between(a, b) >= SYNONYM``: the ladder returns a
        value at least SYNONYM iff one of string-equality, equality or
        synonymy holds, which is this predicate's disjunction.
        """
        return self.relation_between(a, b) >= LabelRelation.SYNONYM

    def at_least_as_general(self, a: str | Label, b: str | Label) -> bool:
        """Lexical part of Definition 5(i): a hypernym-or-equivalent of b.

        Exactly ``relation_between(a, b) >= HYPERNYM``: the ladder returns
        HYPERNYM or stronger iff ``similar`` or ``hypernym`` holds (a
        HYPONYM result implies the ladder found ``hypernym(a, b)`` false).
        """
        return self.relation_between(a, b) >= LabelRelation.HYPERNYM

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict:
        """JSON-ready stats for every cache this comparator reaches.

        The hierarchy mirrors the computation: label analyses feed pairwise
        relations, which feed tuple-pair consistency decisions; WordNet
        memos sit under all of them.  Surfaced through ``GET /metrics``
        and ``repro profile``.
        """
        return {
            "labels": self.analyzer.cache_stats(),
            "relations": {
                **self.relation_counter.snapshot(),
                "size": len(self._relation_cache),
            },
            "predicates": {
                **self.predicate_counter.snapshot(),
                "size": len(self._synonym_cache) + len(self._hypernym_cache),
            },
            "group_results": {
                **self.group_counter.snapshot(),
                "size": len(self._group_cache),
            },
            "consistency_pairs": self.pair_counter.snapshot(),
            "wordnet": self.wordnet.cache_stats(),
        }
