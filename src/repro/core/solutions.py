"""Extracting naming solutions for groups (Sections 4.2 and 4.3).

The group-naming algorithm proceeds down the consistency ladder: string,
then equality, then synonymy level.  At the first level where a partition
covers every cluster of the group, each such partition yields its
tuple-solutions (via ``Combine*``); the preferred one maximizes
*expressiveness* (number of distinct content words across the labels),
breaking ties by *frequency of occurrence* (how many interfaces supply the
row — candidate solutions only) and finally deterministically.

When no level admits a covering partition, the greedy *partially consistent*
construction of Section 4.2.2 concatenates per-partition solutions, largest
first.

The result object mirrors Section 4.3: "the naming algorithm returns a set
of pairs (p, CLabels)" — partition plus labels — so the tree-level phase can
later pick the pair that correlates best with internal-node labels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.groups import Group
from .consistency import (
    ConsistencyLevel,
    ConsistencyPairCache,
    Partition,
    find_partitions,
    solutions_of_partition,
)
from .group_relation import GroupRelation, GroupTuple
from .label import LabelAnalyzer
from .semantics import GROUP_CACHE_LIMIT, SemanticComparator

__all__ = ["GroupSolution", "GroupNamingResult", "rank_tuple_solutions", "name_group"]


@dataclass
class GroupSolution:
    """One (partition, labels) pair for a group.

    ``partition`` is ``None`` exactly when the labels form a *partially
    consistent* solution stitched from several partitions (Section 4.2.2);
    Definition 6 consistency checks against internal-node labels only apply
    when a partition is present.
    """

    group: Group
    labels: dict[str, str | None]
    level: ConsistencyLevel | None
    partition: Partition | None
    expressiveness: int = 0
    frequency: int = 0
    is_candidate: bool = False

    @property
    def is_consistent(self) -> bool:
        return self.partition is not None

    def label_for(self, cluster: str) -> str | None:
        return self.labels.get(cluster)

    def supplying_interfaces(self) -> frozenset[str]:
        if self.partition is None:
            return frozenset()
        return self.partition.interface_names()


@dataclass
class GroupNamingResult:
    """Outcome of naming one group: its relation, all solution pairs, flags."""

    group: Group
    relation: GroupRelation
    solutions: list[GroupSolution] = field(default_factory=list)
    consistent: bool = False
    level: ConsistencyLevel | None = None

    @property
    def best(self) -> GroupSolution | None:
        return self.solutions[0] if self.solutions else None

    def solution_for_partition(self, interfaces: frozenset[str]) -> GroupSolution | None:
        """A solution whose partition contains all of ``interfaces``."""
        for solution in self.solutions:
            if solution.partition is None:
                continue
            if interfaces <= solution.supplying_interfaces():
                return solution
        return None


def _expressiveness(labels: tuple[str | None, ...], analyzer: LabelAnalyzer) -> int:
    """Distinct content words across a tuple-solution's labels (Sec. 4.2.1)."""
    stems: set[str] = set()
    for text in labels:
        if text is None:
            continue
        stems.update(analyzer.label(text).stems)
    return len(stems)


def rank_tuple_solutions(
    tuple_solutions: list[GroupTuple],
    relation: GroupRelation,
    analyzer: LabelAnalyzer,
) -> list[tuple[GroupTuple, int, int, bool]]:
    """Rank tuple-solutions by (expressiveness desc, frequency desc, key).

    Returns ``(tuple, expressiveness, frequency, is_candidate)`` quadruples.
    Frequency only differentiates candidate solutions (rows present in the
    relation); derived rows get frequency 0.
    """
    ranked = []
    for t in tuple_solutions:
        freq = relation.frequency_of(t.key())
        ranked.append(
            (t, _expressiveness(t.labels, analyzer), freq, freq > 0)
        )
    ranked.sort(
        key=lambda item: (
            -item[1],
            -item[2],
            tuple(v or "" for v in item[0].key()),
        )
    )
    return ranked


def _labelable_clusters(relation: GroupRelation) -> tuple[str, ...]:
    """Clusters some source actually labels.

    A cluster unlabeled on *every* source (the Real-Estate Lease-Rate case)
    cannot receive a label by any algorithm; consistency is judged — as the
    paper's Section 7 does — over the clusters that can be labeled, and the
    impossible one stays null (and is charged to FldAcc, not to Def. 8).
    """
    return tuple(
        c
        for c in relation.clusters
        if any(t.label_for(c) is not None for t in relation.tuples)
    )


def _solutions_at_level(
    relation: GroupRelation,
    labelable: tuple[str, ...],
    level: ConsistencyLevel,
    comparator: SemanticComparator,
    analyzer: LabelAnalyzer,
    cache: ConsistencyPairCache | None = None,
) -> list[GroupSolution]:
    """All ranked solutions from covering partitions at ``level`` (or [])."""
    partitions = find_partitions(relation, level, comparator, cache=cache)
    covering = [p for p in partitions if p.covers(labelable)]
    solutions: list[GroupSolution] = []
    for partition in covering:
        tuple_solutions = solutions_of_partition(
            partition, labelable, comparator, cache=cache
        )
        for t, expr, freq, is_cand in rank_tuple_solutions(
            tuple_solutions, relation, analyzer
        ):
            labels: dict[str, str | None] = {c: None for c in relation.clusters}
            labels.update(zip(labelable, t.labels))
            solutions.append(
                GroupSolution(
                    group=relation.group,
                    labels=labels,
                    level=level,
                    partition=partition,
                    expressiveness=expr,
                    frequency=freq,
                    is_candidate=is_cand,
                )
            )
    solutions.sort(key=lambda s: (-s.expressiveness, -s.frequency))
    return solutions


def _best_partition_solution(
    partition: Partition,
    relation: GroupRelation,
    comparator: SemanticComparator,
    analyzer: LabelAnalyzer,
    cache: ConsistencyPairCache | None = None,
) -> GroupTuple | None:
    """Best tuple-solution of ``partition`` over the clusters it covers."""
    covered = tuple(
        c for c in relation.clusters if c in partition.covered_clusters
    )
    if not covered:
        return None
    tuple_solutions = solutions_of_partition(
        partition, covered, comparator, cache=cache
    )
    if not tuple_solutions:
        return None
    ranked = rank_tuple_solutions(tuple_solutions, relation, analyzer)
    best = ranked[0][0]
    # Re-expand to the full cluster tuple with nulls outside the coverage.
    labels = tuple(
        best.label_for(c) if c in covered else None for c in relation.clusters
    )
    return GroupTuple(interface=best.interface, labels=labels, clusters=relation.clusters)


def _partially_consistent(
    relation: GroupRelation,
    comparator: SemanticComparator,
    analyzer: LabelAnalyzer,
    cache: ConsistencyPairCache | None = None,
) -> GroupSolution:
    """Greedy concatenation of per-partition solutions (Section 4.2.2)."""
    partitions = find_partitions(
        relation, ConsistencyLevel.SYNONYMY, comparator, cache=cache
    )
    per_partition: list[GroupTuple] = []
    for partition in partitions:
        best = _best_partition_solution(
            partition, relation, comparator, analyzer, cache
        )
        if best is not None:
            per_partition.append(best)
    per_partition.sort(
        key=lambda t: (
            -t.non_null_count(),
            -_expressiveness(t.labels, analyzer),
            tuple(v or "" for v in t.key()),
        )
    )

    labels: dict[str, str | None] = {c: None for c in relation.clusters}
    for t in per_partition:
        if all(v is not None for v in labels.values()):
            break
        for cluster in relation.clusters:
            if labels[cluster] is None:
                labels[cluster] = t.label_for(cluster)

    return GroupSolution(
        group=relation.group,
        labels=labels,
        level=None,
        partition=None,
        expressiveness=_expressiveness(tuple(labels.values()), analyzer),
    )


def _relation_fingerprint(
    relation: GroupRelation, max_level: ConsistencyLevel
) -> tuple:
    """Everything ``name_group``'s output depends on besides the lexicon.

    The group's identity (name, kind, clusters) plus the relation's rows in
    order, plus the ladder truncation.  Two relations with equal
    fingerprints produce equal naming results under the same lexicon
    version, which is what makes the comparator's group-result memo sound.
    """
    group = relation.group
    return (
        group.name,
        group.kind,
        group.clusters,
        relation.clusters,
        tuple((t.interface, t.labels) for t in relation.tuples),
        max_level,
    )


def _copy_group_result(result: GroupNamingResult) -> GroupNamingResult:
    """A mutation-safe copy of a naming result.

    Downstream phases mutate exactly one thing: homonym repair rewrites the
    chosen solution's ``labels`` dict in place.  Fresh ``GroupSolution``
    shells with copied label dicts protect the memoised master; partitions
    and the relation are read-only after construction and stay shared.
    """
    solutions = [
        GroupSolution(
            group=s.group,
            labels=dict(s.labels),
            level=s.level,
            partition=s.partition,
            expressiveness=s.expressiveness,
            frequency=s.frequency,
            is_candidate=s.is_candidate,
        )
        for s in result.solutions
    ]
    return GroupNamingResult(
        group=result.group,
        relation=result.relation,
        solutions=solutions,
        consistent=result.consistent,
        level=result.level,
    )


def name_group(
    relation: GroupRelation,
    comparator: SemanticComparator,
    analyzer: LabelAnalyzer | None = None,
    max_level: ConsistencyLevel = ConsistencyLevel.SYNONYMY,
) -> GroupNamingResult:
    """Name one group: walk the consistency ladder, else go partial.

    ``max_level`` exists for the ablation experiments (truncating the ladder
    at STRING or EQUALITY); the paper's algorithm uses the full ladder.

    Results are memoised on the comparator keyed by the relation's content
    fingerprint: repeated labeling of the same domain (the service's steady
    state) skips the whole ladder/closure computation.  The memo follows
    the comparator's lexicon-version discipline and only engages when the
    ranking analyzer is the comparator's own (a foreign analyzer could rank
    expressiveness differently).
    """
    memo = None
    if analyzer is None or analyzer is comparator.analyzer:
        comparator._check_lexicon_version()
        memo = comparator._group_cache
        fingerprint = _relation_fingerprint(relation, max_level)
        cached = memo.get(fingerprint)
        if cached is not None:
            comparator.group_counter.hit()
            return _copy_group_result(cached)
        comparator.group_counter.miss()

    result = _name_group_uncached(
        relation, comparator, analyzer or comparator.analyzer, max_level
    )
    if memo is not None:
        if len(memo) >= GROUP_CACHE_LIMIT:
            comparator.group_counter.evict(len(memo))
            memo.clear()
        # Store a pristine copy: the caller's copy is theirs to mutate
        # (homonym repair rewrites the chosen solution's labels in place).
        memo[fingerprint] = _copy_group_result(result)
    return result


def _name_group_uncached(
    relation: GroupRelation,
    comparator: SemanticComparator,
    analyzer: LabelAnalyzer,
    max_level: ConsistencyLevel,
) -> GroupNamingResult:
    # One pair cache per naming run: every Definition-2 row-pair decision in
    # this group — across ladder levels, closure rounds and the partial
    # fallback — is made at most once.  Hit/miss counts roll up into the
    # comparator's ``consistency_pairs`` stats.
    cache = ConsistencyPairCache(counter=comparator.pair_counter)
    result = GroupNamingResult(group=relation.group, relation=relation)

    if not relation.tuples:
        # Nobody labels anything in this group: all-null partial solution.
        result.solutions = [
            GroupSolution(
                group=relation.group,
                labels={c: None for c in relation.clusters},
                level=None,
                partition=None,
            )
        ]
        return result

    labelable = _labelable_clusters(relation)
    if labelable:
        for level in ConsistencyLevel:
            if level > max_level:
                break
            solutions = _solutions_at_level(
                relation, labelable, level, comparator, analyzer, cache
            )
            if solutions:
                result.solutions = solutions
                result.consistent = True
                result.level = level
                return result

    result.solutions = [
        _partially_consistent(relation, comparator, analyzer, cache)
    ]
    result.consistent = False
    return result
