"""Synthetic evaluation corpus: seven deep-web domains, seeded generation."""

from .catalog import Concept, DomainSpec, GroupSpec, LabelVariant, SuperGroupSpec
from .generator import DomainDataset, generate_domain
from .registry import (
    DOMAIN_TITLES,
    DOMAINS,
    domain_spec,
    load_all_domains,
    load_domain,
)

__all__ = [
    "Concept",
    "DOMAINS",
    "DOMAIN_TITLES",
    "DomainDataset",
    "DomainSpec",
    "GroupSpec",
    "LabelVariant",
    "SuperGroupSpec",
    "domain_spec",
    "generate_domain",
    "load_all_domains",
    "load_domain",
]
