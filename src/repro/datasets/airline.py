"""Airline domain catalog (20 interfaces; Table 6 row 1).

The paper's hardest domain: deepest sources (avg depth 3.6), lowest labeling
quality (LQ 53%), 24 integrated leaves in 8 groups under super-groups like
"Where and when do you want to travel?".  Includes the paper's running
examples: the passenger group of Tables 1-2 (with the 1:m ``Passengers``
collapse of Figure 2), the service group of Table 4 (Number of Connections /
Class of Ticket / Preferred Airline), the Figure 9 ticket-class instance
hierarchy, and the Return From / Return To group the survey respondents
found confusing.
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, SuperGroupSpec, variants

__all__ = ["airline_spec"]

_CABIN_VALUES = ("Economy", "Premium Economy", "Business", "First")
_TRIP_VALUES = ("Round Trip", "One Way", "Multi-City")

#: High unlabeled probability drives the domain's ~53% labeling quality.
_UNLABELED = 0.48


def airline_spec() -> DomainSpec:
    route = GroupSpec(
        key="g_route",
        concepts=(
            Concept(
                "c_depart_city",
                variants(
                    ("Departing from", "gerund"),
                    ("From", "terse"),
                    ("Leaving from", "gerund"),
                    ("Departure City", "noun"),
                    ("Origin", "noun"),
                ),
                prevalence=0.97,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_dest_city",
                variants(
                    ("Going to", "gerund"),
                    ("To", "terse"),
                    ("Destination", "noun"),
                    ("Arrival City", "noun"),
                ),
                prevalence=0.97,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("New York", "London", "Seoul", "Paris", "Chicago"),
                instance_prob=0.3,
            ),
        ),
        group_labels=variants(
            "Where do you want to go?", "Route", "Flight Route", "Itinerary"
        ),
        labeled_prob=0.45,
        flatten_prob=0.25,
    )

    dates = GroupSpec(
        key="g_dates",
        concepts=(
            Concept(
                "c_depart_date",
                variants(
                    ("Departing", "gerund"),
                    ("Departure Date", "noun"),
                    ("Depart", "terse"),
                    ("Leave", "terse"),
                ),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_return_date",
                variants(
                    ("Returning", "gerund"),
                    ("Return Date", "noun"),
                    ("Return", "terse"),
                ),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_depart_time",
                variants(("Departure Time", "noun"), ("Time", "terse"), "Anytime"),
                prevalence=0.45,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Morning", "Afternoon", "Evening", "Anytime"),
                instance_prob=0.6,
            ),
            Concept(
                "c_return_time",
                variants(("Return Time", "noun"), "Time of Return"),
                prevalence=0.35,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Morning", "Afternoon", "Evening", "Anytime"),
                instance_prob=0.6,
            ),
        ),
        group_labels=variants(
            "When do you want to travel?", "Travel Dates", "Dates"
        ),
        labeled_prob=0.5,
        flatten_prob=0.2,
    )

    passengers = GroupSpec(
        key="g_passengers",
        concepts=(
            Concept(
                "c_senior",
                variants(("Seniors", "plural"), ("Senior", "singular"),
                         ("Seniors (65+)", "plural")),
                prevalence=0.45,
                unlabeled_prob=0.1,
            ),
            Concept(
                "c_adult",
                variants(("Adults", "plural"), ("Adult", "singular"),
                         ("Adults (18-64)", "plural"), ("Number of Adults", "wordy")),
                prevalence=0.97,
                unlabeled_prob=0.05,
            ),
            Concept(
                "c_child",
                variants(("Children", "plural"), ("Child", "singular"),
                         ("Number of Children", "wordy")),
                prevalence=0.9,
                unlabeled_prob=0.05,
            ),
            Concept(
                "c_infant",
                variants(("Infants", "plural"), ("Infant", "singular"),
                         ("Number of Infants", "wordy")),
                prevalence=0.4,
                unlabeled_prob=0.1,
            ),
        ),
        group_labels=variants(
            "How many people are going?", "Passengers", "Travelers", "Number of Passengers"
        ),
        labeled_prob=0.6,
        flatten_prob=0.15,
        collapse_label="Passengers",
        collapse_prob=0.12,
        collapse_instances=("1", "2", "3", "4", "5", "6+"),
    )

    service = GroupSpec(
        key="g_service",
        concepts=(
            Concept(
                "c_stops",
                variants(
                    ("Number of Connections", "wordy"),
                    ("Max. Number of Stops", "maxstop"),
                    ("NonStop", "terse"),
                    ("Stops", "plain"),
                ),
                prevalence=0.8,
                styles=("wordy", "terse", "plain"),
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Nonstop", "1 stop", "2+ stops"),
                instance_prob=0.5,
            ),
            Concept(
                "c_ticket_class",
                variants(
                    ("Class", "plain"),
                    ("Class of Tickets", "maxstop"),
                    ("Flight Class", "terse"),
                ),
                prevalence=0.8,
                styles=("maxstop", "plain", "terse"),
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=_CABIN_VALUES,
                instance_prob=0.75,
            ),
            # The Table 4 shape: the wordy and maxstop style populations
            # cover complementary cluster subsets and only connect through
            # the equality of Airline Preference ~ Preferred Airline.
            Concept(
                "c_airline",
                variants(
                    ("Airline Preference", "wordy"),
                    ("Preferred Airline", "maxstop"),
                ),
                prevalence=0.85,
                styles=("wordy", "maxstop"),
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Any", "American", "British Airways", "Korean Air"),
                instance_prob=0.4,
            ),
        ),
        group_labels=variants(
            "Do you have any preferences?",
            "What are your service preferences?",
            "Airline Preferences",
            "Service Options",
        ),
        labeled_prob=0.55,
        flatten_prob=0.25,
    )

    preferences = GroupSpec(
        key="g_preferences",
        concepts=(
            Concept(
                "c_seat_pref",
                variants(("Seat Preference", "a"), ("Preferred Seat", "b")),
                prevalence=0.6,
                unlabeled_prob=0.25,
                kind=FieldKind.SELECTION_LIST,
                instances=("Window", "Aisle", "Any"),
                instance_prob=0.7,
            ),
            Concept(
                "c_meal_pref",
                variants(("Meal Preference", "a"), ("Preferred Meal", "b")),
                prevalence=0.5,
                unlabeled_prob=0.25,
                kind=FieldKind.SELECTION_LIST,
                instances=("Regular", "Vegetarian", "Kosher"),
                instance_prob=0.7,
            ),
        ),
        group_labels=variants("Seating and Meals", "Comfort Preferences"),
        labeled_prob=0.4,
        flatten_prob=0.3,
        prevalence=0.5,
    )

    trip_type = GroupSpec(
        key="g_trip_type",
        concepts=(
            Concept(
                "c_trip_type",
                variants("Trip Type", "Type of Trip", "Itinerary Type"),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.RADIO_BUTTON,
                instances=_TRIP_VALUES,
                instance_prob=0.85,
            ),
        ),
    )

    budget = GroupSpec(
        key="g_budget",
        concepts=(
            Concept(
                "c_price_min",
                variants(("Min Price", "minmax"), ("From", "fromto"),
                         ("Lowest Fare", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_price_max",
                variants(("Max Price", "minmax"), ("To", "fromto"),
                         ("Maximum Fare", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Fare Range", "Price Range", "Budget"),
        labeled_prob=0.6,
        prevalence=0.35,
    )

    return_route = GroupSpec(
        key="g_return_route",
        concepts=(
            Concept(
                "c_return_from",
                variants("Return From", "Returning From"),
                prevalence=0.9,
                unlabeled_prob=0.2,
            ),
            Concept(
                "c_return_to",
                variants("Return To", "Returning To"),
                prevalence=0.9,
                unlabeled_prob=0.2,
            ),
        ),
        group_labels=variants("Return Route", "Return Flight"),
        labeled_prob=0.3,
        prevalence=0.2,  # rare — the survey's confusing low-frequency group
    )

    where_when = SuperGroupSpec(
        key="sg_where_when",
        members=("g_route", "g_dates", "g_return_route"),
        labels=variants(
            "Where and when do you want to travel?",
            "Flight Details",
            "Trip Information",
        ),
        labeled_prob=0.55,
        nest_prob=0.8,
    )
    service_prefs = SuperGroupSpec(
        key="sg_service",
        members=("g_service", "g_preferences"),
        labels=variants(
            "Do you have any preferences?", "Preferences", "Options"
        ),
        labeled_prob=0.5,
        nest_prob=0.65,
    )

    # The paper's airline blemish: "a group of attributes that occurs once
    # among the individual interfaces and it does not have a label" — its
    # fields carry instances, so FldAcc is excused but the inconsistency
    # propagates to the internal nodes above it.
    award_travel = GroupSpec(
        key="g_award",
        concepts=(
            Concept(
                "c_award_program",
                variants("Program"),
                prevalence=0.95,
                unlabeled_prob=1.0,
                kind=FieldKind.SELECTION_LIST,
                instances=("AAdvantage", "SkyMiles", "Mileage Plus"),
                instance_prob=1.0,
            ),
            Concept(
                "c_award_miles",
                variants("Miles"),
                prevalence=0.95,
                unlabeled_prob=1.0,
                kind=FieldKind.SELECTION_LIST,
                instances=("25000", "50000", "100000"),
                instance_prob=1.0,
            ),
        ),
        prevalence=0.08,
    )

    promo = Concept(
        "c_promo_code",
        variants("Promotion Code", "Promo Code", "Discount Code"),
        prevalence=0.3,
        unlabeled_prob=0.15,
    )

    return DomainSpec(
        name="airline",
        interface_count=20,
        groups=(
            route,
            dates,
            passengers,
            service,
            preferences,
            trip_type,
            budget,
            return_route,
            award_travel,
        ),
        supergroups=(where_when, service_prefs),
        root_concepts=(promo,),
        field_prevalence_scale=0.9,
        description="Flight search interfaces (aa, british, economytravel, ...).",
    )
