"""Auto domain catalog (20 interfaces; Table 6 row 2).

Carries the paper's vertical-consistency running example (Table 5 and
Figure 6): the Make/Model/Keyword group under *Car Information*, the
From/To vs Min/Max year group under *Year Range*, and the Table 3 location
group (State/City vs Zip Code/Distance) whose halves never co-occur on a
single source, forcing a partially consistent solution.
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, SuperGroupSpec, variants

__all__ = ["auto_spec"]

_UNLABELED = 0.1


def auto_spec() -> DomainSpec:
    car_model = GroupSpec(
        key="g_car_model",
        concepts=(
            Concept(
                "c_make",
                variants(("Make", "plain"), ("Brand", "alt"), ("Manufacturer", "wordy")),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Ford", "Toyota", "Honda", "BMW", "Any"),
                instance_prob=0.6,
            ),
            Concept(
                "c_model",
                variants(("Model", "plain"), ("Model", "alt"), ("Car Model", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_keyword",
                variants(("Keyword", "plain"), ("Keywords", "alt")),
                prevalence=0.35,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Make/Model", "Car Model", "Vehicle"),
        labeled_prob=0.5,
        flatten_prob=0.3,
    )

    year = GroupSpec(
        key="g_year",
        concepts=(
            Concept(
                "c_year_from",
                variants(("From", "fromto"), ("Min", "minmax"), ("Year", "year"),
                         ("From Year", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_year_to",
                variants(("To", "fromto"), ("Max", "minmax"), ("To Year", "year"),
                         ("Through Year", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Year Range", "Year", "Model Year"),
        labeled_prob=0.55,
        flatten_prob=0.2,
    )

    price = GroupSpec(
        key="g_price",
        concepts=(
            Concept(
                "c_price_min",
                variants(("Minimum", "minmax"), ("Min Price", "price"),
                         ("From", "fromto"), ("Lowest Price", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_price_max",
                variants(("Maximum", "minmax"), ("Max Price", "price"),
                         ("To", "fromto"), ("Highest Price", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Price Range", "Price", "Price $"),
        labeled_prob=0.6,
        flatten_prob=0.2,
        prevalence=0.85,
    )

    # Table 3: State/City sources vs ZipCode/Distance sources are disjoint
    # style populations — no row links the halves, so the integrated group
    # only admits a partially consistent solution.
    location = GroupSpec(
        key="g_location",
        concepts=(
            Concept(
                "c_state",
                variants(("State", "statecity")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("IL", "NY", "CA", "TX"),
                instance_prob=0.5,
                styles=("statecity",),
            ),
            Concept(
                "c_city",
                variants(("City", "statecity")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                styles=("statecity",),
            ),
            Concept(
                "c_zip",
                variants(("Zip Code", "zipdist"), ("Your Zip", "zipdist2")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                styles=("zipdist", "zipdist2"),
            ),
            Concept(
                "c_distance",
                variants(("Distance", "zipdist"), ("Within", "zipdist2"),
                         ("Search Within", "zipdist2")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("10 miles", "25 miles", "50 miles", "100 miles"),
                instance_prob=0.6,
                styles=("zipdist", "zipdist2"),
            ),
        ),
        group_labels=variants("Location", "Zone", "Search Area"),
        labeled_prob=0.45,
        flatten_prob=0.3,
    )

    features = GroupSpec(
        key="g_features",
        concepts=(
            Concept(
                "c_mileage",
                variants("Mileage", "Max Mileage", "Odometer"),
                prevalence=0.5,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_transmission",
                variants("Transmission", "Transmission Type"),
                prevalence=0.4,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Automatic", "Manual", "Any"),
                instance_prob=0.7,
            ),
            Concept(
                "c_fuel",
                variants("Fuel Type", "Fuel", "Gas Type"),
                prevalence=0.3,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Gasoline", "Diesel", "Hybrid", "Electric"),
                instance_prob=0.7,
            ),
            Concept(
                "c_color",
                variants("Color", "Exterior Color"),
                prevalence=0.3,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_body_style",
                variants("Body Style", "Body Type", "Style"),
                prevalence=0.35,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Sedan", "SUV", "Truck", "Coupe", "Van"),
                instance_prob=0.7,
            ),
        ),
        group_labels=variants("Features", "Vehicle Options", "Car Features"),
        labeled_prob=0.5,
        flatten_prob=0.35,
        prevalence=0.6,
    )

    car_information = SuperGroupSpec(
        key="sg_car",
        members=("g_car_model", "g_year"),
        labels=variants("Car Information", "Vehicle Information", "Make/Model Year Range"),
        labeled_prob=0.6,
        nest_prob=0.35,
    )

    condition = Concept(
        "c_condition",
        variants("Condition", "New or Used"),
        prevalence=0.6,
        unlabeled_prob=_UNLABELED,
        kind=FieldKind.RADIO_BUTTON,
        instances=("New", "Used", "Certified Pre-Owned"),
        instance_prob=0.8,
    )
    seller = Concept(
        "c_seller_type",
        variants("Seller", "Seller Type", "Dealer or Private"),
        prevalence=0.35,
        unlabeled_prob=_UNLABELED,
        kind=FieldKind.SELECTION_LIST,
        instances=("Dealer", "Private Seller", "Any"),
        instance_prob=0.6,
    )

    return DomainSpec(
        name="auto",
        interface_count=20,
        groups=(car_model, year, price, location, features),
        supergroups=(car_information,),
        root_concepts=(condition, seller),
        field_prevalence_scale=0.55,
        description="Used/new car search (100auto, Ads4autos, CarMarket, ...).",
    )
