"""Book domain catalog (20 interfaces; Table 6 row 3).

The best-labeled domain (LQ ~83%), mostly flat with many root-level fields.
Hosts the paper's *labels-as-values* discussion (Section 6.1.2): sources
occasionally label a field ``Hardcover`` — really a value of
``Format``/``Binding`` — which LI7 must discard during isolated-cluster
naming.  The Format cluster sits isolated under a details section (the one
isolated leaf of Table 6's Book row).
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, SuperGroupSpec, variants

__all__ = ["book_spec"]

_UNLABELED = 0.08
_FORMAT_VALUES = ("Hardcover", "Paperback", "Audio", "E-book")


def book_spec() -> DomainSpec:
    author_title = GroupSpec(
        key="g_author_title",
        concepts=(
            Concept(
                "c_author",
                variants(("Author", "plain"), ("Writer", "alt"), ("Author Name", "wordy")),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_title",
                variants(("Title", "plain"), ("Book Title", "wordy")),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_keyword",
                variants(("Keyword", "plain"), ("Keywords", "alt")),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Search by", "Book Search", "Find a Book"),
        labeled_prob=0.4,
        flatten_prob=0.5,
    )

    publication = GroupSpec(
        key="g_publication",
        concepts=(
            Concept(
                "c_publisher",
                variants("Publisher", "Publisher Name"),
                prevalence=0.7,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_pub_year_from",
                variants(("From", "fromto"), ("Published After", "wordy"),
                         ("Min Year", "minmax")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_pub_year_to",
                variants(("To", "fromto"), ("Published Before", "wordy"),
                         ("Max Year", "minmax")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Publication", "Publication Year", "Published"),
        labeled_prob=0.55,
        flatten_prob=0.25,
        prevalence=0.75,
    )

    price = GroupSpec(
        key="g_price",
        concepts=(
            Concept(
                "c_price_min",
                variants(("Min Price", "minmax"), ("From", "fromto"),
                         ("Price From", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_price_max",
                variants(("Max Price", "minmax"), ("To", "fromto"),
                         ("Price To", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Price Range", "Price", "Price $"),
        labeled_prob=0.6,
        prevalence=0.6,
    )

    reader_age = GroupSpec(
        key="g_reader_age",
        concepts=(
            Concept(
                "c_age_min",
                variants(("Age From", "fromto"), ("Min Age", "minmax")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("0-2", "3-5", "6-8", "9-12", "Teen"),
                instance_prob=0.6,
            ),
            Concept(
                "c_age_max",
                variants(("Age To", "fromto"), ("Max Age", "minmax")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("3-5", "6-8", "9-12", "Teen", "Adult"),
                instance_prob=0.6,
            ),
        ),
        group_labels=variants("Reader Age", "Age Range", "Audience Age"),
        labeled_prob=0.55,
        prevalence=0.55,
    )

    availability = GroupSpec(
        key="g_availability",
        concepts=(
            Concept(
                "c_availability",
                variants("Availability", "In Stock"),
                prevalence=0.7,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_shipping",
                variants("Shipping", "Free Shipping", "Shipping Options"),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        group_labels=variants("Availability Options", "Delivery"),
        labeled_prob=0.5,
        prevalence=0.4,
    )

    # The isolated Format cluster; "Hardcover" is the value-as-label trap.
    book_format = GroupSpec(
        key="g_format",
        concepts=(
            Concept(
                "c_format",
                variants(
                    ("Format", None, 3.0),
                    ("Binding", None, 2.0),
                    ("Hardcover", None, 0.6),  # a value leaking into the labels
                ),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=_FORMAT_VALUES,
                instance_prob=0.8,
            ),
        ),
        prevalence=0.6,
    )

    details = SuperGroupSpec(
        key="sg_details",
        members=("g_publication", "g_format"),
        labels=variants("Book Details", "More Options", "Advanced Search"),
        labeled_prob=0.5,
        nest_prob=0.55,
    )

    roots = (
        Concept(
            "c_isbn",
            variants("ISBN", "ISBN Number"),
            prevalence=0.6,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_subject",
            variants("Subject", "Topic", "Category"),
            prevalence=0.65,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("Fiction", "Science", "History", "Children"),
            instance_prob=0.5,
        ),
        Concept(
            "c_language",
            variants("Language", "Book Language"),
            prevalence=0.4,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("English", "Korean", "French", "German"),
            instance_prob=0.6,
        ),
        Concept(
            "c_edition",
            variants("Edition", "Edition Number"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_condition",
            variants("Condition", "New or Used"),
            prevalence=0.45,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.RADIO_BUTTON,
            instances=("New", "Used", "Any"),
            instance_prob=0.7,
        ),
        Concept(
            "c_signed",
            variants("Signed", "Signed Copy", "Signed by Author"),
            prevalence=0.2,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
    )

    return DomainSpec(
        name="book",
        interface_count=20,
        groups=(author_title, publication, price, reader_age, availability, book_format),
        supergroups=(details,),
        root_concepts=roots,
        description="Book search interfaces; flat, well-labeled sources.",
        field_prevalence_scale=0.6,
    )
