"""Car Rental domain catalog (20 interfaces; Table 6 row 6).

The widest integrated interface (34 leaves, 9 groups, 3 isolated) and the
second-worst-labeled sources (LQ ~52.5%).  The paper reports this domain's
integrated interface *inconsistent*: a node's candidate labels get promoted
to its ancestors, leaving it unlabeled, and chain-specific membership codes
(frequency-1 fields) confuse survey respondents.  The catalog plants both:
the Pick-Up / Drop-Off super-groups whose sources reuse the same section
labels at two depths, and a membership group of rare corporate-program
fields.
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, SuperGroupSpec, variants

__all__ = ["carrental_spec"]

_UNLABELED = 0.45


def _location_group(key: str, prefix: str, style_tag: str) -> GroupSpec:
    return GroupSpec(
        key=key,
        concepts=(
            Concept(
                f"c_{style_tag}_city",
                variants((f"{prefix} City", "wordy"), ("City", "terse")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                f"c_{style_tag}_state",
                variants((f"{prefix} State", "wordy"), ("State", "terse")),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                f"c_{style_tag}_airport",
                variants((f"{prefix} Airport", "wordy"), ("Airport Code", "terse")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                f"c_{style_tag}_country",
                variants((f"{prefix} Country", "wordy"), ("Country", "terse")),
                prevalence=0.35,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants(
            f"{prefix} Location", f"{prefix} Place", "Location"
        ),
        labeled_prob=0.5,
        flatten_prob=0.2,
    )


def _time_group(key: str, prefix: str, tag: str) -> GroupSpec:
    return GroupSpec(
        key=key,
        concepts=(
            Concept(
                f"c_{tag}_date",
                variants((f"{prefix} Date", "wordy"), ("Date", "terse")),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                f"c_{tag}_hour",
                variants((f"{prefix} Time", "wordy"), ("Time", "terse")),
                prevalence=0.75,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Morning", "Noon", "Evening"),
                instance_prob=0.5,
            ),
        ),
        group_labels=variants(f"{prefix} Date and Time", f"{prefix} Time"),
        labeled_prob=0.7,
        flatten_prob=0.25,
    )


def carrental_spec() -> DomainSpec:
    pickup_location = _location_group("g_pickup_location", "Pick-up", "pickup")
    dropoff_location = _location_group("g_dropoff_location", "Drop-off", "dropoff")
    pickup_time = _time_group("g_pickup_time", "Pick-up", "pickup")
    dropoff_time = _time_group("g_dropoff_time", "Drop-off", "dropoff")

    car = GroupSpec(
        key="g_car",
        concepts=(
            Concept(
                "c_car_class",
                variants(("Car Class", "car"), ("Car Type", "cartype"), ("Vehicle Class", "vehicle"), ("Class", "terse")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Economy", "Compact", "Midsize", "Full-size", "SUV"),
                instance_prob=0.75,
            ),
            Concept(
                "c_car_make",
                variants(("Make", "terse"), ("Make", "car"), ("Make", "cartype"), ("Brand", "vehicle")),
                prevalence=0.45,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_car_model",
                variants(("Model", "terse"), ("Model", "car"), ("Model", "cartype"), ("Model", "vehicle")),
                prevalence=0.25,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Car Preferences", "Preferred Car"),
        labeled_prob=0.5,
        flatten_prob=0.3,
    )

    driver = GroupSpec(
        key="g_driver",
        concepts=(
            Concept(
                "c_driver_age",
                variants(("Driver Age", "a"), ("Age of Driver", "b"), ("Driver's Age", "c")),
                prevalence=0.7,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_driver_country",
                variants(("Driver Country", "a"), ("Country of Residence", "b")),
                prevalence=0.4,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Driver Information", "Driver"),
        labeled_prob=0.5,
        prevalence=0.55,
    )

    rates = GroupSpec(
        key="g_rates",
        concepts=(
            # The synonymy-level shape: the minmax and price populations
            # cover complementary subsets and only connect through WordNet
            # synonymy (Max Rate ~ Maximum Price: max~maximum, rate~price).
            Concept(
                "c_rate_min",
                variants(("Min Rate", "minmax")),
                prevalence=0.9,
                unlabeled_prob=0.15,
                styles=("minmax",),
            ),
            Concept(
                "c_rate_max",
                variants(("Max Rate", "minmax"), ("Maximum Price", "price")),
                prevalence=0.95,
                unlabeled_prob=0.15,
                styles=("minmax", "price"),
            ),
            Concept(
                "c_currency",
                variants(("Currency", "price"), ("Display Currency", "price")),
                prevalence=0.85,
                unlabeled_prob=0.15,
                styles=("price",),
                kind=FieldKind.SELECTION_LIST,
                instances=("USD", "EUR", "GBP", "KRW"),
                instance_prob=0.6,
            ),
        ),
        group_labels=variants("Rate Range", "Rates", "Daily Rate"),
        labeled_prob=0.7,
        prevalence=0.8,
    )

    options = GroupSpec(
        key="g_options",
        concepts=(
            Concept(
                "c_transmission",
                variants(("Transmission", "a"), ("Automatic or Manual", "b")),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.RADIO_BUTTON,
                instances=("Automatic", "Manual"),
                instance_prob=0.7,
            ),
            Concept(
                "c_air_conditioning",
                variants(("Air Conditioning", "a"), ("A/C", "b")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_unlimited_mileage",
                variants(("Unlimited Mileage", "a"), ("Mileage", "b")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        group_labels=variants("Options", "Vehicle Options", "Extras"),
        labeled_prob=0.65,
        flatten_prob=0.2,
        prevalence=0.55,
    )

    # Chain-specific membership programs: frequency-1-ish fields that the
    # survey flags as too specific for a generic interface.
    membership = GroupSpec(
        key="g_membership",
        concepts=(
            Concept(
                "c_corporate_code",
                variants(("Corporate Code", "a"), ("Corporate Discount", "b")),
                prevalence=0.35,
                unlabeled_prob=0.2,
            ),
            Concept(
                "c_frequent_flyer",
                variants(("Frequent Flyer Number", "a"), ("Frequent Flyer No", "b")),
                prevalence=0.35,
                unlabeled_prob=0.2,
            ),
            Concept(
                "c_hertz_gold_no",
                variants("Hertz Gold No"),
                prevalence=0.06,
                unlabeled_prob=0.0,
            ),
            Concept(
                "c_avis_wizard_no",
                variants("Avis Wizard Number"),
                prevalence=0.06,
                unlabeled_prob=0.0,
            ),
        ),
        group_labels=variants("Membership", "Discount Programs", "Memberships"),
        labeled_prob=0.65,
        prevalence=0.5,
    )

    insurance = GroupSpec(
        key="g_insurance",
        concepts=(
            Concept(
                "c_insurance",
                variants("Insurance", "Rental Insurance", "Coverage"),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        prevalence=0.4,
    )
    child_seat = GroupSpec(
        key="g_child_seat",
        concepts=(
            Concept(
                "c_child_seat",
                variants("Child Seat", "Baby Seat", "Infant Seat"),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        prevalence=0.3,
    )
    navigation = GroupSpec(
        key="g_navigation",
        concepts=(
            Concept(
                "c_navigation",
                variants("Navigation", "GPS", "Navigation System"),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        prevalence=0.25,
    )

    pickup = SuperGroupSpec(
        key="sg_pickup",
        members=("g_pickup_location", "g_pickup_time"),
        labels=variants("Pick Up", "Pick-up Information", "Picking Up"),
        labeled_prob=0.55,
        nest_prob=0.75,
    )
    dropoff = SuperGroupSpec(
        key="sg_dropoff",
        members=("g_dropoff_location", "g_dropoff_time"),
        labels=variants("Drop Off", "Drop-off Information", "Returning"),
        labeled_prob=0.55,
        nest_prob=0.75,
    )
    vehicle = SuperGroupSpec(
        key="sg_vehicle",
        members=("g_car", "g_options", "g_insurance", "g_child_seat", "g_navigation"),
        labels=variants("Vehicle Information", "Car and Options"),
        labeled_prob=0.45,
        nest_prob=0.5,
    )

    roots = (
        Concept(
            "c_coupon",
            variants("Coupon Code", "Promotion Code"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_rental_company",
            variants("Rental Company", "Preferred Company", "Company"),
            prevalence=0.4,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("Hertz", "Avis", "Budget", "Any"),
            instance_prob=0.6,
        ),
        Concept(
            "c_email",
            variants("Email", "Email Address"),
            prevalence=0.4,
            unlabeled_prob=_UNLABELED,
        ),
    )

    return DomainSpec(
        name="carrental",
        interface_count=20,
        groups=(
            pickup_location,
            dropoff_location,
            pickup_time,
            dropoff_time,
            car,
            driver,
            rates,
            options,
            membership,
            insurance,
            child_seat,
            navigation,
        ),
        supergroups=(pickup, dropoff, vehicle),
        root_concepts=roots,
        description="Car rental; widest integrated interface, noisiest labels.",
        field_prevalence_scale=0.65,
    )
