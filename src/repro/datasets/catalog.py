"""Domain catalogs — the vocabulary from which source interfaces are sampled.

The paper evaluates on 150 real deep-web interfaces collected in 2005-06;
those pages are long gone, so the reproduction generates a synthetic corpus
with the same *kinds* of heterogeneity (DESIGN.md section 2).  A domain is
described by a catalog:

* a :class:`Concept` is one global field (one future cluster) with several
  realistic :class:`LabelVariant` spellings — plural vs singular, noun vs
  "Preferred X" vs "X Preference", question-style, value-as-label, …;
* a :class:`GroupSpec` is a semantic unit of concepts, with the labels
  sources use for the enclosing group node, an optional *collapse* form
  (one field standing for the whole group — the paper's 1:m ``Passengers``
  example), and style coherence: an interface picks one label *style* per
  group and uses it for every member, which is precisely the paper's
  well-designed-interface assumption;
* a :class:`SuperGroupSpec` nests groups under a labeled super node
  ("Where and when do you want to travel?");
* a :class:`DomainSpec` assembles groups, super-groups and root-level
  concepts, plus the number of interfaces to sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..schema.tree import FieldKind

__all__ = ["LabelVariant", "Concept", "GroupSpec", "SuperGroupSpec", "DomainSpec"]


@dataclass(frozen=True)
class LabelVariant:
    """One way sources spell a label.

    ``style`` ties variants of different concepts together: an interface
    that picks style ``plural`` for a group labels *all* its fields with
    ``plural`` variants (falling back to any variant when a concept has
    none of that style).
    """

    text: str
    style: str | None = None
    weight: float = 1.0


def variants(*specs) -> tuple[LabelVariant, ...]:
    """Terse variant construction: strings or (text, style[, weight]) tuples."""
    out = []
    for spec in specs:
        if isinstance(spec, LabelVariant):
            out.append(spec)
        elif isinstance(spec, str):
            out.append(LabelVariant(spec))
        else:
            out.append(LabelVariant(*spec))
    return tuple(out)


@dataclass(frozen=True)
class Concept:
    """One global field concept — the seed of one cluster."""

    key: str
    variants: tuple[LabelVariant, ...]
    prevalence: float = 0.9          # P(interface includes this field | group present)
    unlabeled_prob: float = 0.0      # P(field appears without a label)
    kind: FieldKind = FieldKind.TEXT_BOX
    instances: tuple[str, ...] = ()
    instance_prob: float = 0.0       # P(field carries its instance list)
    #: When set, the concept only appears on interfaces whose group style is
    #: one of these — how disjoint source populations arise (the Table 3
    #: State/City vs ZipCode/Distance split).
    styles: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if not self.variants:
            raise ValueError(f"concept {self.key} needs at least one label variant")


@dataclass(frozen=True)
class GroupSpec:
    """A semantic unit of concepts appearing together on interfaces."""

    key: str
    concepts: tuple[Concept, ...]
    group_labels: tuple[LabelVariant, ...] = ()
    labeled_prob: float = 0.7        # P(group node carries a label | group nested)
    prevalence: float = 1.0          # P(interface includes this group)
    flatten_prob: float = 0.0        # P(fields placed directly under the parent)
    collapse_label: str | None = None   # 1:m form ("Passengers")
    collapse_prob: float = 0.0          # P(interface shows the collapsed field)
    collapse_instances: tuple[str, ...] = ()

    def cluster_names(self) -> tuple[str, ...]:
        return tuple(concept.key for concept in self.concepts)


@dataclass(frozen=True)
class SuperGroupSpec:
    """A labeled super node wrapping several groups."""

    key: str
    members: tuple[str, ...]         # group keys
    labels: tuple[LabelVariant, ...] = ()
    labeled_prob: float = 0.7
    nest_prob: float = 0.8           # P(the super node materializes at all)


@dataclass(frozen=True)
class DomainSpec:
    """Everything needed to sample one domain's source interfaces."""

    name: str
    interface_count: int
    groups: tuple[GroupSpec, ...]
    supergroups: tuple[SuperGroupSpec, ...] = ()
    root_concepts: tuple[Concept, ...] = ()
    description: str = ""
    metadata: dict = field(default_factory=dict)
    #: Global multiplier on concept prevalence — tunes the average number
    #: of fields per source toward the Table 6 column-2 value without
    #: re-authoring every concept.
    field_prevalence_scale: float = 1.0

    def group_by_key(self, key: str) -> GroupSpec:
        for group in self.groups:
            if group.key == key:
                return group
        raise KeyError(f"{self.name}: no group {key!r}")

    def all_concepts(self) -> list[Concept]:
        concepts = [c for g in self.groups for c in g.concepts]
        concepts.extend(self.root_concepts)
        return concepts

    def validate(self) -> None:
        """Catch catalog-authoring mistakes early."""
        seen: set[str] = set()
        for concept in self.all_concepts():
            if concept.key in seen:
                raise ValueError(f"{self.name}: duplicate concept key {concept.key}")
            seen.add(concept.key)
        group_keys = {g.key for g in self.groups}
        for supergroup in self.supergroups:
            missing = [m for m in supergroup.members if m not in group_keys]
            if missing:
                raise ValueError(
                    f"{self.name}: supergroup {supergroup.key} references "
                    f"unknown groups {missing}"
                )
