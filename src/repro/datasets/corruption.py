"""Mapping corruption — sensitivity of naming to matcher quality.

The paper *assumes* a correct cluster mapping ("we assume the semantic
relationships between the attributes ... have been already computed"), but
real matchers ([10, 23, 24]) make mistakes.  This module injects the two
canonical matcher error types into a ground-truth mapping so the
sensitivity can be measured (``benchmarks/test_bench_ablation_mapping.py``):

* **split errors** — a field is pulled out of its cluster into a fresh
  singleton (the matcher failed to recognize the correspondence);
* **merge errors** — two unrelated clusters are fused (the matcher
  over-matched).
"""

from __future__ import annotations

import random

from ..schema.clusters import Cluster, Mapping

__all__ = ["corrupt_mapping"]


def corrupt_mapping(
    mapping: Mapping,
    split_rate: float = 0.0,
    merge_rate: float = 0.0,
    seed: int = 0,
) -> Mapping:
    """A corrupted copy of ``mapping``.

    ``split_rate`` — fraction of (cluster, member) entries moved into fresh
    singleton clusters; ``merge_rate`` — fraction of clusters fused with a
    random other cluster.  Members colliding on an interface during a merge
    stay in their original cluster (a mapping keeps at most one field per
    interface per cluster).

    The member nodes are shared with the source interfaces, and their
    ``cluster`` attributes are re-pointed at the corrupted cluster names —
    load a **fresh corpus per corruption level** rather than reusing one
    dataset across levels.
    """
    rng = random.Random(seed)
    corrupted = Mapping()
    for cluster in mapping.clusters:
        copy = Cluster(cluster.name)
        for interface_name, node in cluster.members.items():
            copy.members[interface_name] = node
        corrupted.add_cluster(copy)

    # Split errors.
    if split_rate > 0:
        entries = [
            (cluster.name, interface_name)
            for cluster in corrupted.clusters
            for interface_name in cluster.members
        ]
        rng.shuffle(entries)
        to_split = entries[: int(len(entries) * split_rate)]
        for index, (cluster_name, interface_name) in enumerate(to_split):
            cluster = corrupted[cluster_name]
            if len(cluster.members) <= 1:
                continue  # splitting a singleton is a no-op
            node = cluster.members.pop(interface_name)
            fresh = Cluster(f"{cluster_name}!split{index}")
            fresh.members[interface_name] = node
            corrupted.add_cluster(fresh)

    # Merge errors.
    if merge_rate > 0:
        names = [c.name for c in corrupted.clusters if c.members]
        rng.shuffle(names)
        to_merge = names[: int(len(names) * merge_rate)]
        for name in to_merge:
            if name not in corrupted:
                continue
            others = [n for n in corrupted.cluster_names() if n != name]
            if not others:
                break
            target_name = rng.choice(others)
            source = corrupted[name]
            target = corrupted[target_name]
            for interface_name, node in list(source.members.items()):
                if interface_name not in target.members:
                    target.members[interface_name] = node
                    del source.members[interface_name]
            if not source.members:
                corrupted._clusters.pop(name)  # fully absorbed

    # Re-point leaf cluster attributes at the corrupted cluster names so the
    # merge step sees a consistent view.
    for cluster in corrupted.clusters:
        for node in cluster.members.values():
            node.cluster = cluster.name
    return corrupted
