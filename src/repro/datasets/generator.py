"""Seeded sampling of source interfaces from a domain catalog.

The generator turns a :class:`DomainSpec` into a :class:`DomainDataset`:
``interface_count`` query interfaces plus the ground-truth cluster
:class:`Mapping` (which the paper assumes as input — Section 2.1).

Faithfulness levers (all of them mirror observations in the paper):

* **Well-designed sources** — one label *style* per group per interface, so
  each interface's row in a group relation is internally consistent.
* **Heterogeneity** — different interfaces pick different styles/variants;
  some leave fields or group nodes unlabeled (LQ below 100%).
* **Granularity mismatches** — a group may collapse into one 1:m field
  (``Passengers``), reduced later by ``Mapping.expand_one_to_many``.
* **Structure variety** — groups may flatten (fields straight under the
  parent), super-groups may or may not materialize, so source depths vary.

Determinism: everything derives from ``random.Random(seed)``; the same seed
reproduces the corpus bit for bit.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from ..merge import merge_interfaces
from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.tree import FieldKind, SchemaNode
from .catalog import Concept, DomainSpec, GroupSpec, LabelVariant

__all__ = ["DomainDataset", "generate_domain"]


@dataclass
class DomainDataset:
    """A sampled domain: sources + ground-truth mapping (+ lazy merge)."""

    name: str
    spec: DomainSpec
    interfaces: list[QueryInterface]
    mapping: Mapping
    seed: int
    _integrated: SchemaNode | None = field(default=None, repr=False)

    def prepare(self) -> "DomainDataset":
        """Reduce 1:m correspondences (idempotent)."""
        if not getattr(self, "_prepared", False):
            self.mapping.expand_one_to_many(self.interfaces)
            self._prepared = True
        return self

    def integrated(self) -> SchemaNode:
        """The merged (unlabeled) integrated schema tree."""
        if self._integrated is None:
            self.prepare()
            self._integrated = merge_interfaces(self.interfaces, self.mapping)
        return self._integrated


def _pick_variant(
    rng: random.Random, variants: tuple[LabelVariant, ...], style: str | None
) -> LabelVariant:
    """A variant matching ``style`` when available, else a weighted pick."""
    if style is not None:
        styled = [v for v in variants if v.style == style]
        if styled:
            variants = tuple(styled)
    weights = [v.weight for v in variants]
    return rng.choices(list(variants), weights=weights, k=1)[0]


def _available_styles(group: GroupSpec) -> list[str]:
    styles: list[str] = []
    for concept in group.concepts:
        for variant in concept.variants:
            if variant.style is not None and variant.style not in styles:
                styles.append(variant.style)
    return styles


def _make_field_node(
    rng: random.Random,
    concept: Concept,
    style: str | None,
    interface_name: str,
    mapping: Mapping,
) -> SchemaNode:
    unlabeled_prob = concept.unlabeled_prob
    if concept.kind is FieldKind.CHECKBOX:
        # A checkbox without its caption is meaningless; real forms leave
        # text boxes unlabeled (visual context carries them), not checkboxes.
        unlabeled_prob *= 0.15
    labeled = rng.random() >= unlabeled_prob
    variant = _pick_variant(rng, concept.variants, style)
    instances: tuple[str, ...] = ()
    if concept.instances and rng.random() < concept.instance_prob:
        instances = concept.instances
    node = SchemaNode(
        variant.text if labeled else None,
        kind=concept.kind,
        instances=instances,
        name=f"{interface_name}:{concept.key}",
    )
    mapping.assign(concept.key, interface_name, node)
    return node


def _sample_group(
    rng: random.Random,
    group: GroupSpec,
    interface_name: str,
    mapping: Mapping,
    allow_flatten: bool = True,
    prevalence_scale: float = 1.0,
) -> list[SchemaNode]:
    """The node(s) a group contributes to one interface (possibly []).

    ``prevalence_scale`` thins whole groups, not fields within them: real
    forms show Min and Max together or not at all, which is also what keeps
    group-relation partitions covering (Section 4.1).
    """
    if rng.random() >= group.prevalence * prevalence_scale:
        return []

    # Granularity mismatch: the collapsed 1:m field stands for the group.
    if group.collapse_label is not None and rng.random() < group.collapse_prob:
        node = SchemaNode(
            group.collapse_label,
            instances=group.collapse_instances,
            kind=group.concepts[0].kind,
            name=f"{interface_name}:{group.key}:collapsed",
        )
        for concept in group.concepts:
            mapping.assign(concept.key, interface_name, node)
        return [node]

    style: str | None = None
    styles = _available_styles(group)
    if styles:
        style = rng.choice(styles)

    eligible = [
        c
        for c in group.concepts
        if c.styles is None or (style is not None and style in c.styles)
    ]
    if not eligible:
        eligible = list(group.concepts)
    members = [c for c in eligible if rng.random() < c.prevalence]
    if not members:
        members = [rng.choice(eligible)]
    fields = [
        _make_field_node(rng, concept, style, interface_name, mapping)
        for concept in members
    ]

    flatten = len(fields) == 1 or (
        allow_flatten and rng.random() < group.flatten_prob
    )
    if flatten:
        return fields

    group_label = None
    if group.group_labels and rng.random() < group.labeled_prob:
        group_label = _pick_variant(rng, group.group_labels, style).text
    return [
        SchemaNode(group_label, fields, name=f"{interface_name}:{group.key}")
    ]


def _sample_interface(
    rng: random.Random,
    spec: DomainSpec,
    index: int,
    mapping: Mapping,
) -> QueryInterface:
    interface_name = f"{spec.name}-{index:02d}"

    # Decide which super-groups materialize first: their member groups keep
    # their internal nesting (a flattened member would sibling-merge with
    # its neighbors under the super node, which real interfaces avoid).
    materialized: list = []
    in_supergroup: set[str] = set()
    for supergroup in spec.supergroups:
        if rng.random() < supergroup.nest_prob:
            materialized.append(supergroup)
            in_supergroup.update(supergroup.members)

    group_nodes: dict[str, list[SchemaNode]] = {}
    for group in spec.groups:
        group_nodes[group.key] = _sample_group(
            rng,
            group,
            interface_name,
            mapping,
            allow_flatten=group.key not in in_supergroup,
            prevalence_scale=spec.field_prevalence_scale,
        )

    placed: set[str] = set()
    top_level: list[SchemaNode] = []

    for supergroup in materialized:
        member_nodes = [
            node
            for key in supergroup.members
            for node in group_nodes.get(key, [])
        ]
        present_members = [
            key for key in supergroup.members if group_nodes.get(key)
        ]
        if len(present_members) < 2:
            continue
        rng.shuffle(member_nodes)  # sources disagree on section order
        label = None
        if supergroup.labels and rng.random() < supergroup.labeled_prob:
            label = _pick_variant(rng, supergroup.labels, None).text
        top_level.append(
            SchemaNode(
                label, member_nodes, name=f"{interface_name}:{supergroup.key}"
            )
        )
        placed.update(present_members)

    for group in spec.groups:
        if group.key in placed:
            continue
        top_level.extend(group_nodes.get(group.key, []))

    for concept in spec.root_concepts:
        if rng.random() < concept.prevalence * spec.field_prevalence_scale:
            top_level.append(
                _make_field_node(rng, concept, None, interface_name, mapping)
            )

    rng.shuffle(top_level)  # sources disagree on overall section order
    root = SchemaNode(None, top_level, name=f"{interface_name}:root")
    return QueryInterface(
        name=interface_name, root=root, domain=spec.name
    )


def generate_domain(spec: DomainSpec, seed: int = 0) -> DomainDataset:
    """Sample ``spec.interface_count`` interfaces plus ground-truth mapping.

    Retries an interface draw when it ends up degenerate (no fields) so the
    corpus always has ``interface_count`` usable sources.
    """
    spec.validate()
    # zlib.crc32 is stable across processes (str.__hash__ is randomized).
    rng = random.Random((zlib.crc32(spec.name.encode()) & 0xFFFF) * 10_007 + seed)
    mapping = Mapping()
    interfaces: list[QueryInterface] = []
    index = 0
    attempts = 0
    while len(interfaces) < spec.interface_count:
        attempts += 1
        if attempts > spec.interface_count * 20:
            raise RuntimeError(
                f"{spec.name}: could not sample enough non-degenerate interfaces"
            )
        trial_mapping = Mapping()
        interface = _sample_interface(rng, spec, index, trial_mapping)
        if not interface.root.children:
            continue  # degenerate draw: no group materialized
        # Commit the trial assignments into the real mapping.
        for cluster in trial_mapping.clusters:
            for interface_name, node in cluster.members.items():
                mapping.assign(cluster.name, interface_name, node)
        interfaces.append(interface)
        index += 1
    return DomainDataset(
        name=spec.name, spec=spec, interfaces=interfaces, mapping=mapping, seed=seed
    )
