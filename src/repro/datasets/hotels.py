"""Hotels domain catalog (30 interfaces; Table 6 row 7).

The largest source set.  Plants the paper's survey findings: chain-specific
discount-program fields ("Wyndham ByRequest No") that are frequency-1 and
too specific for a generic interface, and the check-in/check-out vs
number-of-nights redundancy a respondent complained about.
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, SuperGroupSpec, variants

__all__ = ["hotels_spec"]

_UNLABELED = 0.27


def hotels_spec() -> DomainSpec:
    destination = GroupSpec(
        key="g_destination",
        concepts=(
            Concept(
                "c_city",
                variants(("City", "plain"), ("Destination City", "wordy"),
                         ("Where are you going?", "question")),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_state",
                variants("State", ("State/Province", "rare", 0.3)),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_country",
                variants("Country", ("Country/Region", "rare", 0.3)),
                prevalence=0.5,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("USA", "Korea", "UK", "France"),
                instance_prob=0.5,
            ),
        ),
        group_labels=variants("Destination", "Where to?", "Location"),
        labeled_prob=0.55,
        flatten_prob=0.2,
    )

    dates = GroupSpec(
        key="g_dates",
        concepts=(
            Concept(
                "c_checkin",
                variants(("Check-in", "plain"), ("Check-in Date", "wordy"),
                         ("Arrival Date", "alt")),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_checkout",
                variants(("Check-out", "plain"), ("Check-out Date", "wordy"),
                         ("Departure Date", "alt")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
            # Redundant with the dates — the survey comment in Section 7.
            Concept(
                "c_nights",
                variants(("Nights", "plain"), ("Number of Nights", "wordy")),
                prevalence=0.4,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("1", "2", "3", "4", "5+"),
                instance_prob=0.6,
            ),
        ),
        group_labels=variants("Dates of Stay", "When?", "Stay Dates"),
        labeled_prob=0.5,
        flatten_prob=0.2,
    )

    occupancy = GroupSpec(
        key="g_occupancy",
        concepts=(
            Concept(
                "c_adults",
                variants(("Adults", "plural"), ("Adult", "singular"),
                         ("Number of Adults", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("1", "2", "3", "4"),
                instance_prob=0.55,
            ),
            Concept(
                "c_children",
                variants(("Children", "plural"), ("Child", "singular"),
                         ("Number of Children", "wordy")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("0", "1", "2", "3"),
                instance_prob=0.55,
            ),
            Concept(
                "c_rooms",
                variants(("Rooms", "plural"), ("Room", "singular"),
                         ("Number of Rooms", "wordy")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("1", "2", "3", "4+"),
                instance_prob=0.55,
            ),
        ),
        group_labels=variants("Guests and Rooms", "How many?", "Occupancy"),
        labeled_prob=0.55,
        flatten_prob=0.2,
        collapse_label="Guests",
        collapse_prob=0.08,
        collapse_instances=("1", "2", "3", "4", "5+"),
    )

    price = GroupSpec(
        key="g_price",
        concepts=(
            Concept(
                "c_price_min",
                variants(("Min Price", "minmax"), ("Price From", "fromto"),
                         ("Min Rate", "rate")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_price_max",
                variants(("Max Price", "minmax"), ("Price To", "fromto"),
                         ("Max Rate", "rate")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_currency",
                variants("Currency", "Show Prices In"),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("USD", "EUR", "KRW", "GBP"),
                instance_prob=0.6,
            ),
        ),
        group_labels=variants("Price Range", "Nightly Rate", "Budget"),
        labeled_prob=0.8,
        prevalence=0.75,
    )

    quality = GroupSpec(
        key="g_quality",
        concepts=(
            Concept(
                "c_star_rating",
                variants(("Star Rating", "rating"), ("Stars", "plain"), ("Hotel Class", "class")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("2 stars", "3 stars", "4 stars", "5 stars"),
                instance_prob=0.7,
            ),
            Concept(
                "c_guest_rating",
                variants(("Guest Rating", "rating"), ("Review Score", "plain")),
                prevalence=0.4,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Quality", "Hotel Class", "Rating"),
        labeled_prob=0.5,
        prevalence=0.5,
    )

    amenities = GroupSpec(
        key="g_amenities",
        concepts=(
            Concept(
                "c_pool",
                variants(("Pool", "plain"), ("Swimming Pool", "wordy")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_breakfast",
                variants(("Breakfast", "plain"), ("Breakfast Included", "wordy"), ("Free Breakfast", "free")),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_parking",
                variants(("Parking", "plain"), ("Free Parking", "free"), ("Parking", "wordy")),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_pets",
                variants(("Pets Allowed", "wordy"), ("Pet Friendly", "free"), ("Pets", "plain")),
                prevalence=0.5,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        group_labels=variants("Amenities", "Hotel Amenities", "Facilities"),
        labeled_prob=0.65,
        flatten_prob=0.1,
        prevalence=0.7,
    )

    hotel = GroupSpec(
        key="g_hotel",
        concepts=(
            Concept(
                "c_hotel_chain",
                variants("Hotel Chain", "Chain", "Preferred Chain"),
                prevalence=0.6,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("Hilton", "Marriott", "Wyndham", "Any"),
                instance_prob=0.6,
            ),
            Concept(
                "c_hotel_name",
                variants("Hotel Name", "Property Name"),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Hotel", "Property"),
        labeled_prob=0.65,
        prevalence=0.55,
    )

    # Chain-specific discount programs: the frequency-1 fields the survey
    # found too specific ("Wyndham ByRequest No").
    discounts = GroupSpec(
        key="g_discounts",
        concepts=(
            Concept(
                "c_aaa_rate",
                variants(("AAA Rate", "rate"), ("AAA Discount", "disc")),
                prevalence=0.3,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_senior_rate",
                variants(("Senior Rate", "rate"), ("Senior Discount", "disc")),
                prevalence=0.3,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_govt_rate",
                variants(("Government Rate", "rate"), ("Government Discount", "disc")),
                prevalence=0.2,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
            Concept(
                "c_wyndham_byrequest",
                variants("Wyndham ByRequest No"),
                prevalence=0.10,
                unlabeled_prob=0.0,
            ),
        ),
        group_labels=variants("Discounts", "Special Rates", "Rate Programs"),
        labeled_prob=0.65,
        prevalence=0.5,
    )

    smoking = GroupSpec(
        key="g_smoking",
        concepts=(
            Concept(
                "c_smoking",
                variants("Smoking Preference", "Smoking"),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.RADIO_BUTTON,
                instances=("Smoking", "Non-Smoking", "Either"),
                instance_prob=0.6,
            ),
        ),
        prevalence=0.35,
    )
    accessibility = GroupSpec(
        key="g_accessibility",
        concepts=(
            Concept(
                "c_accessible",
                variants("Accessible Rooms", "Accessibility", "ADA Accessible"),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.CHECKBOX,
            ),
        ),
        prevalence=0.25,
    )
    bed_type = GroupSpec(
        key="g_bed_type",
        concepts=(
            Concept(
                "c_bed_type",
                variants("Bed Type", "Preferred Bed", "Bed"),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("King", "Queen", "Double", "Twin"),
                instance_prob=0.65,
            ),
        ),
        prevalence=0.3,
    )

    stay = SuperGroupSpec(
        key="sg_stay",
        members=("g_destination", "g_dates", "g_occupancy"),
        labels=variants("Your Stay", "Reservation Details", "Booking"),
        labeled_prob=0.5,
        nest_prob=0.6,
    )
    room_prefs = SuperGroupSpec(
        key="sg_room",
        members=("g_quality", "g_smoking", "g_bed_type", "g_accessibility"),
        labels=variants("Room Preferences", "Room Options"),
        labeled_prob=0.5,
        nest_prob=0.5,
    )

    roots = (
        Concept(
            "c_promo_code",
            variants("Promotion Code", "Promo Code"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_email",
            variants("Email", "Email Address"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
        ),
    )

    return DomainSpec(
        name="hotels",
        interface_count=30,
        groups=(
            destination,
            dates,
            occupancy,
            price,
            quality,
            amenities,
            hotel,
            discounts,
            smoking,
            accessibility,
            bed_type,
        ),
        supergroups=(stay, room_prefs),
        root_concepts=roots,
        description="Hotel booking; largest source set, chain-specific noise.",
        field_prevalence_scale=0.68,
    )
