"""Job domain catalog (20 interfaces; Table 6 row 4).

The flattest domain: almost everything sits directly under the root (15 of
19 integrated leaves), so its naming is dominated by the *root pseudo-group*
and partially consistent solutions.  Hosts two paper examples: the
most-descriptive-vs-most-general choice for Job Category (Category /
Job Category / Area of Work / Function, Section 3.2.1) and the homonym
conflict between Job Category and Job Type (Sections 1 and 4.2.3) repaired
via the Employment Type spelling.
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, variants

__all__ = ["job_spec"]

_UNLABELED = 0.1


def job_spec() -> DomainSpec:
    salary = GroupSpec(
        key="g_salary",
        concepts=(
            Concept(
                "c_salary_min",
                variants(("Min Salary", "minmax"), ("Salary From", "fromto"),
                         ("Minimum Salary", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_salary_max",
                variants(("Max Salary", "minmax"), ("Salary To", "fromto"),
                         ("Maximum Salary", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Salary Range", "Desired Salary", "Compensation"),
        labeled_prob=0.6,
        prevalence=0.7,
    )

    roots = (
        Concept(
            "c_keyword",
            variants("Keyword", "Keywords", "Search Keywords"),
            prevalence=0.8,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_job_title",
            variants("Job Title", "Position Title", "Title"),
            prevalence=0.55,
            unlabeled_prob=_UNLABELED,
        ),
        # Section 3.2.1: Category and Function are too generic; the
        # descriptive spellings should win.  The low-weight "Job Type"
        # variant plants the homonym conflict with c_job_type.
        Concept(
            "c_job_category",
            variants(
                ("Job Category", None, 3.0),
                ("Area of Work", None, 2.0),
                ("Field of Work", None, 1.5),
                ("Category", None, 1.2),
                ("Function", None, 0.8),
                ("Job Type", None, 0.4),
            ),
            prevalence=0.75,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("Engineering", "Sales", "Education", "Healthcare"),
            instance_prob=0.5,
        ),
        Concept(
            "c_job_type",
            variants(
                ("Job Type", None, 3.0),
                ("Type of Job", None, 1.5),
                ("Employment Type", None, 2.0),
                ("Job Preferences", None, 0.8),
            ),
            prevalence=0.7,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("Full-Time", "Part-Time", "Contract", "Internship"),
            instance_prob=0.7,
        ),
        Concept(
            "c_state",
            variants("State", "State/Province"),
            prevalence=0.6,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("IL", "NY", "CA", "TX"),
            instance_prob=0.5,
        ),
        Concept(
            "c_city",
            variants("City", "City Name"),
            prevalence=0.6,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_zip",
            variants("Zip Code", "Zip", "Postal Code"),
            prevalence=0.35,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_company",
            variants("Company", "Company Name", "Employer"),
            prevalence=0.45,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_industry",
            variants("Industry", "Sector"),
            prevalence=0.4,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("Technology", "Finance", "Manufacturing", "Retail"),
            instance_prob=0.5,
        ),
        Concept(
            "c_experience",
            variants("Experience", "Years of Experience", "Experience Level"),
            prevalence=0.4,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("Entry Level", "Mid Level", "Senior", "Executive"),
            instance_prob=0.6,
        ),
        Concept(
            "c_education",
            variants("Education", "Education Level", "Degree"),
            prevalence=0.35,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("High School", "Bachelor", "Master", "Doctorate"),
            instance_prob=0.6,
        ),
        Concept(
            "c_posted_within",
            variants("Posted Within", "Date Posted", "Posted"),
            prevalence=0.4,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("1 day", "7 days", "30 days", "Any time"),
            instance_prob=0.7,
        ),
        Concept(
            "c_distance",
            variants("Distance", "Within", "Radius"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("5 miles", "10 miles", "25 miles", "50 miles"),
            instance_prob=0.6,
        ),
        Concept(
            "c_country",
            variants("Country", "Country/Region"),
            prevalence=0.25,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_work_status",
            variants("Work Status", "Work Authorization"),
            prevalence=0.2,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
        Concept(
            "c_relocate",
            variants("Willing to Relocate", "Relocation"),
            prevalence=0.15,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
        Concept(
            "c_agency",
            variants("Agency", "Recruiter", "Staffing Agency"),
            prevalence=0.15,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
    )

    return DomainSpec(
        name="job",
        interface_count=20,
        groups=(salary,),
        root_concepts=roots,
        description="Job boards; flat interfaces, root-dominated naming.",
        field_prevalence_scale=0.55,
    )
