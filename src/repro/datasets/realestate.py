"""Real Estate domain catalog (20 interfaces; Table 6 row 5).

Reproduces Figure 3's structure — the State/City Zone group, Minimum/Maximum
price group, the isolated Garage cluster under Property Characteristics —
and Figure 11's two documented blemishes: the Lease-Rate group whose left
field is unlabeled on every source (the one FldAcc miss: 96.4%), and the
Features node that ends only weakly consistent with Unit Range and Acreage.
Also carries the LI1 example: sources with a ``Location`` node over
State/County vs a ``Property Location`` node over State/County/City.
"""

from __future__ import annotations

from ..schema.tree import FieldKind
from .catalog import Concept, DomainSpec, GroupSpec, SuperGroupSpec, variants

__all__ = ["realestate_spec"]

_UNLABELED = 0.1


def realestate_spec() -> DomainSpec:
    location = GroupSpec(
        key="g_location",
        concepts=(
            Concept(
                "c_state",
                variants(("State", "plain")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("IL", "NY", "CA", "FL"),
                instance_prob=0.5,
            ),
            Concept(
                "c_city",
                variants(("City", "plain"), ("City or Town", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_county",
                variants(("County", "plain")),
                prevalence=0.4,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_zip",
                variants(("Zip Code", "plain"), ("Zip", "terse")),
                prevalence=0.55,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Location", "Property Location", "Zone", "Area"),
        labeled_prob=0.55,
        flatten_prob=0.25,
    )

    price = GroupSpec(
        key="g_price",
        concepts=(
            Concept(
                "c_price_min",
                variants(("Minimum", "minmax"), ("Min Price", "price"),
                         ("From", "fromto")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_price_max",
                variants(("Maximum", "minmax"), ("Max Price", "price"),
                         ("To", "fromto")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Price Range", "Price", "Asking Price"),
        labeled_prob=0.6,
        flatten_prob=0.15,
    )

    beds_baths = GroupSpec(
        key="g_beds_baths",
        concepts=(
            Concept(
                "c_bedrooms",
                variants(("Bedrooms", "plural"), ("Beds", "terse"),
                         ("Number of Bedrooms", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("1+", "2+", "3+", "4+"),
                instance_prob=0.6,
            ),
            Concept(
                "c_bathrooms",
                variants(("Bathrooms", "plural"), ("Baths", "terse"),
                         ("Number of Bathrooms", "wordy")),
                prevalence=0.85,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("1+", "2+", "3+"),
                instance_prob=0.6,
            ),
        ),
        group_labels=variants("Property Characteristics", "Rooms", "Beds & Baths"),
        labeled_prob=0.55,
        flatten_prob=0.2,
        prevalence=0.85,
    )

    sqft = GroupSpec(
        key="g_sqft",
        concepts=(
            Concept(
                "c_sqft_min",
                variants(("Min Square Feet", "minmax"), ("Square Feet From", "fromto")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_sqft_max",
                variants(("Max Square Feet", "minmax"), ("Square Feet To", "fromto")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Square Footage", "Size"),
        labeled_prob=0.55,
        prevalence=0.4,
    )

    year_built = GroupSpec(
        key="g_year_built",
        concepts=(
            Concept(
                "c_built_from",
                variants(("Built After", "wordy"), ("Year From", "fromto"),
                         ("Min Year Built", "minmax")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_built_to",
                variants(("Built Before", "wordy"), ("Year To", "fromto"),
                         ("Max Year Built", "minmax")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Year Built", "Construction Year"),
        labeled_prob=0.55,
        prevalence=0.35,
    )

    # Figure 11's blemish: the left Lease-Rate field is unlabeled on every
    # source; only its sibling "To" ever carries a label.
    lease = GroupSpec(
        key="g_lease",
        concepts=(
            Concept(
                "c_lease_from",
                variants("From"),      # variant never used:
                prevalence=0.85,
                unlabeled_prob=1.0,    # unlabeled on every source interface
            ),
            Concept(
                "c_lease_to",
                variants(("To", "fromto"), ("Up To", "wordy")),
                prevalence=0.9,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Lease Rate", "Monthly Rent"),
        labeled_prob=0.65,
        prevalence=0.3,
    )

    units = GroupSpec(
        key="g_units",
        concepts=(
            Concept(
                "c_units_min",
                variants(("Min Units", "minmax"), ("Units From", "fromto")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_units_max",
                variants(("Max Units", "minmax"), ("Units To", "fromto")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Unit Range", "Units"),
        labeled_prob=0.5,
        prevalence=0.25,
    )

    acreage = GroupSpec(
        key="g_acreage",
        concepts=(
            Concept(
                "c_acreage_min",
                variants(("Min Acreage", "minmax"), ("Acres From", "fromto")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
            Concept(
                "c_acreage_max",
                variants(("Max Acreage", "minmax"), ("Acres To", "fromto")),
                prevalence=0.8,
                unlabeled_prob=_UNLABELED,
            ),
        ),
        group_labels=variants("Acreage", "Lot Size"),
        labeled_prob=0.5,
        prevalence=0.25,
    )

    # The isolated Garage cluster (Figure 3's C_int example).
    garage = GroupSpec(
        key="g_garage",
        concepts=(
            Concept(
                "c_garage",
                variants(("Garage", None, 1.5), ("Garage Spaces", None, 1.5),
                         "Parking"),
                prevalence=0.95,
                unlabeled_prob=_UNLABELED,
                kind=FieldKind.SELECTION_LIST,
                instances=("1+", "2+", "3+", "None"),
                instance_prob=0.8,
            ),
        ),
        prevalence=0.6,
    )

    features = SuperGroupSpec(
        key="sg_features",
        members=("g_beds_baths", "g_garage", "g_units", "g_acreage", "g_sqft"),
        labels=variants("Features", "Property Characteristics", "Property Features"),
        labeled_prob=0.55,
        nest_prob=0.6,
    )
    availability = SuperGroupSpec(
        key="sg_availability",
        members=("g_lease", "g_year_built"),
        labels=variants("Property Availability", "Availability"),
        labeled_prob=0.45,
        nest_prob=0.4,
    )

    roots = (
        Concept(
            "c_property_type",
            variants("Property Type", "Type of Property", "Home Type"),
            prevalence=0.75,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.SELECTION_LIST,
            instances=("House", "Condo", "Townhouse", "Land"),
            instance_prob=0.7,
        ),
        Concept(
            "c_listing_type",
            variants("Listing Type", "For Sale or Rent"),
            prevalence=0.45,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.RADIO_BUTTON,
            instances=("For Sale", "For Rent", "Foreclosure"),
            instance_prob=0.7,
        ),
        Concept(
            "c_keyword",
            variants("Keyword", "Keywords"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_mls",
            variants("MLS Number", "MLS ID", "Listing Number"),
            prevalence=0.3,
            unlabeled_prob=_UNLABELED,
        ),
        Concept(
            "c_open_house",
            variants("Open House", "Open Houses Only"),
            prevalence=0.2,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
        Concept(
            "c_new_construction",
            variants("New Construction", "Newly Built"),
            prevalence=0.2,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
        Concept(
            "c_foreclosure",
            variants("Foreclosure", "Foreclosures Only"),
            prevalence=0.15,
            unlabeled_prob=_UNLABELED,
            kind=FieldKind.CHECKBOX,
        ),
    )

    return DomainSpec(
        name="realestate",
        interface_count=20,
        groups=(
            location,
            price,
            beds_baths,
            sqft,
            year_built,
            lease,
            units,
            acreage,
            garage,
        ),
        supergroups=(features, availability),
        root_concepts=roots,
        description="Property search; Figures 3 and 11 of the paper.",
        field_prevalence_scale=0.55,
    )
