"""Domain registry: one entry per Table 6 row, in the paper's order."""

from __future__ import annotations

from collections.abc import Callable

from .airline import airline_spec
from .auto import auto_spec
from .book import book_spec
from .carrental import carrental_spec
from .catalog import DomainSpec
from .generator import DomainDataset, generate_domain
from .hotels import hotels_spec
from .job import job_spec
from .realestate import realestate_spec

__all__ = ["DOMAINS", "DOMAIN_TITLES", "domain_spec", "load_domain", "load_all_domains"]

#: Builders, keyed by canonical domain name, in Table 6's row order.
DOMAINS: dict[str, Callable[[], DomainSpec]] = {
    "airline": airline_spec,
    "auto": auto_spec,
    "book": book_spec,
    "job": job_spec,
    "realestate": realestate_spec,
    "carrental": carrental_spec,
    "hotels": hotels_spec,
}

#: Display names matching the paper's Table 6.
DOMAIN_TITLES: dict[str, str] = {
    "airline": "Airline",
    "auto": "Auto",
    "book": "Book",
    "job": "Job",
    "realestate": "Real Estate",
    "carrental": "Car Rental",
    "hotels": "Hotels",
}


def domain_spec(name: str) -> DomainSpec:
    """The catalog for ``name`` (raises ``KeyError`` on unknown domains)."""
    try:
        return DOMAINS[name]()
    except KeyError:
        known = ", ".join(DOMAINS)
        raise KeyError(f"unknown domain {name!r}; known domains: {known}") from None


def load_domain(name: str, seed: int = 0) -> DomainDataset:
    """Generate the synthetic corpus for one domain, deterministically."""
    return generate_domain(domain_spec(name), seed=seed)


def load_all_domains(seed: int = 0) -> dict[str, DomainDataset]:
    """All seven domains (the paper's 150-interface evaluation corpus)."""
    return {name: load_domain(name, seed=seed) for name in DOMAINS}
