"""The paper's Table 6, verbatim — the reference the benchmarks compare to.

One :class:`PaperRow` per domain, transcribed from the published table
(VLDB 2006, page 688).  Keeping the numbers in one importable place stops
the benchmarks, tests and documentation from drifting apart.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PaperRow", "PAPER_TABLE6"]


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 6."""

    domain: str
    interface_count: int
    # Source characteristics (columns 2-5).
    avg_leaves: float
    avg_internal_nodes: float
    avg_depth: float
    lq: float
    # Integrated interface (columns 6-13).
    leaves: int
    groups: int
    isolated_leaves: int
    root_leaves: int
    internal_nodes: int
    depth: int
    # Statistics (columns 12-15).
    fld_acc: float
    int_acc: float
    ha: float
    ha_star: float
    #: The classification the paper's Section 7 narrative assigns.
    classification: str = "weakly_consistent"


PAPER_TABLE6: dict[str, PaperRow] = {
    "airline": PaperRow(
        domain="airline", interface_count=20,
        avg_leaves=10.7, avg_internal_nodes=5.1, avg_depth=3.6, lq=0.53,
        leaves=24, groups=8, isolated_leaves=0, root_leaves=1,
        internal_nodes=13, depth=5,
        fld_acc=1.00, int_acc=0.846, ha=0.966, ha_star=0.983,
        classification="inconsistent",
    ),
    "auto": PaperRow(
        domain="auto", interface_count=20,
        avg_leaves=5.1, avg_internal_nodes=1.7, avg_depth=2.4, lq=0.797,
        leaves=18, groups=5, isolated_leaves=0, root_leaves=4,
        internal_nodes=7, depth=3,
        fld_acc=1.00, int_acc=1.00, ha=1.00, ha_star=1.00,
        classification="consistent",
    ),
    "book": PaperRow(
        domain="book", interface_count=20,
        avg_leaves=5.4, avg_internal_nodes=1.3, avg_depth=2.3, lq=0.833,
        leaves=19, groups=5, isolated_leaves=1, root_leaves=8,
        internal_nodes=6, depth=3,
        fld_acc=1.00, int_acc=1.00, ha=0.989, ha_star=1.00,
        classification="consistent",
    ),
    "job": PaperRow(
        domain="job", interface_count=20,
        avg_leaves=4.6, avg_internal_nodes=1.1, avg_depth=2.1, lq=0.80,
        leaves=19, groups=1, isolated_leaves=0, root_leaves=15,
        internal_nodes=2, depth=2,
        fld_acc=1.00, int_acc=1.00, ha=1.00, ha_star=1.00,
        classification="consistent",
    ),
    "realestate": PaperRow(
        domain="realestate", interface_count=20,
        avg_leaves=6.7, avg_internal_nodes=2.4, avg_depth=2.7, lq=0.791,
        leaves=28, groups=8, isolated_leaves=1, root_leaves=7,
        internal_nodes=8, depth=4,
        fld_acc=0.964, int_acc=1.00, ha=0.978, ha_star=0.978,
        classification="weakly_consistent",
    ),
    "carrental": PaperRow(
        domain="carrental", interface_count=20,
        avg_leaves=10.4, avg_internal_nodes=2.4, avg_depth=2.5, lq=0.525,
        leaves=34, groups=9, isolated_leaves=3, root_leaves=3,
        internal_nodes=15, depth=5,
        fld_acc=1.00, int_acc=0.934, ha=0.979, ha_star=0.982,
        classification="inconsistent",
    ),
    "hotels": PaperRow(
        domain="hotels", interface_count=30,
        avg_leaves=7.6, avg_internal_nodes=2.4, avg_depth=2.3, lq=0.701,
        leaves=26, groups=8, isolated_leaves=3, root_leaves=2,
        internal_nodes=15, depth=5,
        fld_acc=1.00, int_acc=0.934, ha=0.953, ha_star=0.961,
        classification="weakly_consistent",
    ),
}
