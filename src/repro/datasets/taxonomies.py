"""Synthetic concept-hierarchy corpus — for the Section-9 extension study.

The paper's conclusion proposes experimentally showing the naming framework
"readily applicable to ... integrated concept hierarchies".  This module
provides the corpus for that experiment: a master product taxonomy whose
concepts and categories carry realistic name variants, plus a seeded
sampler that derives per-store taxonomies (subset of categories, subset of
concepts, one name variant each) with ground truth attached.

:func:`evaluate_integration` then scores an integration result against the
ground truth: pairwise precision/recall of the recovered concept clusters
and the accuracy of the integrated category labels.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field

from ..extensions.hierarchy import ConceptHierarchy, IntegratedHierarchy
from ..schema.interface import make_field, make_group
from ..schema.tree import SchemaNode

__all__ = [
    "TaxonomySpec",
    "ELECTRONICS",
    "BOOKSTORE",
    "generate_taxonomies",
    "evaluate_integration",
    "IntegrationScore",
]


@dataclass(frozen=True)
class TaxonomySpec:
    """A master taxonomy: ``{category_key: (category variants,
    {concept_key: concept variants})}``."""

    name: str
    categories: dict

    def concept_keys(self) -> list[str]:
        return [
            concept_key
            for __, concepts in self.categories.values()
            for concept_key in concepts
        ]


ELECTRONICS = TaxonomySpec(
    name="electronics",
    categories={
        "computers": (
            ("Computers", "Computer Equipment", "Computing"),
            {
                "laptops": ("Laptops", "Notebook Computers", "Notebooks"),
                "desktops": ("Desktops", "Desktop Computers"),
                "tablets": ("Tablets", "Tablet Computers"),
                "monitors": ("Monitors", "Computer Monitors", "Displays"),
            },
        ),
        "phones": (
            ("Phones", "Mobile Phones", "Telephones"),
            {
                "smartphones": ("Smartphones", "Smart Phones"),
                "cases": ("Phone Cases", "Cases"),
                "chargers": ("Phone Chargers", "Chargers"),
            },
        ),
        "cameras": (
            ("Cameras", "Photography"),
            {
                "digital_cameras": ("Digital Cameras", "Cameras"),
                "lenses": ("Camera Lenses", "Lenses"),
                "tripods": ("Tripods", "Camera Tripods"),
            },
        ),
        "audio": (
            ("Audio", "Audio Equipment", "Sound"),
            {
                "headphones": ("Headphones", "Earphones"),
                "speakers": ("Speakers", "Loudspeakers"),
            },
        ),
    },
)


BOOKSTORE = TaxonomySpec(
    name="bookstore",
    categories={
        "fiction": (
            ("Fiction", "Fiction Books", "Novels"),
            {
                "mystery": ("Mystery", "Mysteries", "Crime Fiction"),
                "scifi": ("Science Fiction", "Sci-Fi"),
                "romance": ("Romance", "Romance Novels"),
            },
        ),
        "nonfiction": (
            ("Nonfiction", "Non-Fiction"),
            {
                "history": ("History", "History Books"),
                "biography": ("Biography", "Biographies", "Memoirs"),
                "science": ("Science", "Popular Science"),
            },
        ),
        "children": (
            ("Children", "Kids", "Children's Books"),
            {
                "picture_books": ("Picture Books", "Picture Book"),
                "young_adult": ("Young Adult", "Teen Books"),
            },
        ),
    },
)


def generate_taxonomies(
    count: int,
    seed: int = 0,
    spec: TaxonomySpec = ELECTRONICS,
    category_prevalence: float = 0.8,
    concept_prevalence: float = 0.75,
) -> tuple[list[ConceptHierarchy], dict[str, dict[str, str]]]:
    """Sample ``count`` store taxonomies from ``spec``.

    Returns ``(hierarchies, ground_truth)`` where
    ``ground_truth[concept_key][store_name]`` is the label the store uses
    for that concept — the reference the matcher's clusters are scored
    against.
    """
    rng = random.Random((zlib.crc32(spec.name.encode()) & 0xFFFF) * 7919 + seed)
    hierarchies: list[ConceptHierarchy] = []
    ground_truth: dict[str, dict[str, str]] = {
        key: {} for key in spec.concept_keys()
    }

    for index in range(count):
        store = f"{spec.name}-store-{index:02d}"
        sections = []
        for category_key, (category_variants, concepts) in spec.categories.items():
            if rng.random() >= category_prevalence:
                continue
            leaves = []
            for concept_key, concept_variants in concepts.items():
                if rng.random() >= concept_prevalence:
                    continue
                label = rng.choice(concept_variants)
                ground_truth[concept_key][store] = label
                leaves.append(
                    make_field(label, name=f"{store}:{concept_key}")
                )
            if not leaves:
                continue
            sections.append(
                make_group(
                    rng.choice(category_variants),
                    leaves,
                    name=f"{store}:{category_key}",
                )
            )
        if not sections:
            continue
        hierarchies.append(
            ConceptHierarchy(store, SchemaNode(None, sections, name=f"{store}:root"))
        )
    return hierarchies, ground_truth


@dataclass
class IntegrationScore:
    """Pairwise cluster quality + category-label accuracy."""

    precision: float
    recall: float
    category_accuracy: float
    concept_count: int
    category_count: int

    @property
    def f1(self) -> float:
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def _pairs(members: list[tuple[str, str]]) -> set[frozenset]:
    return {
        frozenset({a, b})
        for i, a in enumerate(members)
        for b in members[i + 1 :]
    }


def evaluate_integration(
    integrated: IntegratedHierarchy,
    ground_truth: dict[str, dict[str, str]],
    spec: TaxonomySpec = ELECTRONICS,
) -> IntegrationScore:
    """Score ``integrated`` against the generator's ground truth.

    *Pairwise precision/recall*: over pairs of (store, concept-occurrence)
    items — a pair is correct when both belong to the same master concept.
    *Category accuracy*: an integrated category node is correct when its
    label belongs to the variant pool of the single master category its
    concepts came from (mixed-category nodes count as wrong).
    """
    # Ground truth: item -> master concept key.
    item_truth: dict[tuple[str, str], str] = {}
    for concept_key, per_store in ground_truth.items():
        for store in per_store:
            item_truth[(store, concept_key)] = concept_key

    # Predicted clusters: mapping cluster -> items.
    predicted_pairs: set[frozenset] = set()
    for cluster in integrated.mapping.clusters:
        members = []
        for store, node in cluster.members.items():
            concept_key = node.name.split(":")[-1]
            members.append((store, concept_key))
        predicted_pairs |= _pairs(members)

    truth_clusters: dict[str, list[tuple[str, str]]] = {}
    for item, concept_key in item_truth.items():
        truth_clusters.setdefault(concept_key, []).append(item)
    truth_pairs = set()
    for members in truth_clusters.values():
        truth_pairs |= _pairs(members)

    true_positive = len(predicted_pairs & truth_pairs)
    precision = true_positive / len(predicted_pairs) if predicted_pairs else 1.0
    recall = true_positive / len(truth_pairs) if truth_pairs else 1.0

    # Category labels.
    concept_to_category: dict[str, str] = {}
    category_pools: dict[str, set[str]] = {}
    for category_key, (variants_, concepts) in spec.categories.items():
        category_pools[category_key] = set(variants_)
        for concept_key in concepts:
            concept_to_category[concept_key] = category_key

    correct = 0
    total = 0
    for node in integrated.root.internal_nodes():
        if node is integrated.root:
            continue
        concept_keys = set()
        for leaf in node.leaves():
            if leaf.cluster is None:
                continue
            cluster = integrated.mapping[leaf.cluster]
            for store, member in cluster.members.items():
                concept_keys.add(member.name.split(":")[-1])
        categories = {
            concept_to_category[k] for k in concept_keys if k in concept_to_category
        }
        total += 1
        if len(categories) == 1 and node.label in category_pools[categories.pop()]:
            correct += 1

    return IntegrationScore(
        precision=precision,
        recall=recall,
        category_accuracy=correct / total if total else 1.0,
        concept_count=len(integrated.mapping),
        category_count=total,
    )
