"""End-to-end experiment driver: one call per Table 6 row.

:func:`run_domain` chains the whole system — corpus generation, 1:m
reduction, merge, naming, metrics, survey — and returns a
:class:`DomainRunResult` with every number Table 6 reports for the domain.
:func:`run_all_domains` produces the full table.  The benchmarks, the
examples and the integration tests all go through this module so they
cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core.inference import InferenceLog
from .core.metrics import (
    IntegratedStats,
    fields_consistency_accuracy,
    integrated_stats,
    internal_nodes_accuracy,
    labeling_quality,
)
from .core.pipeline import NamingOptions, label_integrated_interface
from .core.result import LabelingResult
from .core.semantics import SemanticComparator
from .datasets.generator import DomainDataset
from .datasets.registry import DOMAINS, load_domain
from .survey.study import StudyResult, run_study

__all__ = ["DomainRunResult", "SeedSweepRow", "run_all_domains", "run_domain", "sweep_seeds"]


@dataclass
class DomainRunResult:
    """Everything Table 6 reports for one domain, plus the raw objects."""

    domain: str
    dataset: DomainDataset
    labeling: LabelingResult
    study: StudyResult

    # Source-side characteristics (columns 2-5).
    avg_leaves: float = 0.0
    avg_internal_nodes: float = 0.0
    avg_depth: float = 0.0
    lq: float = 0.0

    # Integrated-interface characteristics (columns 6-13).
    integrated: IntegratedStats | None = None

    # Quality metrics (columns 12-15).
    fld_acc: float = 0.0
    int_acc: float = 0.0

    @property
    def ha(self) -> float:
        return self.study.ha

    @property
    def ha_star(self) -> float:
        return self.study.ha_star

    @property
    def classification(self) -> str:
        return self.labeling.classification.value

    @property
    def inference_log(self) -> InferenceLog:
        return self.labeling.inference_log


def run_domain(
    name: str,
    seed: int = 0,
    options: NamingOptions | None = None,
    comparator: SemanticComparator | None = None,
    respondent_count: int = 11,
) -> DomainRunResult:
    """Generate, merge, name and survey one domain end to end."""
    comparator = comparator or SemanticComparator()
    dataset = load_domain(name, seed=seed)
    integrated_root = dataset.integrated()
    labeling = label_integrated_interface(
        integrated_root,
        dataset.interfaces,
        dataset.mapping,
        comparator=comparator,
        options=options,
        domain=name,
    )
    study = run_study(
        labeling,
        dataset.mapping,
        comparator,
        respondent_count=respondent_count,
        seed=seed,
    )
    interfaces = dataset.interfaces
    run = DomainRunResult(
        domain=name,
        dataset=dataset,
        labeling=labeling,
        study=study,
        avg_leaves=sum(qi.leaf_count() for qi in interfaces) / len(interfaces),
        avg_internal_nodes=(
            sum(qi.internal_node_count() for qi in interfaces) / len(interfaces)
        ),
        avg_depth=sum(qi.depth() for qi in interfaces) / len(interfaces),
        lq=labeling_quality(interfaces),
        integrated=integrated_stats(labeling),
        fld_acc=fields_consistency_accuracy(labeling),
        int_acc=internal_nodes_accuracy(labeling),
    )
    return run


class _DomainTask:
    """One ``run_domain`` call as a picklable zero-argument callable.

    The process executor ships tasks to worker interpreters by pickling,
    which rules out closures — this class carries the same bindings as the
    thread path's lambda.  Inside a pool worker the warm comparator built
    by :func:`repro.service.parallel.init_worker` (around the compiled
    lexicon) is reused; outside one, a fresh comparator is built per task,
    exactly like the thread path.  The two lexicon backings are
    query-equivalent, so results do not depend on which one answers.
    """

    __slots__ = ("name", "seed", "options", "respondent_count")

    def __init__(self, name, seed, options, respondent_count) -> None:
        self.name = name
        self.seed = seed
        self.options = options
        self.respondent_count = respondent_count

    def __call__(self) -> DomainRunResult:
        from .service.parallel import worker_comparator

        return run_domain(
            self.name,
            seed=self.seed,
            options=self.options,
            comparator=worker_comparator() or SemanticComparator(),
            respondent_count=self.respondent_count,
        )


def run_all_domains(
    seed: int = 0,
    options: NamingOptions | None = None,
    respondent_count: int = 11,
    jobs: int = 1,
    executor: str = "thread",
) -> dict[str, DomainRunResult]:
    """All seven Table 6 rows, in the paper's order.

    ``jobs > 1`` fans the domains over the service layer's batch executor
    (:func:`repro.service.engine.execute_batch`); each worker labels with
    its own comparator, so results are identical to the sequential path —
    the default ``jobs=1`` keeps today's byte-for-byte behavior.
    ``executor="process"`` uses worker processes instead of threads (each
    warmed once with the compiled lexicon); the pipeline is deterministic,
    so all three paths yield identical tables.
    """
    from .service.parallel import validate_executor

    validate_executor(executor)
    if jobs <= 1:
        comparator = SemanticComparator()
        return {
            name: run_domain(
                name,
                seed=seed,
                options=options,
                comparator=comparator,
                respondent_count=respondent_count,
            )
            for name in DOMAINS
        }

    from .service.engine import execute_batch

    names = list(DOMAINS)
    tasks = [
        _DomainTask(name, seed, options, respondent_count) for name in names
    ]
    if executor == "process":
        from .lexicon.compiled import default_compiled
        from .service.parallel import init_worker

        outcomes = execute_batch(
            tasks,
            jobs=jobs,
            executor="process",
            initializer=init_worker,
            initargs=(default_compiled(),),
        )
    else:
        outcomes = execute_batch(tasks, jobs=jobs)
    failed = [
        f"{name}: {outcome.error}"
        for name, outcome in zip(names, outcomes)
        if not outcome.ok
    ]
    if failed:
        raise RuntimeError("run_all_domains failed: " + "; ".join(failed))
    return {name: outcome.value for name, outcome in zip(names, outcomes)}


@dataclass
class SeedSweepRow:
    """Aggregate metrics for one domain across a seed sweep."""

    domain: str
    seeds: tuple[int, ...]
    fld_acc_mean: float
    fld_acc_min: float
    int_acc_mean: float
    int_acc_min: float
    ha_mean: float
    classifications: dict[str, int]

    def dominant_classification(self) -> str:
        return max(self.classifications.items(), key=lambda kv: kv[1])[0]


def sweep_seeds(
    seeds=(0, 1, 2, 3, 4),
    options: NamingOptions | None = None,
    respondent_count: int = 5,
) -> dict[str, SeedSweepRow]:
    """Run every domain over several corpus seeds and aggregate.

    The reference corpus (seed 0) plays the role of the paper's one fixed
    crawl; the sweep shows the headline metrics are not a single lucky
    draw.  Used by the robustness benchmark and the ``sweep`` CLI command.
    """
    per_domain: dict[str, list[DomainRunResult]] = {name: [] for name in DOMAINS}
    for seed in seeds:
        for name, run in run_all_domains(
            seed=seed, options=options, respondent_count=respondent_count
        ).items():
            per_domain[name].append(run)

    rows: dict[str, SeedSweepRow] = {}
    for name, runs in per_domain.items():
        classifications: dict[str, int] = {}
        for run in runs:
            classifications[run.classification] = (
                classifications.get(run.classification, 0) + 1
            )
        fld = [r.fld_acc for r in runs]
        internal = [r.int_acc for r in runs]
        rows[name] = SeedSweepRow(
            domain=name,
            seeds=tuple(seeds),
            fld_acc_mean=sum(fld) / len(fld),
            fld_acc_min=min(fld),
            int_acc_mean=sum(internal) / len(internal),
            int_acc_min=min(internal),
            ha_mean=sum(r.ha for r in runs) / len(runs),
            classifications=classifications,
        )
    return rows
