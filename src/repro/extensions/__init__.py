"""Extensions the paper proposes as future work (its Section 9)."""

from .hierarchy import ConceptHierarchy, IntegratedHierarchy, integrate_hierarchies

__all__ = ["ConceptHierarchy", "IntegratedHierarchy", "integrate_hierarchies"]
