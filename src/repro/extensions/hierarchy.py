"""Labeling integrated concept hierarchies — the paper's proposed extension.

Section 9: "We aim to experimentally show that our framework is readily
applicable to other areas of interest sensitive to labeling process, e.g.,
integrated concept hierarchies or HTML forms."  This module carries out the
concept-hierarchy half.

A *concept hierarchy* (product taxonomy, subject classification, …) is an
ordered tree where every node names a concept; integrating several
hierarchies from different providers poses exactly the paper's problem:

* equivalent leaf concepts carry heterogeneous names across providers
  ("Laptops" / "Notebook Computers" / "Notebooks") — horizontal
  consistency within the integrated categories;
* inner category names must be at least as general as their content and
  consistent with it ("Computers" over laptops/desktops/tablets) —
  vertical consistency.

The mapping is direct: leaf concepts play the fields, categories play the
internal nodes, and the whole Section 4-6 machinery (group relations,
Combine*, LI1-LI5) applies verbatim.  The only genuinely new piece is the
matcher default: taxonomy leaves have no instances, so matching rests
entirely on the Definition-1 label relations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pipeline import NamingOptions, label_integrated_interface
from ..core.result import LabelingResult
from ..core.semantics import SemanticComparator
from ..matching import match_interfaces
from ..merge import merge_interfaces
from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode

__all__ = ["ConceptHierarchy", "IntegratedHierarchy", "integrate_hierarchies"]


@dataclass
class ConceptHierarchy:
    """One provider's taxonomy: a fully labeled ordered tree."""

    name: str
    root: SchemaNode

    def __post_init__(self) -> None:
        self.root.validate()

    def validate_labels(self) -> None:
        """Taxonomies label every node below the root; enforce it."""
        for node in self.root.walk():
            if node is self.root:
                continue
            if not node.is_labeled:
                raise ValueError(
                    f"hierarchy {self.name!r}: node {node.name!r} is unlabeled "
                    "(concept hierarchies name every concept)"
                )

    def as_interface(self) -> QueryInterface:
        """The hierarchy viewed as a query interface (leaves = fields)."""
        return QueryInterface(self.name, self.root, domain="hierarchy")

    def concepts(self) -> list[str]:
        """Leaf-concept labels, in order."""
        return [leaf.label for leaf in self.root.leaves()]


@dataclass
class IntegratedHierarchy:
    """The merged, labeled taxonomy plus the naming diagnostics."""

    root: SchemaNode
    labeling: LabelingResult
    mapping: Mapping

    def pretty(self) -> str:
        return self.root.pretty()

    @property
    def classification(self) -> str:
        return self.labeling.classification.value


def integrate_hierarchies(
    hierarchies: list[ConceptHierarchy],
    mapping: Mapping | None = None,
    comparator: SemanticComparator | None = None,
    options: NamingOptions | None = None,
) -> IntegratedHierarchy:
    """Merge and label several concept hierarchies.

    ``mapping`` — correspondences between equivalent leaf concepts; when
    omitted it is recovered from the concept names with the Definition-1
    matcher (taxonomy leaves are always labeled, so this works far better
    than for sparse query interfaces).

    Returns the labeled integrated taxonomy.  Instance-based rules (LI6 and
    LI7) are disabled by default — taxonomy concepts carry no instances —
    unless the caller passes explicit ``options``.
    """
    comparator = comparator or SemanticComparator()
    for hierarchy in hierarchies:
        hierarchy.validate_labels()
    interfaces = [h.as_interface() for h in hierarchies]
    if mapping is None:
        mapping = match_interfaces(interfaces, comparator)
    mapping.expand_one_to_many(interfaces)
    root = merge_interfaces(interfaces, mapping)
    if options is None:
        options = NamingOptions(use_instances=False)
    labeling = label_integrated_interface(
        root, interfaces, mapping, comparator, options=options, domain="hierarchy"
    )
    return IntegratedHierarchy(root=root, labeling=labeling, mapping=mapping)
