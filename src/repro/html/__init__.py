"""HTML adapter: extract query interfaces from forms, render labeled trees."""

from .parser import FormParseError, parse_form, parse_forms
from .render import render_form, render_node

__all__ = [
    "FormParseError",
    "parse_form",
    "parse_forms",
    "render_form",
    "render_node",
]
