"""HTML form extraction — turning real search forms into schema trees.

The larger system the paper belongs to (its Section 2) starts by
identifying and extracting query interfaces from web pages ([11, 26]); the
conclusion proposes applying the naming framework to HTML forms directly.
This module provides that substrate: a best-effort parser from HTML to
:class:`QueryInterface`, built on the standard library's ``html.parser``
(no third-party dependencies, per the reproduction environment).

Recognized structure
--------------------
* ``<form>`` — the interface root (the first form on the page by default);
* ``<fieldset>`` with an optional ``<legend>`` — an internal (group) node
  labeled by the legend, arbitrarily nested;
* ``<input type=text|search|number>`` — a text-box field;
* ``<input type=checkbox>`` / ``type=radio`` — checkbox/radio fields;
  radio buttons sharing a ``name`` collapse into one field whose instances
  are the option values/labels;
* ``<select>`` — a selection-list field whose ``<option>`` texts become
  the field's instances;
* labels come from ``<label for=ID>``, from a ``<label>`` wrapping the
  control, or — like real deep-web extractors — from the text immediately
  preceding the control.

This is deliberately a *best-effort* extractor (the paper's cited ones are
full research systems); it handles the well-formed forms the rest of this
library emits and typical hand-written search forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser

from ..schema.interface import FieldKind, QueryInterface
from ..schema.tree import SchemaNode

__all__ = ["parse_form", "parse_forms", "FormParseError"]

_TEXT_KINDS = {"text", "search", "number", "email", "tel", "date", ""}


class FormParseError(ValueError):
    """Raised when the document contains no parsable form."""


@dataclass
class _PendingField:
    """A form control collected during parsing, before label resolution."""

    kind: FieldKind
    name: str
    control_id: str | None
    preceding_text: str
    wrapped_label: str | None = None
    instances: list[str] = field(default_factory=list)


@dataclass
class _Section:
    """A fieldset (or the form itself) being assembled."""

    legend: str | None = None
    children: list = field(default_factory=list)  # _Section | _PendingField
    in_legend: bool = False


class _FormHTMLParser(HTMLParser):
    """Event-driven extraction of forms, fieldsets and controls."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self.forms: list[_Section] = []
        self._stack: list[_Section] = []
        self._text_buffer: list[str] = []
        self._current_select: _PendingField | None = None
        self._in_option = False
        self._option_text: list[str] = []
        self._label_for: str | None = None
        self._label_text: list[str] = []
        self._labels_by_id: dict[str, str] = {}
        self._open_label_field: _PendingField | None = None
        self._radio_groups: dict[str, _PendingField] = {}
        self._counter = 0

    # ------------------------------------------------------------------

    def _flush_text(self) -> str:
        text = " ".join("".join(self._text_buffer).split())
        self._text_buffer = []
        return text

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    @property
    def _section(self) -> _Section | None:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------

    def handle_starttag(self, tag, attrs):
        attrs = dict(attrs)
        if tag == "form":
            form = _Section()
            self.forms.append(form)
            self._stack = [form]
            self._text_buffer = []
        elif not self._stack:
            return
        elif tag == "fieldset":
            section = _Section()
            self._section.children.append(section)
            self._stack.append(section)
            self._text_buffer = []
        elif tag == "legend":
            self._section.in_legend = True
            self._text_buffer = []
        elif tag == "label":
            self._label_for = attrs.get("for")
            self._label_text = []
        elif tag == "select":
            pending = _PendingField(
                kind=FieldKind.SELECTION_LIST,
                name=attrs.get("name") or self._fresh_name("select"),
                control_id=attrs.get("id"),
                preceding_text=self._flush_text(),
            )
            self._attach_control(pending)
            self._current_select = pending
        elif tag == "option":
            self._in_option = True
            self._option_text = []
        elif tag == "input":
            self._handle_input(attrs)
        elif tag == "textarea":
            pending = _PendingField(
                kind=FieldKind.TEXT_BOX,
                name=attrs.get("name") or self._fresh_name("textarea"),
                control_id=attrs.get("id"),
                preceding_text=self._flush_text(),
            )
            self._attach_control(pending)

    def _handle_input(self, attrs: dict) -> None:
        input_type = (attrs.get("type") or "text").lower()
        if input_type in ("submit", "reset", "button", "hidden", "image"):
            return
        name = attrs.get("name") or self._fresh_name("input")
        if input_type == "radio":
            group = self._radio_groups.get(name)
            if group is not None:
                if attrs.get("value"):
                    group.instances.append(attrs["value"])
                return
            pending = _PendingField(
                kind=FieldKind.RADIO_BUTTON,
                name=name,
                control_id=attrs.get("id"),
                preceding_text=self._flush_text(),
            )
            if attrs.get("value"):
                pending.instances.append(attrs["value"])
            self._radio_groups[name] = pending
            self._attach_control(pending)
            return
        kind = FieldKind.CHECKBOX if input_type == "checkbox" else FieldKind.TEXT_BOX
        if input_type not in _TEXT_KINDS and input_type != "checkbox":
            kind = FieldKind.TEXT_BOX
        pending = _PendingField(
            kind=kind,
            name=name,
            control_id=attrs.get("id"),
            preceding_text=self._flush_text(),
        )
        self._attach_control(pending)

    def _attach_control(self, pending: _PendingField) -> None:
        if self._section is None:
            return
        self._section.children.append(pending)
        if self._label_for is None and self._label_text is not None and self._open_label_field is None:
            # Inside a wrapping <label>: remember the field so the label's
            # text (collected so far plus what follows) can be attached.
            if self._inside_label:
                self._open_label_field = pending

    # ------------------------------------------------------------------

    _inside_label = False

    def handle_endtag(self, tag):
        if not self._stack:
            return
        if tag == "form":
            self._stack = []
        elif tag == "fieldset" and len(self._stack) > 1:
            self._stack.pop()
            self._text_buffer = []
        elif tag == "legend":
            if self._section is not None:
                self._section.legend = self._flush_text() or None
                self._section.in_legend = False
        elif tag == "label":
            text = " ".join("".join(self._label_text).split())
            if self._label_for:
                self._labels_by_id[self._label_for] = text
            elif self._open_label_field is not None:
                self._open_label_field.wrapped_label = text
            self._label_for = None
            self._label_text = []
            self._open_label_field = None
            self._inside_label = False
        elif tag == "option":
            if self._current_select is not None:
                value = " ".join("".join(self._option_text).split())
                if value:
                    self._current_select.instances.append(value)
            self._in_option = False
        elif tag == "select":
            self._current_select = None

    def handle_startendtag(self, tag, attrs):
        self.handle_starttag(tag, attrs)

    def handle_data(self, data):
        if not self._stack:
            return
        if self._in_option:
            self._option_text.append(data)
        elif self._label_for is not None or self._inside_label:
            self._label_text.append(data)
        else:
            self._text_buffer.append(data)

    # html.parser calls handle_starttag for <label> before data; track state.
    def updatepos(self, i, j):  # pragma: no cover - positional bookkeeping
        return super().updatepos(i, j)


def _resolve_label(pending: _PendingField, labels_by_id: dict[str, str]) -> str | None:
    if pending.control_id and pending.control_id in labels_by_id:
        return labels_by_id[pending.control_id] or None
    if pending.wrapped_label:
        return pending.wrapped_label
    return pending.preceding_text or None


def _build_tree(
    section: _Section,
    labels_by_id: dict[str, str],
    prefix: str,
    counter: list,
) -> SchemaNode:
    children = []
    for child in section.children:
        if isinstance(child, _Section):
            children.append(_build_tree(child, labels_by_id, prefix, counter))
        else:
            counter[0] += 1
            children.append(
                SchemaNode(
                    _resolve_label(child, labels_by_id),
                    kind=child.kind,
                    instances=tuple(child.instances),
                    name=f"{prefix}:{child.name}:{counter[0]}",
                )
            )
    counter[0] += 1
    return SchemaNode(
        section.legend, children, name=f"{prefix}:section:{counter[0]}"
    )


def parse_forms(html: str, name_prefix: str = "form") -> list[QueryInterface]:
    """All forms in ``html`` as :class:`QueryInterface` objects."""
    parser = _FormHTMLParser()
    # Track wrapping <label>text<input></label>: html.parser gives us tags
    # in order, so flip the flag around label tags.
    original_start = parser.handle_starttag

    def patched_start(tag, attrs):
        if tag == "label" and dict(attrs).get("for") is None:
            parser._inside_label = True
        original_start(tag, attrs)

    parser.handle_starttag = patched_start
    parser.feed(html)
    parser.close()

    interfaces = []
    for index, form in enumerate(parser.forms):
        counter = [0]
        prefix = f"{name_prefix}-{index}"
        root = _build_tree(form, parser._labels_by_id, prefix, counter)
        root.label = None  # the form element itself carries no label
        if not root.children:
            continue  # a form with no usable controls
        interfaces.append(QueryInterface(prefix, root))
    return interfaces


def parse_form(html: str, name: str = "form") -> QueryInterface:
    """The first non-empty form in ``html`` (raises FormParseError if none)."""
    interfaces = parse_forms(html, name_prefix=name)
    if not interfaces:
        raise FormParseError("document contains no form with fields")
    interface = interfaces[0]
    interface.name = name
    return interface
