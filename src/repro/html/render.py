"""Rendering a labeled integrated interface back to HTML.

The point of the paper is a *well-designed* integrated query interface —
something a user fills in.  This renderer materializes the labeled schema
tree as a plain HTML form: groups become ``<fieldset>``/``<legend>``
sections, fields become the appropriate controls with ``<label>`` elements,
and selection lists/radio groups carry their computed instance domains.

Round-trip property: ``parse_form(render_form(tree))`` reconstructs the
same tree shape and labels (tested in ``tests/test_html.py``).
"""

from __future__ import annotations

from html import escape

from ..schema.tree import FieldKind, SchemaNode

__all__ = ["render_form", "render_node"]

_INDENT = "  "


def _control(node: SchemaNode, field_id: str, depth: int) -> list[str]:
    pad = _INDENT * depth
    lines = []
    label = node.label or ""
    if label:
        lines.append(f'{pad}<label for="{field_id}">{escape(label)}</label>')
    kind = node.kind or FieldKind.TEXT_BOX
    if kind is FieldKind.SELECTION_LIST:
        lines.append(f'{pad}<select id="{field_id}" name="{field_id}">')
        for value in node.instances:
            lines.append(f"{pad}{_INDENT}<option>{escape(value)}</option>")
        lines.append(f"{pad}</select>")
    elif kind is FieldKind.RADIO_BUTTON:
        if node.instances:
            for i, value in enumerate(node.instances):
                # The first option reuses the field id so <label for=...>
                # resolves on re-parse (round-trip property).
                option_id = field_id if i == 0 else f"{field_id}-{i}"
                lines.append(
                    f'{pad}<input type="radio" id="{option_id}" '
                    f'name="{field_id}" value="{escape(value)}"> '
                    f"{escape(value)}"
                )
        else:
            lines.append(
                f'{pad}<input type="radio" id="{field_id}" name="{field_id}">'
            )
    elif kind is FieldKind.CHECKBOX:
        lines.append(
            f'{pad}<input type="checkbox" id="{field_id}" name="{field_id}">'
        )
    else:
        lines.append(
            f'{pad}<input type="text" id="{field_id}" name="{field_id}">'
        )
    return lines


def render_node(node: SchemaNode, depth: int = 1, counter: list | None = None) -> list[str]:
    """Render one subtree as HTML lines (fieldsets for internal nodes)."""
    if counter is None:
        counter = [0]
    pad = _INDENT * depth
    if node.is_leaf:
        counter[0] += 1
        return _control(node, f"f{counter[0]}", depth)
    lines = [f"{pad}<fieldset>"]
    if node.is_labeled:
        lines.append(f"{pad}{_INDENT}<legend>{escape(node.label)}</legend>")
    for child in node.children:
        lines.extend(render_node(child, depth + 1, counter))
    lines.append(f"{pad}</fieldset>")
    return lines


def render_form(root: SchemaNode, title: str = "Integrated Query Interface") -> str:
    """The full HTML document for a labeled integrated schema tree."""
    counter = [0]
    body: list[str] = []
    for child in root.children:
        body.extend(render_node(child, 2, counter))
    lines = [
        "<!DOCTYPE html>",
        "<html>",
        f"<head><title>{escape(title)}</title></head>",
        "<body>",
        f"<h1>{escape(title)}</h1>",
        "<form>",
        *body,
        f'{_INDENT}<input type="submit" value="Search">',
        "</form>",
        "</body>",
        "</html>",
    ]
    return "\n".join(lines)
