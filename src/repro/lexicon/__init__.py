"""Lexical substrate: Porter stemmer, MiniWordNet, label normalization.

This package stands in for the external linguistic resources the paper uses
(WordNet [9] and the Porter stemmer [19]); see DESIGN.md section 2 for the
substitution rationale.
"""

from .compiled import (
    CompiledLexicon,
    ImmutableLexiconError,
    compile_lexicon,
    default_compiled,
    lexicon_fingerprint,
)
from .data import build_default_wordnet, default_wordnet
from .io import load_wordnet, save_wordnet_data, wordnet_from_dict
from .morphology import base_form
from .normalize import Token, content_tokens, display_form, tokenize
from .porter import PorterStemmer, stem
from .stopwords import STOP_WORDS, is_stop_word
from .wordnet import MiniWordNet, Synset

__all__ = [
    "CompiledLexicon",
    "ImmutableLexiconError",
    "MiniWordNet",
    "PorterStemmer",
    "compile_lexicon",
    "default_compiled",
    "lexicon_fingerprint",
    "STOP_WORDS",
    "Synset",
    "Token",
    "base_form",
    "build_default_wordnet",
    "content_tokens",
    "default_wordnet",
    "display_form",
    "is_stop_word",
    "load_wordnet",
    "save_wordnet_data",
    "stem",
    "wordnet_from_dict",
    "tokenize",
]
