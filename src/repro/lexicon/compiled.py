"""CompiledLexicon: a :class:`MiniWordNet` frozen into O(1) query tables.

The dynamic lexicon answers synonymy/hypernymy with memoised graph walks —
fine for a single process, but the memos start cold in every worker the
process-parallel batch backend spawns, and the walk itself is the hot
inner loop of the Definition-1 predicates.  Compilation trades the dynamic
structure for immutable tables computed once:

* ``lemma -> synset-id bitmask`` — synonymy is one dict lookup per lemma
  plus a bitwise AND (shared bit = shared synset);
* ``lemma -> ancestor bitmask`` — the transitive hypernym closure of every
  synset, precomputed as a Python int whose bit *i* marks synset *i*;
  ``is_hypernym`` and ``share_hypernym`` are likewise one AND each;
* a precomputed base-form map covering the whole compiled vocabulary (and
  the irregular-form table), so ``lemma_base`` on corpus tokens is a dict
  hit; unknown tokens still run morphy against the compiled vocabulary and
  land in a bounded runtime memo.

A compiled lexicon is **immutable** — mutation raises
:class:`ImmutableLexiconError` and :attr:`version` never moves, so
downstream caches (label analyzer, semantic comparator) never invalidate.
It is cheaply **picklable** (plain dicts of strings and ints; runtime memos
are dropped from the pickle), which is what lets the process-pool backend
ship one instance per worker via the pool initializer instead of rebuilding
or re-deriving anything per task.  :attr:`fingerprint` is a SHA-256 over
the canonical synset/edge content, used by the disk cache's engine key.

Equivalence with the dynamic lexicon is part of the contract:
``tests/test_compiled_lexicon.py`` property-tests every query against
:class:`MiniWordNet` over the full curated vocabulary.
"""

from __future__ import annotations

import hashlib
import json
import threading

from ..perf import CacheCounter
from ..resilience.faults import maybe_inject
from .morphology import IRREGULAR_FORMS, base_form
from .wordnet import MEMO_LIMIT, MiniWordNet, Synset

__all__ = [
    "CompiledLexicon",
    "ImmutableLexiconError",
    "compile_lexicon",
    "default_compiled",
    "lexicon_fingerprint",
]


class ImmutableLexiconError(TypeError):
    """Raised when code tries to mutate a :class:`CompiledLexicon`."""


def _canonical_data(wordnet: MiniWordNet) -> dict:
    """The lexicon's content in a canonical, order-independent form.

    Synsets are sorted lemma lists, themselves sorted; hypernym edges are
    ``[general-synset, specific-synset]`` pairs in that same canonical
    form.  Two lexicons built from the same facts in any order map to the
    same document, hence the same fingerprint.
    """
    synsets, edges = wordnet.export_data()
    return {
        "synsets": sorted(sorted(lemmas) for lemmas in synsets),
        "hypernyms": sorted(
            [sorted(general), sorted(specific)] for general, specific in edges
        ),
    }


def lexicon_fingerprint(wordnet) -> str:
    """SHA-256 content fingerprint of any lexicon (dynamic or compiled)."""
    if isinstance(wordnet, CompiledLexicon):
        return wordnet.fingerprint
    canonical = json.dumps(
        _canonical_data(wordnet), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CompiledLexicon:
    """An immutable, picklable, O(1)-query snapshot of a lexical database.

    Implements the exact query surface the labeling stack uses
    (``lemma_base`` / ``are_synonyms`` / ``is_hypernym`` /
    ``share_hypernym`` / ``is_known`` / ``synsets_of``) with answers
    identical to the :class:`MiniWordNet` it was compiled from.  Build via
    :func:`compile_lexicon`, never directly.
    """

    #: Immutable: the stamp downstream caches watch never moves.
    version = 0

    def __init__(
        self,
        synsets: tuple[frozenset[str], ...],
        sid_ancestor_masks: tuple[int, ...],
        lemma_sids: dict[str, tuple[int, ...]],
        lemma_sid_mask: dict[str, int],
        lemma_ancestor_mask: dict[str, int],
        base_map: dict[str, str],
        fingerprint: str,
    ) -> None:
        self._synsets = synsets
        self._sid_ancestor_masks = sid_ancestor_masks
        self._lemma_sids = lemma_sids
        self._lemma_sid_mask = lemma_sid_mask
        self._lemma_ancestor_mask = lemma_ancestor_mask
        self._base_map = base_map
        self.fingerprint = fingerprint
        self._init_runtime()

    def _init_runtime(self) -> None:
        """Runtime-only state: memo for out-of-vocabulary tokens, counters."""
        self._base_cache: dict[str, str] = {}
        self._base_counter = CacheCounter("wordnet.base_form")
        self._relation_counter = CacheCounter("wordnet.relations")

    # ------------------------------------------------------------------
    # Pickling: ship the tables, drop the runtime memo and counters.
    # ------------------------------------------------------------------

    def __getstate__(self) -> dict:
        return {
            "synsets": self._synsets,
            "sid_ancestor_masks": self._sid_ancestor_masks,
            "lemma_sids": self._lemma_sids,
            "lemma_sid_mask": self._lemma_sid_mask,
            "lemma_ancestor_mask": self._lemma_ancestor_mask,
            "base_map": self._base_map,
            "fingerprint": self.fingerprint,
        }

    def __setstate__(self, state: dict) -> None:
        self._synsets = state["synsets"]
        self._sid_ancestor_masks = state["sid_ancestor_masks"]
        self._lemma_sids = state["lemma_sids"]
        self._lemma_sid_mask = state["lemma_sid_mask"]
        self._lemma_ancestor_mask = state["lemma_ancestor_mask"]
        self._base_map = state["base_map"]
        self.fingerprint = state["fingerprint"]
        self._init_runtime()

    # ------------------------------------------------------------------
    # Immutability.
    # ------------------------------------------------------------------

    def _immutable(self, operation: str):
        raise ImmutableLexiconError(
            f"CompiledLexicon is immutable ({operation}); use thaw() to get "
            "a mutable MiniWordNet copy"
        )

    def add_synset(self, lemmas):
        self._immutable("add_synset")

    def add_hypernym(self, general, specific):
        self._immutable("add_hypernym")

    def load(self, synsets, hypernym_pairs=()):
        self._immutable("load")

    def thaw(self) -> MiniWordNet:
        """A mutable :class:`MiniWordNet` answering identically.

        Hypernymy is only ever queried transitively, so replaying each
        synset's ancestor *closure* as direct edges preserves every query
        result.
        """
        wordnet = MiniWordNet()
        for lemmas in self._synsets:
            wordnet.add_synset(lemmas)
        for sid, ancestors in enumerate(self._sid_ancestor_masks):
            for general in _bits_of(ancestors):
                wordnet.add_hypernym(general, sid)
        return wordnet

    # ------------------------------------------------------------------
    # Vocabulary.
    # ------------------------------------------------------------------

    def is_known(self, word: str) -> bool:
        """True when ``word`` (as given, lowercased) is some synset's lemma."""
        return word.lower().strip() in self._lemma_sids

    def lemma_base(self, token: str) -> str:
        """Morphy against the compiled vocabulary — precomputed for every
        known lemma and irregular form, memoised (bounded) for the rest."""
        cached = self._base_map.get(token)
        if cached is not None:
            self._base_counter.hit()
            return cached
        cached = self._base_cache.get(token)
        if cached is not None:
            self._base_counter.hit()
            return cached
        self._base_counter.miss()
        maybe_inject("lexicon.query")
        result = base_form(token, self.is_known)
        if len(self._base_cache) >= MEMO_LIMIT:
            self._base_counter.evict(len(self._base_cache))
            self._base_cache.clear()
        self._base_cache[token] = result
        return result

    def synsets_of(self, word: str) -> tuple[Synset, ...]:
        """All synsets whose lemma set contains the base form of ``word``."""
        lemma = self.lemma_base(word)
        return tuple(
            Synset(sid, self._synsets[sid])
            for sid in self._lemma_sids.get(lemma, ())
        )

    def vocabulary(self) -> tuple[str, ...]:
        """Every known lemma, sorted (the compile-time snapshot)."""
        return tuple(sorted(self._lemma_sids))

    def __len__(self) -> int:
        return len(self._synsets)

    def __contains__(self, word: str) -> bool:
        return self.lemma_base(word) in self._lemma_sids

    # ------------------------------------------------------------------
    # Queries used by Definition 1 — each one dict hit + bitwise AND.
    # ------------------------------------------------------------------

    def are_synonyms(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` are distinct words sharing a synset."""
        self._relation_counter.hit()
        la, lb = self.lemma_base(a), self.lemma_base(b)
        if la == lb:
            return False
        mask_a = self._lemma_sid_mask.get(la)
        if not mask_a:
            return False
        mask_b = self._lemma_sid_mask.get(lb)
        return bool(mask_b) and bool(mask_a & mask_b)

    def is_hypernym(self, general: str, specific: str) -> bool:
        """True when ``general`` is a (transitive) hypernym of ``specific``."""
        self._relation_counter.hit()
        lg, ls = self.lemma_base(general), self.lemma_base(specific)
        if lg == ls:
            return False
        mask_g = self._lemma_sid_mask.get(lg)
        if not mask_g:
            return False
        ancestors_s = self._lemma_ancestor_mask.get(ls)
        if ancestors_s is None:
            return False
        return bool(mask_g & ancestors_s)

    def share_hypernym(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` have a common (transitive) hypernym."""
        self._relation_counter.hit()
        ancestors_a = self._lemma_ancestor_mask.get(self.lemma_base(a))
        if not ancestors_a:
            return False
        ancestors_b = self._lemma_ancestor_mask.get(self.lemma_base(b))
        return bool(ancestors_b) and bool(ancestors_a & ancestors_b)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def cache_stats(self) -> dict:
        """JSON-ready counters, shaped like :meth:`MiniWordNet.cache_stats`.

        Relations report every query as a hit — compiled queries *are* the
        precomputed table; there is nothing to miss into.
        """
        return {
            "base_form": {
                **self._base_counter.snapshot(),
                "size": len(self._base_map) + len(self._base_cache),
            },
            "relations": {
                **self._relation_counter.snapshot(),
                "size": len(self._lemma_sid_mask),
            },
            "ancestors": {"size": len(self._lemma_ancestor_mask)},
            "version": self.version,
            "compiled": True,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledLexicon({len(self._synsets)} synsets, "
            f"{len(self._lemma_sids)} lemmas, {self.fingerprint[:12]}...)"
        )


def _bits_of(mask: int) -> list[int]:
    """Bit positions set in ``mask`` (ancestor synset ids)."""
    out = []
    sid = 0
    while mask:
        if mask & 1:
            out.append(sid)
        mask >>= 1
        sid += 1
    return out


def compile_lexicon(wordnet: MiniWordNet) -> CompiledLexicon:
    """Freeze ``wordnet`` into a :class:`CompiledLexicon`.

    Precomputes, in one pass over the database:

    * the per-lemma synset-id bitmask (synonymy table);
    * the per-lemma ancestor bitmask — the union of the transitive
      hypernym closures of the lemma's synsets (hypernymy/co-hyponymy
      table);
    * the base-form map over the full vocabulary plus the irregular-form
      table, each entry produced by the same morphy loop the dynamic
      lexicon runs.
    """
    if isinstance(wordnet, CompiledLexicon):
        return wordnet
    synsets, sid_ancestors, lemma_sids = wordnet.export_tables()

    lemma_sid_mask: dict[str, int] = {}
    lemma_ancestor_mask: dict[str, int] = {}
    ancestor_masks = [
        _mask_of(ancestors) for ancestors in sid_ancestors
    ]
    for lemma, sids in lemma_sids.items():
        sid_mask = _mask_of(sids)
        anc_mask = 0
        for sid in sids:
            anc_mask |= ancestor_masks[sid]
        lemma_sid_mask[lemma] = sid_mask
        lemma_ancestor_mask[lemma] = anc_mask

    base_map: dict[str, str] = {}
    is_known = lemma_sids.__contains__
    for lemma in lemma_sids:
        base_map[lemma] = base_form(lemma, is_known)
    for inflected in IRREGULAR_FORMS:
        base_map.setdefault(inflected, base_form(inflected, is_known))

    return CompiledLexicon(
        synsets=tuple(synsets),
        sid_ancestor_masks=tuple(ancestor_masks),
        lemma_sids={
            lemma: tuple(sorted(sids)) for lemma, sids in lemma_sids.items()
        },
        lemma_sid_mask=lemma_sid_mask,
        lemma_ancestor_mask=lemma_ancestor_mask,
        base_map=base_map,
        fingerprint=lexicon_fingerprint(wordnet),
    )


def _mask_of(ids) -> int:
    mask = 0
    for sid in ids:
        mask |= 1 << sid
    return mask


_DEFAULT: CompiledLexicon | None = None
_DEFAULT_LOCK = threading.Lock()


def default_compiled() -> CompiledLexicon:
    """The compiled form of the built-in curated lexicon (cached singleton).

    Safe to share across threads (immutable) and cheap to ship to process
    workers (pickled once per worker by the pool initializer).
    """
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                from .data import build_default_wordnet

                _DEFAULT = compile_lexicon(build_default_wordnet())
    return _DEFAULT
