"""Loading and saving lexicon data — user-extensible vocabularies.

The curated data in :mod:`repro.lexicon.data` covers the paper's seven
evaluation domains.  Users applying the library to new domains (course
search, medical forms, …) extend the lexicon with their own synonym sets
and hypernym edges; this module gives that a durable JSON form:

.. code-block:: json

    {
      "synsets": [["course", "class"], ["instructor", "teacher"]],
      "hypernyms": [["person", "instructor"]]
    }

``load_wordnet(path, extend_default=True)`` merges a file on top of the
built-in data; ``save_wordnet_data`` writes the built-in data out as a
starting point to edit.
"""

from __future__ import annotations

import json
from pathlib import Path

from .data import HYPERNYMS, SYNSETS, build_default_wordnet
from .wordnet import MiniWordNet

__all__ = ["load_wordnet", "save_wordnet_data", "wordnet_from_dict"]


def wordnet_from_dict(data: dict, extend_default: bool = True) -> MiniWordNet:
    """Build a lexicon from a ``{"synsets": ..., "hypernyms": ...}`` dict."""
    synsets = data.get("synsets", [])
    hypernyms = [tuple(pair) for pair in data.get("hypernyms", [])]
    for pair in hypernyms:
        if len(pair) != 2:
            raise ValueError(f"hypernym entries are pairs, got {pair!r}")
    wordnet = build_default_wordnet() if extend_default else MiniWordNet()
    wordnet.load(synsets, hypernyms)
    return wordnet


def load_wordnet(path: str | Path, extend_default: bool = True) -> MiniWordNet:
    """Read a lexicon JSON file (optionally merged over the built-in data)."""
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError("lexicon file must contain a JSON object")
    return wordnet_from_dict(data, extend_default=extend_default)


def save_wordnet_data(path: str | Path) -> None:
    """Write the built-in curated data as an editable JSON file."""
    document = {
        "synsets": [list(lemmas) for lemmas in SYNSETS],
        "hypernyms": [list(pair) for pair in HYPERNYMS],
    }
    Path(path).write_text(json.dumps(document, indent=2))
