"""Base-form (lemma) recovery, modeled on WordNet's *morphy* procedure.

Section 3.1 (step 4) of the paper retrieves "the base form of each token
using WordNet".  WordNet does this with a small table of irregular forms
(its ``.exc`` files) plus a list of detachment rules tried in order.  We
reproduce that design: :data:`IRREGULAR_FORMS` plays the role of the
exception files and :data:`_DETACHMENT_RULES` the rules of detachment.

Unlike a stemmer, morphy only returns a *real word*: a candidate produced by
a detachment rule is accepted only if the supplied vocabulary knows it (or no
vocabulary check is requested).
"""

from __future__ import annotations

from collections.abc import Callable, Container

__all__ = ["IRREGULAR_FORMS", "base_form"]

#: Irregular inflected form -> base form (WordNet ``exc``-file analog).
IRREGULAR_FORMS: dict[str, str] = {
    # Irregular noun plurals.
    "children": "child",
    "people": "person",
    "men": "man",
    "women": "woman",
    "feet": "foot",
    "teeth": "tooth",
    "mice": "mouse",
    "geese": "goose",
    "criteria": "criterion",
    "data": "datum",
    "media": "medium",
    "indices": "index",
    "matrices": "matrix",
    "analyses": "analysis",
    "axes": "axis",
    "buses": "bus",
    "addresses": "address",
    "businesses": "business",
    "classes": "class",
    "prices": "price",
    "services": "service",
    "preferences": "preference",
    "types": "type",
    "salaries": "salary",
    "cities": "city",
    "countries": "country",
    "companies": "company",
    "categories": "category",
    "industries": "industry",
    "agencies": "agency",
    "amenities": "amenity",
    "facilities": "facility",
    "properties": "property",
    "stories": "story",
    "bodies": "body",
    # Irregular verb forms common in interface labels.
    "went": "go",
    "gone": "go",
    "going": "go",
    "chosen": "choose",
    "chose": "choose",
    "preferred": "prefer",
    "left": "leave",
    "leaving": "leave",
    "departing": "depart",
    "arriving": "arrive",
    "returning": "return",
    "travelling": "travel",
    "traveling": "travel",
    "built": "build",
    "sold": "sell",
    "bought": "buy",
    "paid": "pay",
    "made": "make",
}

#: (suffix, replacement) detachment rules, tried in order (WordNet's rules).
_DETACHMENT_RULES: tuple[tuple[str, str], ...] = (
    # Nouns.
    ("ses", "s"),
    ("xes", "x"),
    ("zes", "z"),
    ("ches", "ch"),
    ("shes", "sh"),
    ("ies", "y"),
    ("s", ""),
    # Verbs.
    ("ies", "y"),
    ("es", "e"),
    ("es", ""),
    ("ed", "e"),
    ("ed", ""),
    ("ing", "e"),
    ("ing", ""),
    # Adjectives.
    ("er", ""),
    ("est", ""),
    ("er", "e"),
    ("est", "e"),
)


def base_form(
    token: str,
    is_known: Callable[[str], bool] | Container[str] | None = None,
) -> str:
    """Return the base (dictionary) form of ``token``.

    ``is_known`` — an optional vocabulary check: a callable or a container of
    known words.  When given, a detachment-rule candidate is only accepted if
    the vocabulary recognizes it, mirroring WordNet's morphy.  When omitted,
    the first rule that applies wins (still useful for display purposes).

    The irregular-form table is consulted first and bypasses the vocabulary
    check, just as WordNet's exception files do.
    """
    word = token.lower()
    if word in IRREGULAR_FORMS:
        return IRREGULAR_FORMS[word]

    if is_known is None:
        known = None
    elif callable(is_known):
        known = is_known
    else:
        container = is_known
        known = lambda w: w in container  # noqa: E731 - tiny adapter

    if known is not None and known(word):
        return word

    for suffix, replacement in _DETACHMENT_RULES:
        if not word.endswith(suffix) or len(word) <= len(suffix):
            continue
        candidate = word[: len(word) - len(suffix)] + replacement
        if len(candidate) < 2:
            continue
        if known is None or known(candidate):
            return candidate
    return word
