"""Label normalization — the two-step pre-processing of paper Section 3.1.

Step 1 (*display normalization*, :func:`display_form`)
    Remove attached comments — parenthesized or bracketed trailers such as
    ``Adults (18-64)`` -> ``Adults`` — replace every non-alphanumeric
    character with a space and collapse whitespace.  The result is what
    plain string comparison (Definition 1, *string equal*) operates on.

Step 2 (*content words*, :func:`content_tokens`)
    Tokenize, lowercase, recover the WordNet base form of each token, stem
    with Porter, and drop stop words.  The result is the set-of-content-words
    representation, e.g. ``Area of Study`` -> ``{area, study}`` and
    ``Do you have any preferences?`` -> ``{prefer}``.

A :class:`Token` keeps all three granularities (surface, lemma, stem);
token identity for set semantics is the *stem*, which is exactly what makes
``Preference`` and ``Preferred`` the same content word (both stem to
``prefer`` — the Table 4 example).

Labels whose tokens are all stop words (``From``, ``To``, ``Within``) keep
their tokens as content words: dropping them would make every such label
vacuously *equal* to every other, which is clearly not what Definition 1
intends for fields named ``From`` and ``To``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from .porter import stem as porter_stem
from .stopwords import STOP_WORDS
from .wordnet import MiniWordNet

__all__ = ["Token", "display_form", "tokenize", "content_tokens"]

_COMMENT_RE = re.compile(r"\([^)]*\)|\[[^\]]*\]|\{[^}]*\}")
_NON_ALNUM_RE = re.compile(r"[^0-9a-zA-Z]+")


@dataclass(frozen=True)
class Token:
    """One content word of a label at three granularities.

    ``surface``
        the lowercased token as it appears in the label;
    ``lemma``
        its base form (morphy against the lexicon vocabulary);
    ``stem``
        the Porter stem of the lemma — the identity used for set semantics.
    """

    surface: str
    lemma: str
    stem: str

    def __eq__(self, other) -> bool:
        if not isinstance(other, Token):
            return NotImplemented
        return self.stem == other.stem

    def __hash__(self) -> int:
        return hash(self.stem)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.surface!r}->{self.stem!r})"


def display_form(label: str) -> str:
    """Step-1 normalization: strip comments and non-alphanumerics.

    >>> display_form("Adults (18-64)")
    'Adults'
    >>> display_form("Price $")
    'Price'
    """
    without_comments = _COMMENT_RE.sub(" ", label)
    spaced = _NON_ALNUM_RE.sub(" ", without_comments)
    return " ".join(spaced.split())


def tokenize(label: str) -> list[str]:
    """Split the step-1 form of ``label`` into lowercase word tokens."""
    return display_form(label).lower().split()


def _make_token(word: str, wordnet: MiniWordNet | None) -> Token:
    if wordnet is not None:
        lemma = wordnet.lemma_base(word)
    else:
        from .morphology import base_form

        lemma = base_form(word)
    return Token(surface=word, lemma=lemma, stem=porter_stem(lemma))


def content_tokens(label: str, wordnet: MiniWordNet | None = None) -> tuple[Token, ...]:
    """Step-2 normalization: the content-word tokens of ``label``.

    Returns the tokens in label order with duplicates (by stem) removed.
    Falls back to the full token list when stop-word removal would leave
    nothing (see module docstring).
    """
    words = tokenize(label)
    content = [w for w in words if w not in STOP_WORDS]
    if not content:
        content = words
    seen: set[str] = set()
    result: list[Token] = []
    for word in content:
        token = _make_token(word, wordnet)
        if token.stem in seen:
            continue
        seen.add(token.stem)
        result.append(token)
    return tuple(result)
