"""Porter stemming algorithm, implemented from the original 1980 paper.

M.F. Porter, "An algorithm for suffix stripping", *Program* 14(3), 1980.
The labeling paper (Section 3.1, step 3) stems every token of a label with
"the standard Porter stemming algorithm [19]" before semantic comparison —
e.g. ``Preference`` and ``Preferred`` both stem to ``prefer``, which is what
makes *Preferred Airline* and *Airline Preference* equality-level consistent
(Table 4 of the paper).

This is a faithful from-scratch implementation (NLTK is unavailable in the
reproduction environment).  The public entry point is :func:`stem`.
"""

from __future__ import annotations

__all__ = ["stem", "PorterStemmer"]

_VOWELS = frozenset("aeiou")


class PorterStemmer:
    """Stateless implementation of the five Porter reduction steps.

    The class exists so callers can subclass / monkeypatch individual steps in
    experiments; everyday use goes through the module-level :func:`stem`.
    """

    # ------------------------------------------------------------------
    # Measure and shape predicates on the *stem* part of a word.
    # ------------------------------------------------------------------

    def _is_consonant(self, word: str, i: int) -> bool:
        """Return True if ``word[i]`` acts as a consonant (Porter's rules).

        ``y`` is a consonant when at the start of the word or after a vowel.
        """
        ch = word[i]
        if ch in _VOWELS:
            return False
        if ch == "y":
            return i == 0 or not self._is_consonant(word, i - 1)
        return True

    def measure(self, stem_part: str) -> int:
        """Porter's *m*: the number of VC sequences in ``stem_part``.

        A word has the form ``[C](VC)^m[V]`` where C/V are maximal runs of
        consonants/vowels.
        """
        m = 0
        i = 0
        n = len(stem_part)
        # Skip initial consonant run.
        while i < n and self._is_consonant(stem_part, i):
            i += 1
        while i < n:
            # Vowel run.
            while i < n and not self._is_consonant(stem_part, i):
                i += 1
            if i >= n:
                break
            # Consonant run -> one full VC sequence.
            while i < n and self._is_consonant(stem_part, i):
                i += 1
            m += 1
        return m

    def _contains_vowel(self, stem_part: str) -> bool:
        return any(not self._is_consonant(stem_part, i) for i in range(len(stem_part)))

    def _ends_double_consonant(self, word: str) -> bool:
        return (
            len(word) >= 2
            and word[-1] == word[-2]
            and self._is_consonant(word, len(word) - 1)
        )

    def _ends_cvc(self, word: str) -> bool:
        """*o* condition: stem ends consonant-vowel-consonant, last not w/x/y."""
        if len(word) < 3:
            return False
        return (
            self._is_consonant(word, len(word) - 3)
            and not self._is_consonant(word, len(word) - 2)
            and self._is_consonant(word, len(word) - 1)
            and word[-1] not in "wxy"
        )

    # ------------------------------------------------------------------
    # Rule application helper.
    # ------------------------------------------------------------------

    def _replace(self, word: str, suffix: str, replacement: str, m_min: int) -> str | None:
        """If ``word`` ends with ``suffix`` and the stem measure is > m_min,
        return the word with the suffix replaced; otherwise None (no match)
        or the word unchanged wrapped as no-op is signalled by returning word.
        """
        if not word.endswith(suffix):
            return None
        stem_part = word[: len(word) - len(suffix)]
        if self.measure(stem_part) > m_min:
            return stem_part + replacement
        return word  # suffix matched but condition failed: stop rule scanning

    # ------------------------------------------------------------------
    # The five steps.
    # ------------------------------------------------------------------

    def _step1a(self, word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem_part = word[:-3]
            if self.measure(stem_part) > 0:
                return word[:-1]
            return word
        matched = False
        if word.endswith("ed"):
            stem_part = word[:-2]
            if self._contains_vowel(stem_part):
                word = stem_part
                matched = True
        elif word.endswith("ing"):
            stem_part = word[:-3]
            if self._contains_vowel(stem_part):
                word = stem_part
                matched = True
        if matched:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if self._ends_double_consonant(word) and word[-1] not in "lsz":
                return word[:-1]
            if self.measure(word) == 1 and self._ends_cvc(word):
                return word + "e"
        return word

    def _step1c(self, word: str) -> str:
        if word.endswith("y") and self._contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    _STEP2_RULES = (
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    )

    _STEP3_RULES = (
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    )

    _STEP4_SUFFIXES = (
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    )

    def _apply_rule_list(self, word: str, rules, m_min: int) -> str:
        for suffix, replacement in rules:
            result = self._replace(word, suffix, replacement, m_min)
            if result is not None:
                return result
        return word

    def _step2(self, word: str) -> str:
        return self._apply_rule_list(word, self._STEP2_RULES, 0)

    def _step3(self, word: str) -> str:
        return self._apply_rule_list(word, self._STEP3_RULES, 0)

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem_part = word[: len(word) - len(suffix)]
                if self.measure(stem_part) > 1:
                    return stem_part
                return word
        if word.endswith("ion"):
            stem_part = word[:-3]
            if self.measure(stem_part) > 1 and stem_part and stem_part[-1] in "st":
                return stem_part
        return word

    def _step5a(self, word: str) -> str:
        if word.endswith("e"):
            stem_part = word[:-1]
            m = self.measure(stem_part)
            if m > 1 or (m == 1 and not self._ends_cvc(stem_part)):
                return stem_part
        return word

    def _step5b(self, word: str) -> str:
        if (
            self.measure(word) > 1
            and self._ends_double_consonant(word)
            and word.endswith("l")
        ):
            return word[:-1]
        return word

    # ------------------------------------------------------------------

    def stem(self, word: str) -> str:
        """Return the Porter stem of ``word`` (lowercased).

        Words of length <= 2 are returned unchanged, per the original paper.
        """
        word = word.lower()
        if len(word) <= 2:
            return word
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word


_DEFAULT = PorterStemmer()


def stem(word: str) -> str:
    """Stem ``word`` with the shared default :class:`PorterStemmer`."""
    return _DEFAULT.stem(word)
