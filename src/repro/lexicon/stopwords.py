"""English stop words used during label normalization (Section 3.1, step 4).

The list is the classic English function-word inventory (articles,
prepositions, pronouns, auxiliaries, question words) trimmed to what matters
for query-interface labels.  Removing them turns e.g.
``Do you have any preferences?`` into the content-word set ``{prefer}`` —
the exact example the paper works through in Section 5.1.2.
"""

from __future__ import annotations

__all__ = ["STOP_WORDS", "is_stop_word"]

STOP_WORDS = frozenset(
    """
    a about above after again all am an and any are aren as at be because
    been before being below between both but by could did do does doing down
    during each few for from further had has have having he her here hers
    herself him himself his how i if in into is it its itself just me more
    most my myself no nor not of off on once only or other our ours ourselves
    out over own please same she should so some such than that the their
    theirs them themselves then there these they this those through to too
    want wants many much need needs
    under until up very was we were what when where which while who whom why
    will with would you your yours yourself yourselves
    """.split()
)


def is_stop_word(token: str) -> bool:
    """Return True when the lowercased ``token`` is an English stop word."""
    return token.lower() in STOP_WORDS
