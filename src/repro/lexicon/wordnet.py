"""MiniWordNet: the lexical-database substrate standing in for WordNet [9].

The naming algorithm consults WordNet for exactly three things (paper,
Definition 1 and Section 3.1):

* whether two content words are **synonyms** (share a synset);
* whether word *a* is a **hypernym** of word *b* (a synset of *a* is an
  ancestor of a synset of *b* in the hypernymy DAG, transitively);
* the **base form** of a token (morphy).

This module provides those queries over an in-memory database of synsets and
hypernym edges.  The curated data that seeds the default instance lives in
:mod:`repro.lexicon.data`; tests and experiments may build their own
instances with extra vocabulary.

Design notes
------------
* A *synset* is a set of lemmas; a lemma may be a single word (``class``) or
  a collocation with spaces (``zip code``).  Lemmas are stored lowercase.
* Hypernymy is recorded between synsets and queried transitively.  The
  transitive closure is memoised per synset and invalidated on mutation.
* Queries accept inflected forms: each lookup first maps the word to its
  base form with :func:`repro.lexicon.morphology.base_form`, using the
  database itself as the vocabulary check — the same loop WordNet's morphy
  performs.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from .morphology import base_form

__all__ = ["Synset", "MiniWordNet"]


@dataclass(frozen=True)
class Synset:
    """A set of mutually synonymous lemmas, identified by ``sid``."""

    sid: int
    lemmas: frozenset[str]

    def __contains__(self, lemma: str) -> bool:
        return lemma in self.lemmas

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Synset({self.sid}, {{{', '.join(sorted(self.lemmas))}}})"


@dataclass
class MiniWordNet:
    """An in-memory lexical database with synonymy and hypernymy queries."""

    _synsets: list[Synset] = field(default_factory=list)
    _lemma_index: dict[str, set[int]] = field(default_factory=lambda: defaultdict(set))
    _hypernyms: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    _ancestor_cache: dict[int, frozenset[int]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_synset(self, lemmas) -> int:
        """Register a synset for ``lemmas`` and return its id.

        Lemmas are lowercased.  Registering the same frozenset twice returns
        the existing id rather than duplicating the synset.
        """
        normalized = frozenset(str(lemma).lower().strip() for lemma in lemmas)
        if not normalized:
            raise ValueError("a synset needs at least one lemma")
        for sid in self._lemma_index.get(next(iter(normalized)), ()):
            if self._synsets[sid].lemmas == normalized:
                return sid
        sid = len(self._synsets)
        self._synsets.append(Synset(sid, normalized))
        for lemma in normalized:
            self._lemma_index[lemma].add(sid)
        self._ancestor_cache.clear()
        return sid

    def add_hypernym(self, general, specific) -> None:
        """Record that ``general`` is a hypernym of ``specific``.

        Both arguments may be synset ids or lemmas.  A lemma that is not yet
        in the database gets a singleton synset; a lemma in several synsets
        links **all** of them (coarse, but safe for our curated data, which
        keeps domain senses in separate instances when it matters).
        """
        general_ids = self._resolve(general)
        specific_ids = self._resolve(specific)
        for gid in general_ids:
            for sid_ in specific_ids:
                if gid == sid_:
                    continue
                self._hypernyms[sid_].add(gid)
        self._ancestor_cache.clear()

    def _resolve(self, ref) -> set[int]:
        if isinstance(ref, int):
            if not 0 <= ref < len(self._synsets):
                raise KeyError(f"no synset with id {ref}")
            return {ref}
        lemma = str(ref).lower().strip()
        ids = self._lemma_index.get(lemma)
        if not ids:
            return {self.add_synset([lemma])}
        return set(ids)

    # ------------------------------------------------------------------
    # Vocabulary.
    # ------------------------------------------------------------------

    def is_known(self, word: str) -> bool:
        """True when ``word`` (as given, lowercased) is some synset's lemma."""
        return word.lower().strip() in self._lemma_index

    def lemma_base(self, token: str) -> str:
        """Morphy: base form of ``token`` validated against this vocabulary."""
        return base_form(token, self.is_known)

    def synsets_of(self, word: str) -> tuple[Synset, ...]:
        """All synsets whose lemma set contains the base form of ``word``."""
        lemma = self.lemma_base(word)
        return tuple(self._synsets[sid] for sid in sorted(self._lemma_index.get(lemma, ())))

    def __len__(self) -> int:
        return len(self._synsets)

    def __contains__(self, word: str) -> bool:
        return bool(self._lemma_index.get(self.lemma_base(word)))

    # ------------------------------------------------------------------
    # Queries used by Definition 1.
    # ------------------------------------------------------------------

    def are_synonyms(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` are distinct words sharing a synset."""
        la, lb = self.lemma_base(a), self.lemma_base(b)
        if la == lb:
            return False
        ids_a = self._lemma_index.get(la)
        ids_b = self._lemma_index.get(lb)
        if not ids_a or not ids_b:
            return False
        return not ids_a.isdisjoint(ids_b)

    def is_hypernym(self, general: str, specific: str) -> bool:
        """True when ``general`` is a (transitive) hypernym of ``specific``."""
        lg, ls = self.lemma_base(general), self.lemma_base(specific)
        if lg == ls:
            return False
        ids_g = self._lemma_index.get(lg)
        ids_s = self._lemma_index.get(ls)
        if not ids_g or not ids_s:
            return False
        for sid_ in ids_s:
            if not ids_g.isdisjoint(self._ancestors(sid_)):
                return True
        return False

    def share_hypernym(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` are co-hyponyms — they have a common
        (transitive) hypernym, like *adult* and *senior* under *person*.
        The weakest of the relatedness signals; used by the interface
        linter's horizontal-coherence check."""
        ids_a = self._lemma_index.get(self.lemma_base(a))
        ids_b = self._lemma_index.get(self.lemma_base(b))
        if not ids_a or not ids_b:
            return False
        ancestors_a: set[int] = set()
        for sid_ in ids_a:
            ancestors_a |= self._ancestors(sid_)
        for sid_ in ids_b:
            if ancestors_a & self._ancestors(sid_):
                return True
        return False

    def _ancestors(self, sid: int) -> frozenset[int]:
        """Transitive hypernym closure of synset ``sid`` (memoised BFS)."""
        cached = self._ancestor_cache.get(sid)
        if cached is not None:
            return cached
        seen: set[int] = set()
        queue = deque(self._hypernyms.get(sid, ()))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._hypernyms.get(current, ()))
        result = frozenset(seen)
        self._ancestor_cache[sid] = result
        return result

    # ------------------------------------------------------------------
    # Bulk-load helper used by repro.lexicon.data.
    # ------------------------------------------------------------------

    def load(self, synsets, hypernym_pairs=()) -> None:
        """Load iterables of synsets (lemma collections) and hypernym pairs."""
        for lemmas in synsets:
            self.add_synset(lemmas)
        for general, specific in hypernym_pairs:
            self.add_hypernym(general, specific)
