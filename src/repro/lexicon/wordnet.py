"""MiniWordNet: the lexical-database substrate standing in for WordNet [9].

The naming algorithm consults WordNet for exactly three things (paper,
Definition 1 and Section 3.1):

* whether two content words are **synonyms** (share a synset);
* whether word *a* is a **hypernym** of word *b* (a synset of *a* is an
  ancestor of a synset of *b* in the hypernymy DAG, transitively);
* the **base form** of a token (morphy).

This module provides those queries over an in-memory database of synsets and
hypernym edges.  The curated data that seeds the default instance lives in
:mod:`repro.lexicon.data`; tests and experiments may build their own
instances with extra vocabulary.

Design notes
------------
* A *synset* is a set of lemmas; a lemma may be a single word (``class``) or
  a collocation with spaces (``zip code``).  Lemmas are stored lowercase.
* Hypernymy is recorded between synsets and queried transitively.  The
  transitive closure is memoised per synset and invalidated on mutation.
* Queries accept inflected forms: each lookup first maps the word to its
  base form with :func:`repro.lexicon.morphology.base_form`, using the
  database itself as the vocabulary check — the same loop WordNet's morphy
  performs.
* Every query (base form, synonymy, hypernymy, co-hyponymy) is memoised at
  the word level — the naming algorithm asks the same token pairs over and
  over across consistency levels.  All memos follow the same invalidation
  discipline as the ancestor closure: *any* mutation (``add_synset``,
  ``add_hypernym``, ``load``) clears every memo and bumps :attr:`version`,
  which downstream caches (label analyzer, semantic comparator) watch so a
  lexicon edit mid-run is observed everywhere.
* Memo dictionaries are bounded by :data:`MEMO_LIMIT`: service traffic can
  feed unbounded vocabulary through ``lemma_base``, so a memo that grows
  past the limit is dropped wholesale (an eviction, counted) rather than
  leaking memory.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

from ..perf import CacheCounter
from ..resilience.faults import maybe_inject
from .morphology import base_form

__all__ = ["Synset", "MiniWordNet"]

#: Per-memo entry bound; past it the memo is cleared (never the data).
MEMO_LIMIT = 1 << 17


@dataclass(frozen=True)
class Synset:
    """A set of mutually synonymous lemmas, identified by ``sid``."""

    sid: int
    lemmas: frozenset[str]

    def __contains__(self, lemma: str) -> bool:
        return lemma in self.lemmas

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Synset({self.sid}, {{{', '.join(sorted(self.lemmas))}}})"


@dataclass
class MiniWordNet:
    """An in-memory lexical database with synonymy and hypernymy queries."""

    _synsets: list[Synset] = field(default_factory=list)
    _lemma_index: dict[str, set[int]] = field(default_factory=lambda: defaultdict(set))
    _hypernyms: dict[int, set[int]] = field(default_factory=lambda: defaultdict(set))
    _ancestor_cache: dict[int, frozenset[int]] = field(default_factory=dict)
    #: Mutation stamp: bumped by every ``add_synset``/``add_hypernym``.
    #: Downstream caches compare it to decide when to drop their own memos.
    version: int = 0
    _base_cache: dict[str, str] = field(default_factory=dict, repr=False)
    _synonym_cache: dict[tuple[str, str], bool] = field(
        default_factory=dict, repr=False
    )
    _hypernym_cache: dict[tuple[str, str], bool] = field(
        default_factory=dict, repr=False
    )
    _cohyponym_cache: dict[tuple[str, str], bool] = field(
        default_factory=dict, repr=False
    )
    _base_counter: CacheCounter = field(
        default_factory=lambda: CacheCounter("wordnet.base_form"), repr=False
    )
    _relation_counter: CacheCounter = field(
        default_factory=lambda: CacheCounter("wordnet.relations"), repr=False
    )

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_synset(self, lemmas) -> int:
        """Register a synset for ``lemmas`` and return its id.

        Lemmas are lowercased.  Registering the same frozenset twice returns
        the existing id rather than duplicating the synset.
        """
        normalized = frozenset(str(lemma).lower().strip() for lemma in lemmas)
        if not normalized:
            raise ValueError("a synset needs at least one lemma")
        for sid in self._lemma_index.get(next(iter(normalized)), ()):
            if self._synsets[sid].lemmas == normalized:
                return sid
        sid = len(self._synsets)
        self._synsets.append(Synset(sid, normalized))
        for lemma in normalized:
            self._lemma_index[lemma].add(sid)
        self._invalidate_memos()
        return sid

    def add_hypernym(self, general, specific) -> None:
        """Record that ``general`` is a hypernym of ``specific``.

        Both arguments may be synset ids or lemmas.  A lemma that is not yet
        in the database gets a singleton synset; a lemma in several synsets
        links **all** of them (coarse, but safe for our curated data, which
        keeps domain senses in separate instances when it matters).
        """
        general_ids = self._resolve(general)
        specific_ids = self._resolve(specific)
        for gid in general_ids:
            for sid_ in specific_ids:
                if gid == sid_:
                    continue
                self._hypernyms[sid_].add(gid)
        self._invalidate_memos()

    def _invalidate_memos(self) -> None:
        """Drop *every* memo and bump :attr:`version` (mutation happened).

        A new synset changes vocabulary (morphy candidates), synonymy and
        co-hyponymy; a new hypernym edge changes the transitive closure.
        Rather than reasoning about which memo each mutation could touch,
        all of them go — mutation is rare and always construction-time
        or test-driven, queries are the hot path.
        """
        self.version += 1
        self._ancestor_cache.clear()
        self._base_cache.clear()
        self._synonym_cache.clear()
        self._hypernym_cache.clear()
        self._cohyponym_cache.clear()

    def _resolve(self, ref) -> set[int]:
        if isinstance(ref, int):
            if not 0 <= ref < len(self._synsets):
                raise KeyError(f"no synset with id {ref}")
            return {ref}
        lemma = str(ref).lower().strip()
        ids = self._lemma_index.get(lemma)
        if not ids:
            return {self.add_synset([lemma])}
        return set(ids)

    # ------------------------------------------------------------------
    # Vocabulary.
    # ------------------------------------------------------------------

    def is_known(self, word: str) -> bool:
        """True when ``word`` (as given, lowercased) is some synset's lemma."""
        return word.lower().strip() in self._lemma_index

    def lemma_base(self, token: str) -> str:
        """Morphy: base form of ``token`` validated against this vocabulary.

        Memoised — the detachment-rule loop probes the vocabulary several
        times per call and labels repeat the same tokens constantly.
        """
        cached = self._base_cache.get(token)
        if cached is not None:
            self._base_counter.hit()
            return cached
        self._base_counter.miss()
        maybe_inject("lexicon.query")
        result = base_form(token, self.is_known)
        if len(self._base_cache) >= MEMO_LIMIT:
            self._base_counter.evict(len(self._base_cache))
            self._base_cache.clear()
        self._base_cache[token] = result
        return result

    def synsets_of(self, word: str) -> tuple[Synset, ...]:
        """All synsets whose lemma set contains the base form of ``word``."""
        lemma = self.lemma_base(word)
        return tuple(self._synsets[sid] for sid in sorted(self._lemma_index.get(lemma, ())))

    def __len__(self) -> int:
        return len(self._synsets)

    def __contains__(self, word: str) -> bool:
        return bool(self._lemma_index.get(self.lemma_base(word)))

    # ------------------------------------------------------------------
    # Queries used by Definition 1.
    # ------------------------------------------------------------------

    def _memo_pair(
        self, memo: dict[tuple[str, str], bool], key: tuple[str, str], value: bool,
        symmetric: bool,
    ) -> bool:
        if len(memo) >= MEMO_LIMIT:
            self._relation_counter.evict(len(memo))
            memo.clear()
        memo[key] = value
        if symmetric:
            memo[(key[1], key[0])] = value
        return value

    def are_synonyms(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` are distinct words sharing a synset."""
        key = (a, b)
        cached = self._synonym_cache.get(key)
        if cached is not None:
            self._relation_counter.hit()
            return cached
        self._relation_counter.miss()
        return self._memo_pair(
            self._synonym_cache, key, self._are_synonyms_uncached(a, b),
            symmetric=True,
        )

    def _are_synonyms_uncached(self, a: str, b: str) -> bool:
        la, lb = self.lemma_base(a), self.lemma_base(b)
        if la == lb:
            return False
        ids_a = self._lemma_index.get(la)
        ids_b = self._lemma_index.get(lb)
        if not ids_a or not ids_b:
            return False
        return not ids_a.isdisjoint(ids_b)

    def is_hypernym(self, general: str, specific: str) -> bool:
        """True when ``general`` is a (transitive) hypernym of ``specific``."""
        key = (general, specific)
        cached = self._hypernym_cache.get(key)
        if cached is not None:
            self._relation_counter.hit()
            return cached
        self._relation_counter.miss()
        return self._memo_pair(
            self._hypernym_cache, key,
            self._is_hypernym_uncached(general, specific), symmetric=False,
        )

    def _is_hypernym_uncached(self, general: str, specific: str) -> bool:
        lg, ls = self.lemma_base(general), self.lemma_base(specific)
        if lg == ls:
            return False
        ids_g = self._lemma_index.get(lg)
        ids_s = self._lemma_index.get(ls)
        if not ids_g or not ids_s:
            return False
        for sid_ in ids_s:
            if not ids_g.isdisjoint(self._ancestors(sid_)):
                return True
        return False

    def share_hypernym(self, a: str, b: str) -> bool:
        """True when ``a`` and ``b`` are co-hyponyms — they have a common
        (transitive) hypernym, like *adult* and *senior* under *person*.
        The weakest of the relatedness signals; used by the interface
        linter's horizontal-coherence check."""
        key = (a, b)
        cached = self._cohyponym_cache.get(key)
        if cached is not None:
            self._relation_counter.hit()
            return cached
        self._relation_counter.miss()
        return self._memo_pair(
            self._cohyponym_cache, key, self._share_hypernym_uncached(a, b),
            symmetric=True,
        )

    def _share_hypernym_uncached(self, a: str, b: str) -> bool:
        ids_a = self._lemma_index.get(self.lemma_base(a))
        ids_b = self._lemma_index.get(self.lemma_base(b))
        if not ids_a or not ids_b:
            return False
        ancestors_a: set[int] = set()
        for sid_ in ids_a:
            ancestors_a |= self._ancestors(sid_)
        for sid_ in ids_b:
            if ancestors_a & self._ancestors(sid_):
                return True
        return False

    def cache_stats(self) -> dict:
        """JSON-ready memo counters (part of the perf cache hierarchy)."""
        return {
            "base_form": {
                **self._base_counter.snapshot(),
                "size": len(self._base_cache),
            },
            "relations": {
                **self._relation_counter.snapshot(),
                "size": (
                    len(self._synonym_cache)
                    + len(self._hypernym_cache)
                    + len(self._cohyponym_cache)
                ),
            },
            "ancestors": {"size": len(self._ancestor_cache)},
            "version": self.version,
        }

    def _ancestors(self, sid: int) -> frozenset[int]:
        """Transitive hypernym closure of synset ``sid`` (memoised BFS)."""
        cached = self._ancestor_cache.get(sid)
        if cached is not None:
            return cached
        seen: set[int] = set()
        queue = deque(self._hypernyms.get(sid, ()))
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self._hypernyms.get(current, ()))
        result = frozenset(seen)
        self._ancestor_cache[sid] = result
        return result

    # ------------------------------------------------------------------
    # Bulk-load helper used by repro.lexicon.data.
    # ------------------------------------------------------------------

    def load(self, synsets, hypernym_pairs=()) -> None:
        """Load iterables of synsets (lemma collections) and hypernym pairs."""
        for lemmas in synsets:
            self.add_synset(lemmas)
        for general, specific in hypernym_pairs:
            self.add_hypernym(general, specific)

    # ------------------------------------------------------------------
    # Snapshot exports consumed by repro.lexicon.compiled.
    # ------------------------------------------------------------------

    def vocabulary(self) -> tuple[str, ...]:
        """Every known lemma, sorted."""
        return tuple(sorted(self._lemma_index))

    def export_data(self):
        """``(synsets, edges)``: lemma frozensets and direct-edge pairs.

        Edges are ``(general-lemmas, specific-lemmas)`` frozenset pairs —
        a content-only view with no synset-id dependence, which is what
        :func:`repro.lexicon.compiled.lexicon_fingerprint` hashes.
        """
        synsets = [synset.lemmas for synset in self._synsets]
        edges = [
            (self._synsets[gid].lemmas, self._synsets[sid].lemmas)
            for sid, generals in sorted(self._hypernyms.items())
            for gid in sorted(generals)
        ]
        return synsets, edges

    def export_tables(self):
        """``(synsets, sid_ancestors, lemma_sids)`` for the compiler.

        ``sid_ancestors[i]`` is the transitive hypernym closure of synset
        ``i`` (computed through the same memoised BFS queries use), and
        ``lemma_sids`` maps each lemma to the ids of its synsets.
        """
        synsets = [synset.lemmas for synset in self._synsets]
        sid_ancestors = [self._ancestors(sid) for sid in range(len(self._synsets))]
        lemma_sids = {
            lemma: set(sids) for lemma, sids in self._lemma_index.items()
        }
        return synsets, sid_ancestors, lemma_sids
