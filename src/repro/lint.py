"""Interface linting — the paper's well-designedness properties as checks.

The paper's premise (Section 1): "in order to distinguish 'well' from 'bad'
constructed unified interfaces a formalism (i.e. a set of desirable
properties) is needed."  The naming algorithm *constructs* interfaces with
those properties; this module *checks* them on any labeled schema tree —
one produced by the pipeline, written by hand, or extracted from a live
form — and reports violations a designer can act on.

Checks
------
``horizontal``   sibling fields in a group whose labels share no
                 Definition-1 relationship with any sibling (the group
                 reads as an incoherent grab bag);
``vertical``     an internal node whose label is *less* general than a
                 descendant's (Definition 5 inverted);
``homonyms``     two fields with similar labels but different clusters /
                 positions (Section 4.2.3's confusion);
``unlabeled``    fields with neither a label nor instances (nothing for a
                 user to go on);
``generic``      one-word labels from the too-vague inventory the survey
                 flags (Category, Type, Options, ...).

Use from code (:func:`lint_interface`), on serialized trees such as the
labeling service's JSON responses (:func:`lint_node_dict` — the engine's
``"lint": true`` request flag goes through it conceptually: every labeled
tree the service emits can be re-checked against the same properties), or
from the CLI (``python -m repro lint page.html``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .core.semantics import LabelRelation, SemanticComparator
from .schema.tree import SchemaNode

__all__ = ["LintFinding", "lint_interface", "lint_node_dict"]

_GENERIC_LONERS = frozenset(
    {"category", "function", "type", "option", "name", "other", "misc"}
)


@dataclass(frozen=True)
class LintFinding:
    """One violation: the check, the nodes involved, a human explanation."""

    check: str
    severity: str            # "warn" | "info"
    node_names: tuple[str, ...]
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.check}/{self.severity}] {self.message}"


def _group_nodes(root: SchemaNode) -> list[SchemaNode]:
    """Internal nodes whose children include >= 2 leaf fields."""
    groups = []
    for node in root.internal_nodes():
        leaf_children = [c for c in node.children if c.is_leaf]
        if len(leaf_children) >= 2 and node is not root:
            groups.append(node)
    return groups


def _check_horizontal(
    root: SchemaNode, comparator: SemanticComparator
) -> list[LintFinding]:
    findings = []
    for group in _group_nodes(root):
        labeled = [c for c in group.children if c.is_leaf and c.is_labeled]
        if len(labeled) < 3:
            continue
        def coheres(a: SchemaNode, b: SchemaNode) -> bool:
            if (
                comparator.relation_between(a.label, b.label)
                is not LabelRelation.NONE
            ):
                return True
            # Co-hyponymy counts: Adults and Seniors cohere under person.
            tokens_a = comparator.analyzer.label(a.label).tokens
            tokens_b = comparator.analyzer.label(b.label).tokens
            return any(
                comparator.wordnet.share_hypernym(ta.lemma, tb.lemma)
                for ta in tokens_a
                for tb in tokens_b
            )

        for field in labeled:
            related = any(
                other is not field and coheres(field, other)
                for other in labeled
            )
            if related:
                continue
            # A field unrelated to EVERY sibling in a 3+ group is a smell.
            findings.append(
                LintFinding(
                    check="horizontal",
                    severity="info",
                    node_names=(group.name, field.name),
                    message=(
                        f"field {field.label!r} shares no lexical relation "
                        f"with any sibling in group "
                        f"{group.label or group.name!r}"
                    ),
                )
            )
    return findings


def _check_vertical(
    root: SchemaNode, comparator: SemanticComparator
) -> list[LintFinding]:
    findings = []
    for node in root.internal_nodes():
        if node is root or not node.is_labeled:
            continue
        for descendant in node.walk():
            if descendant is node or not descendant.is_labeled:
                continue
            # Definition 5 inverted: the descendant label is STRICTLY more
            # general than the ancestor's.
            if comparator.hypernym(descendant.label, node.label):
                findings.append(
                    LintFinding(
                        check="vertical",
                        severity="warn",
                        node_names=(node.name, descendant.name),
                        message=(
                            f"descendant {descendant.label!r} is more "
                            f"general than its ancestor {node.label!r}"
                        ),
                    )
                )
    return findings


def _check_homonyms(
    root: SchemaNode, comparator: SemanticComparator
) -> list[LintFinding]:
    findings = []
    fields = [leaf for leaf in root.leaves() if leaf.is_labeled]
    for i, a in enumerate(fields):
        for b in fields[i + 1 :]:
            if comparator.similar(a.label, b.label):
                findings.append(
                    LintFinding(
                        check="homonyms",
                        severity="warn",
                        node_names=(a.name, b.name),
                        message=(
                            f"fields {a.label!r} and {b.label!r} are "
                            "indistinguishable by label"
                        ),
                    )
                )
    return findings


def _check_unlabeled(root: SchemaNode) -> list[LintFinding]:
    findings = []
    for leaf in root.leaves():
        if leaf is root:
            continue
        if not leaf.is_labeled and not leaf.instances:
            findings.append(
                LintFinding(
                    check="unlabeled",
                    severity="warn",
                    node_names=(leaf.name,),
                    message=(
                        f"field {leaf.name!r} has neither a label nor "
                        "instance values"
                    ),
                )
            )
    return findings


def _check_generic(
    root: SchemaNode, comparator: SemanticComparator
) -> list[LintFinding]:
    findings = []
    for leaf in root.leaves():
        if not leaf.is_labeled:
            continue
        tokens = comparator.analyzer.label(leaf.label).tokens
        if len(tokens) == 1 and tokens[0].lemma in _GENERIC_LONERS:
            findings.append(
                LintFinding(
                    check="generic",
                    severity="info",
                    node_names=(leaf.name,),
                    message=(
                        f"label {leaf.label!r} is too generic to stand alone "
                        "(Section 3.2.1: prefer most descriptive)"
                    ),
                )
            )
    return findings


_CHECKS = {
    "horizontal": _check_horizontal,
    "vertical": _check_vertical,
    "homonyms": _check_homonyms,
    "generic": _check_generic,
}


def lint_interface(
    root: SchemaNode,
    comparator: SemanticComparator | None = None,
    checks: tuple[str, ...] = ("horizontal", "vertical", "homonyms",
                               "unlabeled", "generic"),
) -> list[LintFinding]:
    """All findings for the labeled tree at ``root``, warn-first."""
    comparator = comparator or SemanticComparator()
    findings: list[LintFinding] = []
    for check in checks:
        if check == "unlabeled":
            findings.extend(_check_unlabeled(root))
        elif check in _CHECKS:
            findings.extend(_CHECKS[check](root, comparator))
        else:
            raise ValueError(f"unknown lint check {check!r}")
    findings.sort(key=lambda f: (f.severity != "warn", f.check))
    return findings


def lint_node_dict(
    data: dict,
    comparator: SemanticComparator | None = None,
    checks: tuple[str, ...] = ("horizontal", "vertical", "homonyms",
                               "unlabeled", "generic"),
) -> list[LintFinding]:
    """Lint a serialized schema tree (the ``"tree"`` of a service response).

    Accepts the node-dict shape produced by
    :func:`repro.schema.serialize.node_to_dict` — which is exactly what
    ``POST /label`` returns — so callers of the labeling service can run
    the well-designedness pass on a response without rebuilding schema
    objects themselves.
    """
    from .schema.serialize import node_from_dict

    if not isinstance(data, dict) or "name" not in data:
        raise ValueError("expected a serialized schema node ({'name': ..., ...})")
    return lint_interface(node_from_dict(data), comparator, checks=checks)
