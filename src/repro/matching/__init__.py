"""Matcher substrate: field-level cluster recovery + domain clustering."""

from .domains import DomainCluster, cluster_interfaces, interface_vocabulary
from .matcher import fields_match, match_interfaces

__all__ = [
    "DomainCluster",
    "cluster_interfaces",
    "fields_match",
    "interface_vocabulary",
    "match_interfaces",
]
