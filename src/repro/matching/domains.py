"""Clustering query interfaces into domains — the [18] substrate.

Step one of the larger system (paper Section 2): interfaces extracted from
the web are "clustered into different classes based on the type of products
or services they offer (i.e., Airline, Job)".  The cited system [18]
(Peng et al., WIDM 2004) clusters e-commerce search engines by the terms on
their interfaces; this module reproduces that idea with the machinery
already in the library:

* each interface becomes a bag of content-word stems (labels + instance
  values, normalized by :mod:`repro.lexicon.normalize`);
* pairwise similarity is TF-IDF-weighted cosine over those stems;
* greedy agglomerative clustering with average linkage groups interfaces
  whose similarity exceeds a threshold.

Intended use: feed a mixed pile of extracted interfaces, get back the
per-domain piles the rest of the pipeline (matching → merge → naming)
operates on.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

from ..core.label import LabelAnalyzer
from ..schema.interface import QueryInterface

__all__ = ["DomainCluster", "interface_vocabulary", "cluster_interfaces"]


@dataclass
class DomainCluster:
    """One recovered domain class: member interfaces + their shared terms."""

    interfaces: list[QueryInterface]
    centroid: dict[str, float]

    def names(self) -> list[str]:
        return [qi.name for qi in self.interfaces]

    def top_terms(self, count: int = 5) -> list[str]:
        """The most characteristic stems — a human-readable domain tag."""
        ranked = sorted(self.centroid.items(), key=lambda kv: (-kv[1], kv[0]))
        return [stem for stem, __ in ranked[:count]]

    def __len__(self) -> int:
        return len(self.interfaces)


def interface_vocabulary(
    interface: QueryInterface, analyzer: LabelAnalyzer
) -> Counter:
    """Stem frequencies over every label and instance on the interface."""
    counts: Counter = Counter()
    for node in interface.root.walk():
        if node.is_labeled:
            for token in analyzer.label(node.label).tokens:
                counts[token.stem] += 1
        for value in node.instances:
            for token in analyzer.label(value).tokens:
                counts[token.stem] += 1
    return counts


def _tfidf_vectors(
    vocabularies: list[Counter],
) -> list[dict[str, float]]:
    document_frequency: Counter = Counter()
    for vocabulary in vocabularies:
        document_frequency.update(set(vocabulary))
    n = len(vocabularies)
    vectors = []
    for vocabulary in vocabularies:
        vector = {}
        for stem, tf in vocabulary.items():
            idf = math.log((1 + n) / (1 + document_frequency[stem])) + 1.0
            vector[stem] = tf * idf
        norm = math.sqrt(sum(w * w for w in vector.values())) or 1.0
        vectors.append({stem: w / norm for stem, w in vector.items()})
    return vectors


def _cosine(a: dict[str, float], b: dict[str, float]) -> float:
    if len(b) < len(a):
        a, b = b, a
    return sum(weight * b.get(stem, 0.0) for stem, weight in a.items())


def _average(vectors: list[dict[str, float]]) -> dict[str, float]:
    merged: dict[str, float] = {}
    for vector in vectors:
        for stem, weight in vector.items():
            merged[stem] = merged.get(stem, 0.0) + weight
    n = len(vectors) or 1
    return {stem: weight / n for stem, weight in merged.items()}


def cluster_interfaces(
    interfaces: list[QueryInterface],
    analyzer: LabelAnalyzer | None = None,
    threshold: float = 0.18,
) -> list[DomainCluster]:
    """Group ``interfaces`` into domain classes.

    Greedy average-linkage agglomeration: each interface joins the existing
    cluster whose centroid it is most similar to, provided the similarity
    clears ``threshold``; otherwise it founds a new cluster.  Clusters are
    returned largest first.
    """
    analyzer = analyzer or LabelAnalyzer()
    vocabularies = [interface_vocabulary(qi, analyzer) for qi in interfaces]
    vectors = _tfidf_vectors(vocabularies)

    clusters: list[list[int]] = []
    centroids: list[dict[str, float]] = []
    for index, vector in enumerate(vectors):
        best_cluster = None
        best_similarity = threshold
        for cluster_index, centroid in enumerate(centroids):
            similarity = _cosine(vector, centroid)
            if similarity >= best_similarity:
                best_similarity = similarity
                best_cluster = cluster_index
        if best_cluster is None:
            clusters.append([index])
            centroids.append(dict(vector))
        else:
            clusters[best_cluster].append(index)
            centroids[best_cluster] = _average(
                [vectors[i] for i in clusters[best_cluster]]
            )

    result = [
        DomainCluster(
            interfaces=[interfaces[i] for i in members],
            centroid=centroids[cluster_index],
        )
        for cluster_index, members in enumerate(clusters)
        if members
    ]
    result.sort(key=lambda c: (-len(c), c.names()))
    return result
