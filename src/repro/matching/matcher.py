"""Label-based cluster recovery — a lightweight interface matcher.

The paper *assumes* the cluster mapping as input (Section 2.1; computed by
[10, 23, 24]).  The synthetic corpus ships ground-truth clusters, but for
end-to-end runs on hand-written interfaces this module recovers a mapping
from labels and instances alone: greedy agglomerative clustering where two
fields match when their labels are related by Definition 1 (equality /
synonymy / hypernymy) or their instance sets overlap substantially.

This is intentionally simpler than the cited matchers — it is a substrate,
not a contribution — but it produces the same *shape* of input: clusters of
semantically equivalent fields, one field per interface after reduction.
"""

from __future__ import annotations

from ..core.semantics import LabelRelation, SemanticComparator
from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode

__all__ = ["match_interfaces", "fields_match"]

_INSTANCE_OVERLAP_THRESHOLD = 0.5


def fields_match(
    a: SchemaNode, b: SchemaNode, comparator: SemanticComparator
) -> bool:
    """Two fields match on label relation or instance-set overlap."""
    if a.is_labeled and b.is_labeled:
        relation = comparator.relation_between(a.label, b.label)
        if relation is not LabelRelation.NONE:
            # Hypernym-related field labels ("Title" vs "Course Title")
            # almost always denote the same concept at different verbosity.
            return True
    if a.instances and b.instances:
        set_a = {v.lower() for v in a.instances}
        set_b = {v.lower() for v in b.instances}
        overlap = len(set_a & set_b) / min(len(set_a), len(set_b))
        if overlap >= _INSTANCE_OVERLAP_THRESHOLD:
            return True
    return False


def match_interfaces(
    interfaces: list[QueryInterface],
    comparator: SemanticComparator | None = None,
) -> Mapping:
    """Recover a cluster :class:`Mapping` for ``interfaces``.

    Greedy: fields are visited interface by interface; each field joins the
    first existing cluster whose representative matches it and which has no
    member from the same interface yet, else founds a new cluster.  Cluster
    names derive from the founding field's label.
    """
    comparator = comparator or SemanticComparator()
    mapping = Mapping()
    representatives: dict[str, SchemaNode] = {}
    used_names: set[str] = set()

    for interface in interfaces:
        for field in interface.fields():
            placed = False
            for cluster_name, representative in representatives.items():
                cluster = mapping[cluster_name]
                if interface.name in cluster:
                    continue
                if fields_match(field, representative, comparator):
                    cluster.add(interface.name, field)
                    field.cluster = cluster_name
                    placed = True
                    break
            if not placed:
                base = (
                    "c_" + "_".join(field.label.split()).lower()
                    if field.is_labeled
                    else f"c_{field.name}"
                )
                name = base
                suffix = 2
                while name in used_names:
                    name = f"{base}_{suffix}"
                    suffix += 1
                used_names.add(name)
                mapping.assign(name, interface.name, field)
                field.cluster = name
                representatives[name] = field
    return mapping
