"""Merge substrate: builds the integrated schema tree the naming step labels."""

from .merger import merge_interfaces
from .order import average_position, cluster_positions

__all__ = ["average_position", "cluster_positions", "merge_interfaces"]
