"""Schema-tree merge — reconstruction of the structural step ([8], ICDE'06).

The labeling paper takes the integrated schema tree as input and relies on
two guarantees from the merge of [8] (its Section 2.3): ancestor-descendant
relationships of the sources are preserved (under non-conflict constraints)
and grouping constraints are satisfied as much as possible.  This module
provides a merge with exactly those guarantees:

1. **Groups.**  Two clusters are sibling-related when some source interface
   places their fields as leaf children of one internal node.  Connected
   components of that relation become the integrated groups — this is what
   lets groups of the integrated interface span sources that never co-state
   them (the Table 3 situation: State/City from some autos, Zip/Distance
   from others, one integrated group of four).
2. **Hierarchy.**  Every source internal node constrains its descendant
   clusters to stay together under one integrated ancestor.  Constraints
   are lifted to group granularity and a maximal *laminar* subfamily
   (greedy, by frequency across sources then by size) becomes the internal
   structure — crossing constraints, which cannot all be honored in a tree,
   are dropped by minority, which is the "as much as possible" clause.
3. **Order.**  Siblings are ordered by majority position (see
   :mod:`repro.merge.order`).

The merged tree's leaves carry cluster names and no labels; internal nodes
are unlabeled.  Naming them is the labeling paper's job.
"""

from __future__ import annotations

from collections import Counter

from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.tree import SchemaNode
from .order import average_position, cluster_positions

__all__ = ["merge_interfaces"]


def merge_interfaces(
    interfaces: list[QueryInterface], mapping: Mapping
) -> SchemaNode:
    """Merge the source interfaces into an integrated schema tree.

    Requires the mapping to be 1:1-reduced (run
    :meth:`Mapping.expand_one_to_many` first); raises otherwise.
    """
    mapping.validate_one_to_one()
    all_clusters = [c.name for c in mapping.clusters if c.members]
    if not all_clusters:
        return SchemaNode(None, name="integrated:root")

    components = _group_components(interfaces, mapping, all_clusters)
    constraints = _lifted_constraints(interfaces, components)
    laminar = _laminar_family(constraints, set(components))
    root = _build_tree(components, laminar, interfaces)
    # Field domains of the unified interface are the union of the source
    # domains (the paper delegates this computation to WISE [12]).
    for leaf in root.leaves():
        if leaf.cluster is not None:
            leaf.instances = tuple(sorted(mapping[leaf.cluster].instances_union()))
    root.validate()
    return root


# ----------------------------------------------------------------------
# Step 1: groups as connected components of the sibling relation.
# ----------------------------------------------------------------------


def _group_components(
    interfaces: list[QueryInterface],
    mapping: Mapping,
    all_clusters: list[str],
) -> dict[frozenset[str], str]:
    """Map each component (frozenset of clusters) to a stable name."""
    index = {name: i for i, name in enumerate(all_clusters)}
    parent = list(range(len(all_clusters)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    edge_support: Counter = Counter()
    occurrences: Counter = Counter()
    for interface in interfaces:
        for node in interface.root.internal_nodes():
            if node is interface.root:
                # Children of a source root are unrelated sections, not a
                # semantic group (Section 3: root children have only loose
                # consistency constraints) — no sibling edges there.
                continue
            if any(child.is_internal for child in node.children):
                # A leaf sitting among internal siblings is an *isolated*
                # field (the Garage pattern of Figure 3), not a group member
                # — only pure field groups generate sibling relations.
                continue
            leaf_children = [
                child for child in node.children if child.cluster in index
            ]
            for i, first in enumerate(leaf_children):
                for second in leaf_children[i + 1 :]:
                    key = frozenset((first.cluster, second.cluster))
                    if len(key) == 2:
                        edge_support[key] += 1

    # "Grouping constraints are satisfied as much as possible": a sibling
    # relation needs (a) two sources stating it (one on tiny corpora) and
    # (b) to hold a substantial fraction of the time the rarer of the two
    # fields appears anywhere — chance co-locations of loose fields fail
    # the ratio test, genuine group members pass it.
    for cluster_name in all_clusters:
        occurrences[cluster_name] = mapping[cluster_name].frequency()
    min_support = 2 if len(interfaces) >= 8 else 1
    for key, support in edge_support.items():
        if support < min_support:
            continue
        a, b = key
        rarer = max(1, min(occurrences[a], occurrences[b]))
        if support >= 0.5 * rarer:
            union(index[a], index[b])

    members: dict[int, list[str]] = {}
    for name, i in index.items():
        members.setdefault(find(i), []).append(name)

    components: dict[frozenset[str], str] = {}
    for cluster_names in members.values():
        key = frozenset(cluster_names)
        components[key] = "cmp:" + "+".join(sorted(cluster_names))
    return components


# ----------------------------------------------------------------------
# Step 2: hierarchy constraints at group granularity.
# ----------------------------------------------------------------------


def _lifted_constraints(
    interfaces: list[QueryInterface],
    components: dict[frozenset[str], str],
) -> Counter:
    """Each source internal node, lifted to the components it touches."""
    constraints: Counter = Counter()
    for interface in interfaces:
        for node in interface.root.internal_nodes():
            if node is interface.root:
                continue
            clusters = node.descendant_leaf_clusters()
            if not clusters:
                continue
            touched = frozenset(
                component
                for component in components
                if component & clusters
            )
            if len(touched) >= 2:
                constraints[touched] += 1
    return constraints


def _laminar_family(
    constraints: Counter, universe: set[frozenset[str]]
) -> list[frozenset[frozenset[str]]]:
    """Greedy maximal laminar subfamily of the lifted constraints.

    Candidates are visited most-frequent first (majority wins on conflict),
    larger first on ties; a candidate is kept iff it is nested or disjoint
    with everything already kept.
    """
    kept: list[frozenset[frozenset[str]]] = []
    full = frozenset(universe)
    ordered = sorted(
        constraints.items(),
        key=lambda item: (-item[1], -len(item[0]), sorted(map(sorted, item[0]))),
    )
    for candidate, __ in ordered:
        if candidate == full or len(candidate) < 2:
            continue
        if all(
            candidate <= existing or existing <= candidate or not candidate & existing
            for existing in kept
        ):
            kept.append(candidate)
    # Flatten nested constraints: a kept set strictly inside another kept
    # set is the same source section observed with members missing — keeping
    # it would add a spurious level that no source label can cover.
    return [
        candidate
        for candidate in kept
        if not any(candidate < other for other in kept)
    ]


# ----------------------------------------------------------------------
# Step 3: materialize the ordered tree.
# ----------------------------------------------------------------------


def _build_tree(
    components: dict[frozenset[str], str],
    laminar: list[frozenset[frozenset[str]]],
    interfaces: list[QueryInterface],
) -> SchemaNode:
    """Materialize the ordered tree from components + laminar internal sets.

    Laminar sets are processed smallest-first; each consumes the so-far
    unconsumed subtrees (smaller laminar nodes and bare components) that lie
    strictly inside it.  Because the family is laminar, every subtree has a
    unique smallest enclosing set, so each node is attached exactly once.
    """
    positions = cluster_positions(interfaces)

    def component_node(component: frozenset[str]) -> SchemaNode:
        if len(component) == 1:
            (cluster_name,) = component
            return SchemaNode(None, cluster=cluster_name, name=f"leaf:{cluster_name}")
        leaves = [
            SchemaNode(None, cluster=c, name=f"leaf:{c}")
            for c in sorted(
                component, key=lambda c: (average_position([c], positions), c)
            )
        ]
        return SchemaNode(None, leaves, name=components[component])

    def sort_key(item: tuple[frozenset[frozenset[str]], SchemaNode]):
        key, node = item
        clusters = [c for comp in key for c in comp]
        return (average_position(clusters, positions), node.name)

    # Unconsumed subtrees, keyed by the set of components they span.
    available: dict[frozenset[frozenset[str]], SchemaNode] = {
        frozenset((component,)): component_node(component)
        for component in components
    }

    for group_set in sorted(laminar, key=len):
        inside = {
            key: node for key, node in available.items() if key <= group_set
        }
        if len(inside) < 2:
            continue  # everything already nested in one subtree — no new level
        children = [node for __, node in sorted(inside.items(), key=sort_key)]
        internal = SchemaNode(
            None,
            children,
            name="int:" + "+".join(sorted(c for comp in group_set for c in comp)),
        )
        for key in inside:
            del available[key]
        available[group_set] = internal

    top_level = [node for __, node in sorted(available.items(), key=sort_key)]
    return SchemaNode(None, top_level, name="integrated:root")
