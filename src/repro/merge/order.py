"""Sibling ordering for the merged tree — majority order among sources.

The merge formalism of [8] outputs an *ordered* schema tree whose sibling
order "resembles the order of fields in the interface".  We order merged
siblings by the average normalized position their content occupies across
the source interfaces, breaking ties deterministically.
"""

from __future__ import annotations

from ..schema.interface import QueryInterface

__all__ = ["cluster_positions", "average_position"]


def cluster_positions(interfaces: list[QueryInterface]) -> dict[str, list[float]]:
    """Normalized [0, 1] positions each cluster's field occupies per source."""
    positions: dict[str, list[float]] = {}
    for interface in interfaces:
        leaves = interface.fields()
        n = len(leaves)
        if n == 0:
            continue
        for index, leaf in enumerate(leaves):
            if leaf.cluster is None:
                continue
            positions.setdefault(leaf.cluster, []).append(
                index / (n - 1) if n > 1 else 0.0
            )
    return positions


def average_position(clusters, positions: dict[str, list[float]]) -> float:
    """Mean position of a collection of clusters (1.0 when unknown)."""
    values = [
        sum(positions[c]) / len(positions[c])
        for c in clusters
        if positions.get(c)
    ]
    if not values:
        return 1.0
    return sum(values) / len(values)
