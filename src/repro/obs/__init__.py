"""repro.obs — request-scoped observability for the labeling service.

The service debugs phase-by-phase: when a request misbehaves, the question
is *which* pipeline phase (group relations → partitions → combine closure
→ conflict repair → internal-node inference) consumed the time or tripped
a fault.  This package answers it with zero dependencies and zero cost
when disabled:

``tracer``   context-local span tracing (:class:`Trace`, :class:`Span`,
             the :func:`span`/:func:`event` call sites instrumented
             through the pipeline, engine and batch executor) with an
             injectable monotonic clock;
``export``   persistence and interchange: the CRC-safe JSONL span log
             (``serve --trace-log``), the bounded LRU behind
             ``GET /trace/<request_id>``, and the ``chrome://tracing``
             exporter.

Tracing is ambient: activate a :meth:`Trace.scope` around any labeling
call and every instrumented layer below it contributes spans::

    from repro.obs import Trace, format_trace
    from repro.service import LabelingEngine

    trace = Trace()
    with trace.scope():
        LabelingEngine().label({"domain": "airline"})
    print(format_trace(trace))

With no scope active, the instrumentation points cost one integer read —
labeling output is byte-identical either way (asserted by
``tests/test_obs.py``; overhead by ``benchmarks/test_bench_obs.py``).
"""

from .export import TraceLog, TraceStore, chrome_trace
from .tracer import (
    Span,
    Trace,
    current_span,
    current_trace,
    event,
    format_trace,
    is_active,
    new_request_id,
    span,
)

__all__ = [
    "Span",
    "Trace",
    "TraceLog",
    "TraceStore",
    "chrome_trace",
    "current_span",
    "current_trace",
    "event",
    "format_trace",
    "is_active",
    "new_request_id",
    "span",
]
