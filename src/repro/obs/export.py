"""Trace persistence and interchange: JSONL log, LRU store, Chrome export.

Three consumers of a finished :class:`~repro.obs.tracer.Trace`:

* :class:`TraceLog` — a structured JSONL event log (``serve --trace-log
  DIR``): one record per span, appended with a CRC-32 like the disk
  cache's segments, so a crash mid-write can at worst truncate the final
  line and a reader never trusts a corrupt record.
* :class:`TraceStore` — the bounded LRU of recent traces behind
  ``GET /trace/<request_id>``.
* :func:`chrome_trace` — the ``chrome://tracing`` / Perfetto JSON array
  form ("trace event format", ``ph: "X"`` complete events), for looking
  at a request's phase timeline in a real trace viewer.
"""

from __future__ import annotations

import json
import threading
import zlib
from collections import OrderedDict
from pathlib import Path

__all__ = ["TraceLog", "TraceStore", "chrome_trace"]

_LOG_FILE = "spans.jsonl"


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def _crc(value) -> int:
    return zlib.crc32(_canonical(value).encode("utf-8"))


def _flatten_spans(record: dict, request_id: str):
    """Yield one flat, JSON-ready dict per span of a trace dict (pre-order).

    ``id`` is the span's pre-order index within its trace; ``parent`` is
    the parent's index (``None`` for the root) — enough to rebuild the
    tree without nesting records.
    """
    counter = 0

    def walk(span: dict, parent: int | None):
        nonlocal counter
        index = counter
        counter += 1
        flat = {
            "request_id": request_id,
            "id": index,
            "parent": parent,
            "name": span["name"],
            "start_ms": span["start_ms"],
            "duration_ms": span["duration_ms"],
        }
        if span.get("tags"):
            flat["tags"] = span["tags"]
        if span.get("events"):
            flat["events"] = span["events"]
        yield flat
        for child in span.get("children") or []:
            yield from walk(child, index)

    yield from walk(record["root"], None)


class TraceLog:
    """CRC-safe append-only JSONL span log (one record per span).

    Each line is ``{"crc": <CRC-32 of the canonical record JSON>,
    "v": <flat span record>}``.  Appends are lock-guarded and flushed;
    :meth:`load` skips (and counts) corrupt or truncated lines instead of
    failing, mirroring :class:`repro.service.diskcache.DiskCache`.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / _LOG_FILE
        self._lock = threading.Lock()
        self._records = 0
        self._traces = 0

    def append(self, trace_record: dict) -> int:
        """Append every span of one trace dict; returns spans written."""
        request_id = trace_record.get("request_id", "")
        lines = []
        for flat in _flatten_spans(trace_record, request_id):
            lines.append(_canonical({"crc": _crc(flat), "v": flat}))
        payload = "\n".join(lines) + "\n"
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
            self._records += len(lines)
            self._traces += 1
        return len(lines)

    @staticmethod
    def load(path: str | Path) -> tuple[list[dict], int]:
        """Read a span log back: ``(valid records, corrupt line count)``."""
        records: list[dict] = []
        corrupt = 0
        text = Path(path).read_text("utf-8")
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                wrapper = json.loads(line)
            except json.JSONDecodeError:
                corrupt += 1
                continue
            if (
                not isinstance(wrapper, dict)
                or "v" not in wrapper
                or _crc(wrapper["v"]) != wrapper.get("crc")
            ):
                corrupt += 1
                continue
            records.append(wrapper["v"])
        return records, corrupt

    def stats(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "traces": self._traces,
                "spans": self._records,
            }


class TraceStore:
    """Thread-safe bounded LRU of recent trace dicts, keyed by request id."""

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = max(0, int(capacity))
        self._lock = threading.Lock()
        self._traces: OrderedDict[str, dict] = OrderedDict()
        self._evictions = 0

    def put(self, trace_record: dict) -> None:
        if self.capacity <= 0:
            return
        request_id = trace_record.get("request_id")
        if not request_id:
            return
        with self._lock:
            if request_id in self._traces:
                self._traces.pop(request_id)
            self._traces[request_id] = trace_record
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
                self._evictions += 1

    def get(self, request_id: str) -> dict | None:
        with self._lock:
            record = self._traces.get(request_id)
            if record is not None:
                self._traces.move_to_end(request_id)
            return record

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "stored": len(self._traces),
                "evictions": self._evictions,
            }


def chrome_trace(traces) -> list[dict]:
    """Trace dicts → the Chrome ``chrome://tracing`` JSON array form.

    One complete (``ph: "X"``) event per span; each trace gets its own
    ``pid`` so several requests sit side by side in the viewer.  Times are
    microseconds, as the format requires.  The returned list serializes
    with ``json.dump`` directly.
    """

    events: list[dict] = []
    for pid, record in enumerate(traces, start=1):
        request_id = record.get("request_id", "?")
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"request {request_id}"},
            }
        )

        def walk(span: dict, depth: int):
            events.append(
                {
                    "name": span["name"],
                    "cat": "repro",
                    "ph": "X",
                    "pid": pid,
                    "tid": 1,
                    "ts": round(span["start_ms"] * 1000.0, 1),
                    "dur": round(span["duration_ms"] * 1000.0, 1),
                    "args": {**(span.get("tags") or {}), "depth": depth},
                }
            )
            for e in span.get("events") or []:
                events.append(
                    {
                        "name": e["name"],
                        "cat": "repro",
                        "ph": "i",
                        "s": "t",
                        "pid": pid,
                        "tid": 1,
                        "ts": round(e["at_ms"] * 1000.0, 1),
                        "args": e.get("attrs") or {},
                    }
                )
            for child in span.get("children") or []:
                walk(child, depth + 1)

        walk(record["root"], 0)
    return events
