"""Request-scoped span tracing — zero-dependency, zero-cost when off.

A :class:`Trace` is one request's tree of :class:`Span` records: every
pipeline phase, cache consultation and retry attempt becomes a span (with
monotonic-clock start/duration) or an event on the enclosing span.  The
trace's clock is injectable, so tests pin span timings with a fake clock
and assert the whole tree as a golden.

Activation mirrors :mod:`repro.resilience.faults`: a context-local scope
(:meth:`Trace.scope`) names the trace governing the current execution, and
the instrumented call sites — :func:`span`, :func:`event` — consult it.
When no trace is active (the overwhelmingly common case) both are a read
of one module-level integer and an immediate return: the labeling hot
paths pay nothing, and ``benchmarks/test_bench_obs.py`` asserts the
disabled path stays within noise of the un-traced baseline.

Concurrency: one trace may receive spans from many batch workers.  The
fan-out pattern is *attach* (:meth:`Trace.attach`): the parent creates one
span per item in submission order, and each worker thread activates its
own scope rooted at its item's span — span trees stay deterministic and no
two workers ever share a span stack.  Process-backend workers build their
own standalone trace and ship it home as a dict
(:meth:`Span.from_dict` grafts it under the parent's item span).
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "Trace",
    "current_span",
    "current_trace",
    "event",
    "format_trace",
    "is_active",
    "new_request_id",
    "span",
]


def new_request_id() -> str:
    """A fresh opaque request id (hex, no separators)."""
    return uuid.uuid4().hex


def _round_ms(seconds: float) -> float:
    return round(seconds * 1000.0, 3)


class Span:
    """One timed operation: name, tags, point events, child spans.

    Times are stored as absolute readings of the owning trace's clock;
    serialization (:meth:`to_dict`) converts them to offsets from a base —
    normally the trace start — so a serialized tree is relocatable (the
    process backend re-bases worker trees onto the parent's timeline).
    """

    __slots__ = ("name", "tags", "events", "children", "start_s", "end_s")

    def __init__(self, name: str, tags: dict | None = None) -> None:
        self.name = name
        self.tags: dict = tags or {}
        self.events: list[dict] = []
        self.children: list["Span"] = []
        self.start_s: float = 0.0
        self.end_s: float = 0.0

    @property
    def duration_ms(self) -> float:
        return _round_ms(max(0.0, self.end_s - self.start_s))

    def add_event(self, name: str, at_s: float, attrs: dict) -> None:
        self.events.append({"name": name, "at_s": at_s, "attrs": attrs})

    def iter_spans(self):
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def find(self, name: str) -> list["Span"]:
        """Every span named ``name`` in this subtree (pre-order)."""
        return [s for s in self.iter_spans() if s.name == name]

    def to_dict(self, base_s: float = 0.0) -> dict:
        """JSON-ready record with times as ms offsets from ``base_s``."""
        record: dict = {
            "name": self.name,
            "start_ms": _round_ms(self.start_s - base_s),
            "duration_ms": self.duration_ms,
        }
        if self.tags:
            record["tags"] = dict(self.tags)
        if self.events:
            record["events"] = [
                {
                    "name": e["name"],
                    "at_ms": _round_ms(e["at_s"] - base_s),
                    **({"attrs": e["attrs"]} if e["attrs"] else {}),
                }
                for e in self.events
            ]
        if self.children:
            record["children"] = [c.to_dict(base_s) for c in self.children]
        return record

    @classmethod
    def from_dict(cls, record: dict, base_s: float = 0.0) -> "Span":
        """Rebuild a span tree, re-basing offsets onto ``base_s``.

        The inverse of :meth:`to_dict`; ``base_s`` maps the serialized
        tree's zero point onto the target trace's timeline (the parent
        passes its dispatch span's start so a worker-process tree lands
        where the work was dispatched).
        """
        span = cls(str(record.get("name", "span")), dict(record.get("tags") or {}))
        span.start_s = base_s + float(record.get("start_ms", 0.0)) / 1000.0
        span.end_s = span.start_s + float(record.get("duration_ms", 0.0)) / 1000.0
        for e in record.get("events") or []:
            span.add_event(
                str(e.get("name", "event")),
                base_s + float(e.get("at_ms", 0.0)) / 1000.0,
                dict(e.get("attrs") or {}),
            )
        span.children = [
            cls.from_dict(c, base_s) for c in record.get("children") or []
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration_ms}ms, {len(self.children)} children)"


class Trace:
    """One request's span tree plus the clock every span reads.

    ``clock`` must be monotonic-like (only differences are used); tests
    inject a deterministic fake so the golden span tree has pinned
    durations.  ``request_id`` is the service's correlation key — honored
    from ``X-Request-Id`` or generated.
    """

    def __init__(
        self,
        request_id: str | None = None,
        name: str = "request",
        clock=time.monotonic,
    ) -> None:
        self.request_id = request_id or new_request_id()
        self.clock = clock
        self.root = Span(name)
        self.meta: dict = {}

    # ------------------------------------------------------------------
    # Activation.
    # ------------------------------------------------------------------

    @contextmanager
    def scope(self):
        """Activate this trace for the current context, timing the root."""
        with self.attach(self.root):
            yield self

    @contextmanager
    def attach(self, span: Span):
        """Activate this trace with the span stack rooted at ``span``.

        The fan-out entry point: a batch worker thread attaches at its
        item's pre-created span, so its spans graft under that item while
        sibling workers write to their own subtrees.  Starts/finishes
        ``span`` around the enclosed block.
        """
        global _ACTIVE
        scope = _TraceScope(trace=self, stack=[span])
        span.start_s = self.clock()
        token = _SCOPE.set(scope)
        with _ACTIVE_LOCK:
            _ACTIVE += 1
        try:
            yield span
        finally:
            with _ACTIVE_LOCK:
                _ACTIVE -= 1
            _SCOPE.reset(token)
            span.end_s = self.clock()

    # ------------------------------------------------------------------
    # Introspection / serialization.
    # ------------------------------------------------------------------

    def find(self, name: str) -> list[Span]:
        return self.root.find(name)

    def to_dict(self) -> dict:
        """JSON-ready trace: request id, metadata, span tree (ms offsets)."""
        record = {
            "request_id": self.request_id,
            "duration_ms": self.root.duration_ms,
            "root": self.root.to_dict(self.root.start_s),
        }
        if self.meta:
            record["meta"] = dict(self.meta)
        return record


@dataclass
class _TraceScope:
    """The context-local state: which trace, and the open-span stack."""

    trace: Trace
    stack: list[Span] = field(default_factory=list)


_SCOPE: ContextVar[_TraceScope | None] = ContextVar("repro_trace_scope", default=None)

#: Count of live scopes across all threads; the hot-path fast-exit guard.
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()


def is_active() -> bool:
    """True when a trace scope governs the current context."""
    return bool(_ACTIVE) and _SCOPE.get() is not None


def current_trace() -> Trace | None:
    """The trace governing the current context, if any."""
    if not _ACTIVE:
        return None
    scope = _SCOPE.get()
    return scope.trace if scope is not None else None


def current_span() -> Span | None:
    """The innermost open span of the current context, if any."""
    if not _ACTIVE:
        return None
    scope = _SCOPE.get()
    if scope is None or not scope.stack:
        return None
    return scope.stack[-1]


class _NoopSpan:
    """Reusable, reentrant no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopSpan()


class _SpanContext:
    """Context manager opening one child span on the active scope's stack."""

    __slots__ = ("_scope", "_span")

    def __init__(self, scope: _TraceScope, span: Span) -> None:
        self._scope = scope
        self._span = span

    def __enter__(self) -> Span:
        self._scope.stack[-1].children.append(self._span)
        self._scope.stack.append(self._span)
        self._span.start_s = self._scope.trace.clock()
        return self._span

    def __exit__(self, *exc_info):
        self._span.end_s = self._scope.trace.clock()
        popped = self._scope.stack.pop()
        assert popped is self._span, "span stack corrupted"
        return False


def span(name: str, **tags):
    """Open a child span on the active trace; a shared no-op when none.

    ::

        with span("phase:partitions") as sp:
            ...
            if sp is not None:        # tracing may be disabled
                sp.tags["groups"] = len(groups)

    Costs one integer read when no trace is active.
    """
    if not _ACTIVE:
        return _NOOP
    scope = _SCOPE.get()
    if scope is None or not scope.stack:
        return _NOOP
    return _SpanContext(scope, Span(name, tags or None))


def event(name: str, **attrs) -> None:
    """Record a point event on the innermost open span (no-op when off)."""
    if not _ACTIVE:
        return
    scope = _SCOPE.get()
    if scope is None or not scope.stack:
        return
    scope.stack[-1].add_event(name, scope.trace.clock(), attrs)


# ----------------------------------------------------------------------
# Rendering (the ``repro trace`` CLI and ``GET /trace`` debugging aid).
# ----------------------------------------------------------------------


def _format_tags(record: dict) -> str:
    tags = record.get("tags")
    if not tags:
        return ""
    inner = " ".join(f"{k}={v}" for k, v in tags.items())
    return f"  [{inner}]"


def _format_span(record: dict, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(
        f"{prefix}{connector}{record['name']} "
        f"({record['duration_ms']:.3f} ms){_format_tags(record)}"
    )
    child_prefix = prefix + ("   " if is_last else "│  ")
    events = record.get("events") or []
    children = record.get("children") or []
    for e in events:
        attrs = e.get("attrs") or {}
        inner = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())) if attrs else ""
        tail = "└· " if not children and e is events[-1] else "├· "
        lines.append(f"{child_prefix}{tail}@{e['at_ms']:.3f} ms {e['name']}{inner}")
    for index, child in enumerate(children):
        _format_span(child, child_prefix, index == len(children) - 1, lines)


def format_trace(trace: "Trace | dict") -> str:
    """A human-readable span tree with per-span durations.

    Accepts a live :class:`Trace` or its :meth:`Trace.to_dict` form (what
    ``GET /trace/<id>`` returns).
    """
    record = trace.to_dict() if isinstance(trace, Trace) else trace
    root = record["root"]
    lines = [
        f"{root['name']} ({root['duration_ms']:.3f} ms)"
        f"  request_id={record.get('request_id', '?')}{_format_tags(root)}"
    ]
    for e in root.get("events") or []:
        attrs = e.get("attrs") or {}
        inner = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())) if attrs else ""
        lines.append(f"·· @{e['at_ms']:.3f} ms {e['name']}{inner}")
    children = root.get("children") or []
    for index, child in enumerate(children):
        _format_span(child, "", index == len(children) - 1, lines)
    return "\n".join(lines)
