"""Perf instrumentation: cache counters, timers, and the labeling profiler.

The naming algorithm is quadratic in pairwise label comparisons
(Definitions 1-3), and the service re-runs the same normalize -> morphy ->
synonymy/hypernymy chain for every tuple pair at every consistency level.
The memoization layer that amortizes that work lives next to each hot path
(:class:`repro.core.label.LabelAnalyzer`,
:class:`repro.core.semantics.SemanticComparator`,
:class:`repro.lexicon.wordnet.MiniWordNet`,
:class:`repro.core.consistency.ConsistencyPairCache`); this module provides
the *observability* for it:

* :class:`CacheCounter` — hit/miss/eviction counts with a derived hit rate;
  every cache in the hierarchy owns one and exposes it via a
  ``cache_stats()`` method.
* :class:`Timer` / :class:`PerfRegistry` — named wall-clock timers and
  counters for coarse stage accounting (used by ``repro profile``).
* :func:`aggregate_stats` — recursive summation of ``cache_stats()``
  snapshots, what the service engine uses to merge the per-comparator
  numbers into one ``GET /metrics`` section.
* :func:`profile_labeling` — the cold-vs-warm workload behind the
  ``repro profile`` CLI subcommand and ``benchmarks/test_bench_perf.py``;
  returns a JSON-ready report (the ``BENCH_perf.json`` artifact).

Counters are lock-guarded: a ``threading.Lock`` acquire on an uncontended
lock costs ~100ns — noise against even a memo dict hit's full call path —
and exact totals are part of the contract now that the labeling engine
aggregates counters across thread pools and process-backend fallbacks
(``tests/test_perf.py`` hammers them from 8 threads and asserts exactness).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = [
    "CacheCounter",
    "PerfRegistry",
    "Timer",
    "aggregate_stats",
    "profile_labeling",
]


class CacheCounter:
    """Hit/miss/eviction counters for one cache, with a derived hit rate.

    Increments are lock-guarded so totals stay exact under concurrent
    readers (thread-pool batch workers sharing one comparator).  Reads for
    :meth:`snapshot` take the same lock; the scalar properties read single
    attributes, which is atomic enough for display.
    """

    __slots__ = ("name", "hits", "misses", "evictions", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> dict:
        return {
            "name": self.name,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]
        self._lock = threading.Lock()

    def hit(self) -> None:
        with self._lock:
            self.hits += 1

    def miss(self) -> None:
        with self._lock:
            self.misses += 1

    def evict(self, count: int = 1) -> None:
        with self._lock:
            self.evictions += count

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    def snapshot(self) -> dict:
        """JSON-ready counter values (a consistent read)."""
        with self._lock:
            hits, misses, evictions = self.hits, self.misses, self.evictions
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": evictions,
            "hit_rate": round(hits / lookups, 4) if lookups else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheCounter({self.name!r}, hits={self.hits}, "
            f"misses={self.misses}, evictions={self.evictions})"
        )


class Timer:
    """Accumulating wall-clock timer for one named stage (thread-safe)."""

    __slots__ = ("name", "calls", "total_s", "max_s", "_lock")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.calls = 0
        self.total_s = 0.0
        self.max_s = 0.0
        self._lock = threading.Lock()

    def add(self, seconds: float) -> None:
        with self._lock:
            self.calls += 1
            self.total_s += seconds
            if seconds > self.max_s:
                self.max_s = seconds

    @contextmanager
    def time(self):
        """Context manager adding the enclosed wall time to the timer."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(time.perf_counter() - start)

    def reset(self) -> None:
        with self._lock:
            self.calls = 0
            self.total_s = 0.0
            self.max_s = 0.0

    def snapshot(self) -> dict:
        """JSON-ready timing summary (milliseconds, consistent read)."""
        with self._lock:
            calls, total_s, max_s = self.calls, self.total_s, self.max_s
        mean_s = total_s / calls if calls else 0.0
        return {
            "calls": calls,
            "total_ms": round(total_s * 1000.0, 3),
            "mean_ms": round(mean_s * 1000.0, 3),
            "max_ms": round(max_s * 1000.0, 3),
        }


class PerfRegistry:
    """A named collection of counters and timers with one snapshot call.

    Creation is lock-guarded so concurrent first requests for the same name
    share one object; the counters/timers themselves stay lock-free.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, CacheCounter] = {}
        self._timers: dict[str, Timer] = {}

    def counter(self, name: str) -> CacheCounter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = CacheCounter(name)
            return counter

    def timer(self, name: str) -> Timer:
        with self._lock:
            timer = self._timers.get(name)
            if timer is None:
                timer = self._timers[name] = Timer(name)
            return timer

    def reset(self) -> None:
        with self._lock:
            for counter in self._counters.values():
                counter.reset()
            for timer in self._timers.values():
                timer.reset()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "counters": {
                    name: c.snapshot() for name, c in sorted(self._counters.items())
                },
                "timers": {
                    name: t.snapshot() for name, t in sorted(self._timers.items())
                },
            }


#: Process-wide default registry for ad-hoc instrumentation.
PERF = PerfRegistry()


def aggregate_stats(snapshots: list[dict]) -> dict:
    """Merge ``cache_stats()`` snapshots by summing numeric leaves.

    ``hit_rate`` keys are recomputed from the summed ``hits``/``misses``
    rather than summed (a sum of rates is meaningless).  Used by the service
    engine to fold its per-comparator stats into one ``GET /metrics`` block.
    """
    merged: dict = {}
    for snapshot in snapshots:
        _merge_into(merged, snapshot)
    _fix_hit_rates(merged)
    return merged


def _merge_into(target: dict, source: dict) -> None:
    for key, value in source.items():
        if isinstance(value, dict):
            _merge_into(target.setdefault(key, {}), value)
        elif isinstance(value, bool) or not isinstance(value, (int, float)):
            target.setdefault(key, value)
        else:
            target[key] = target.get(key, 0) + value


def _fix_hit_rates(stats: dict) -> None:
    if "hit_rate" in stats and "hits" in stats and "misses" in stats:
        lookups = stats["hits"] + stats["misses"]
        stats["hit_rate"] = round(stats["hits"] / lookups, 4) if lookups else 0.0
    for value in stats.values():
        if isinstance(value, dict):
            _fix_hit_rates(value)


# ----------------------------------------------------------------------
# The cold-vs-warm labeling profile (``repro profile``, BENCH_perf.json).
# ----------------------------------------------------------------------


def profile_labeling(
    domains=None,
    seed: int = 0,
    repeats: int = 3,
    comparator=None,
) -> dict:
    """Measure cold-vs-warm labeling over one shared comparator.

    For each domain the corpus is labeled ``repeats + 1`` times through
    :func:`repro.core.pipeline.label_corpus` with one long-lived
    :class:`~repro.core.semantics.SemanticComparator` — the first pass is
    *cold* (caches empty for that domain's vocabulary), the rest are *warm*
    (label analyses, pairwise relations and WordNet memos answer from
    cache).  Dataset generation is excluded from the timings; only the
    merge + naming pipeline is measured.

    Returns a JSON-ready report: per-domain cold/warm latency and speedup,
    totals, and the comparator's final cache hit ratios.  This is exactly
    what ``repro profile -o BENCH_perf.json`` writes and what the perf
    benchmark asserts against.
    """
    from .core.semantics import SemanticComparator
    from .core.pipeline import label_corpus
    from .datasets.registry import DOMAINS, load_domain

    names = list(domains) if domains else list(DOMAINS)
    unknown = [n for n in names if n not in DOMAINS]
    if unknown:
        raise ValueError(f"unknown domains: {', '.join(unknown)}")
    repeats = max(1, int(repeats))
    comparator = comparator or SemanticComparator()

    per_domain: dict[str, dict] = {}
    total_cold = 0.0
    total_warm = 0.0
    for name in names:
        durations: list[float] = []
        for __ in range(repeats + 1):
            dataset = load_domain(name, seed=seed)
            start = time.perf_counter()
            label_corpus(
                dataset.interfaces,
                dataset.mapping,
                comparator=comparator,
                domain=name,
            )
            durations.append(time.perf_counter() - start)
        cold_s = durations[0]
        warm_runs = durations[1:]
        warm_s = sum(warm_runs) / len(warm_runs)
        total_cold += cold_s
        total_warm += warm_s
        per_domain[name] = {
            "cold_ms": round(cold_s * 1000.0, 3),
            "warm_ms": round(warm_s * 1000.0, 3),
            "speedup": round(cold_s / warm_s, 2) if warm_s else 0.0,
        }

    totals = {
        "cold_ms": round(total_cold * 1000.0, 3),
        "warm_ms": round(total_warm * 1000.0, 3),
        "speedup": round(total_cold / total_warm, 2) if total_warm else 0.0,
        "warm_labelings_per_s": (
            round(len(names) / total_warm, 1) if total_warm else 0.0
        ),
    }
    return {
        "workload": "repeated label_corpus per domain, one shared comparator",
        "seed": seed,
        "repeats": repeats,
        "domains": per_domain,
        "totals": totals,
        "caches": comparator.cache_stats(),
    }
