"""Human-readable run reports: everything a labeling run decided, and why.

:func:`domain_report` renders one :class:`DomainRunResult` as a Markdown
document: corpus characteristics, every group relation with its consistency
level and chosen solution, homonym repairs, isolated-cluster elections,
internal-node assignments with their Definition-8 statuses, inference-rule
usage, the survey outcome, and the labeled tree itself.

This is the artifact a practitioner would attach to a data-integration
review — the paper's project web page served the same role for its authors.
Available from the CLI as ``python -m repro report <domain>``.
"""

from __future__ import annotations

from .core.inference import InferenceRule
from .core.result import NodeStatus
from .experiment import DomainRunResult
from .schema.groups import GroupKind

__all__ = ["domain_report"]


def _section(title: str) -> list[str]:
    return ["", f"## {title}", ""]


def _code_block(text: str) -> list[str]:
    return ["```", *text.splitlines(), "```"]


def _percent(value: float) -> str:
    return f"{value:.1%}"


def domain_report(run: DomainRunResult) -> str:
    """Render ``run`` as a Markdown report (returns the document text)."""
    labeling = run.labeling
    lines: list[str] = [
        f"# Labeling report — {run.domain} (seed {run.dataset.seed})",
        "",
        f"*Classification:* **{run.classification}**  ",
        f"*FldAcc:* {_percent(run.fld_acc)} · *IntAcc:* {_percent(run.int_acc)} · "
        f"*HA:* {_percent(run.ha)} · *HA\\*:* {_percent(run.ha_star)}",
    ]

    # ------------------------------------------------------------------
    lines += _section("Corpus")
    lines += [
        f"- {len(run.dataset.interfaces)} source interfaces, "
        f"avg {run.avg_leaves:.1f} fields, depth {run.avg_depth:.1f}, "
        f"labeling quality {_percent(run.lq)}",
        f"- integrated interface: {run.integrated.leaves} fields, "
        f"{run.integrated.groups} groups, {run.integrated.isolated_leaves} "
        f"isolated, {run.integrated.root_leaves} root-level, depth "
        f"{run.integrated.depth}",
    ]
    if run.dataset.mapping.expansions:
        lines.append(
            f"- 1:m reductions: "
            + ", ".join(
                f"{r.field_label!r} on {r.interface} over {len(r.clusters)} clusters"
                for r in run.dataset.mapping.expansions
            )
        )

    # ------------------------------------------------------------------
    lines += _section("The labeled integrated interface")
    lines += _code_block(labeling.root.pretty())

    # ------------------------------------------------------------------
    lines += _section("Group naming")
    for name, result in labeling.group_results.items():
        group = result.group
        kind = "root pseudo-group" if group.kind is GroupKind.ROOT else "group"
        level = result.level.name.lower() if result.level else "—"
        verdict = (
            f"consistent at the {level} level"
            if result.consistent
            else "partially consistent"
        )
        lines += ["", f"### {name} ({kind}) — {verdict}", ""]
        lines += _code_block(result.relation.as_table())
        chosen = labeling.chosen_solutions.get(name)
        if chosen is not None:
            rendered = ", ".join(
                f"{c}: {l!r}" for c, l in chosen.labels.items()
            )
            lines += ["", f"solution → {rendered}"]
    repairs = labeling.repairs
    if repairs:
        lines += ["", "### Homonym repairs", ""]
        for repair in repairs:
            lines.append(
                f"- {repair.cluster_a}/{repair.cluster_b}: "
                f"({repair.old_label_a!r}, {repair.old_label_b!r}) → "
                f"({repair.new_label_a!r}, {repair.new_label_b!r}) "
                f"via {repair.source_interface}"
            )

    # ------------------------------------------------------------------
    if labeling.isolated_outcomes:
        lines += _section("Isolated clusters (RAN variant)")
        for cluster, outcome in labeling.isolated_outcomes.items():
            detail = [f"roots: {outcome.roots}"]
            if outcome.li6_replacements:
                detail.append(f"LI6: {outcome.li6_replacements}")
            if outcome.discarded_value_labels:
                detail.append(f"LI7 discarded: {outcome.discarded_value_labels}")
            lines.append(
                f"- {cluster} → {outcome.label!r} ({'; '.join(detail)})"
            )

    # ------------------------------------------------------------------
    lines += _section("Internal nodes (vertical consistency)")
    for node in labeling.internal_nodes():
        status = labeling.node_status.get(node.name)
        label = labeling.node_labels.get(node.name)
        clusters = sorted(node.descendant_leaf_clusters())
        shown = clusters if len(clusters) <= 5 else [*clusters[:5], "…"]
        marker = {
            NodeStatus.CONSISTENT: "✓",
            NodeStatus.WEAKLY_CONSISTENT: "~",
            NodeStatus.UNLABELED_BLOCKED: "✗ (blocked)",
            NodeStatus.UNLABELED_NO_POTENTIALS: "✗ (no potentials)",
        }.get(status, "?")
        lines.append(f"- {marker} {label!r} over {shown}")

    # ------------------------------------------------------------------
    lines += _section("Inference rules")
    total = run.inference_log.total()
    if total:
        for rule in InferenceRule:
            count = run.inference_log.counts.get(rule, 0)
            if count:
                lines.append(f"- {rule.value}: {count} ({count / total:.0%})")
    else:
        lines.append("- (none fired)")

    # ------------------------------------------------------------------
    lines += _section("Survey")
    lines.append(
        f"- {run.study.respondent_count} simulated respondents over "
        f"{run.study.field_count} fields: HA {_percent(run.ha)}, "
        f"HA* {_percent(run.ha_star)}"
    )
    if run.study.flag_counts:
        lines.append("- flagged fields (votes):")
        for cluster, votes in run.study.flag_counts.most_common():
            label = labeling.field_labels.get(cluster)
            lines.append(f"  - {cluster} (label {label!r}): {votes}")
    else:
        lines.append("- nobody flagged anything")

    return "\n".join(lines) + "\n"
