"""repro.resilience — fault injection and the machinery that survives it.

Two halves, deliberately in one package:

* **Injection** (:mod:`.faults`): a seedable, deterministic
  :class:`FaultPlan` threaded through the engine, the result cache, the
  naming pipeline and the lexicon via named injection points — latency,
  transient errors, cache corruption and mid-run lexicon mutations, all
  reproducible from a seed.
* **Survival**: bounded retry with exponential backoff and deterministic
  jitter (:mod:`.retry`), a per-corpus-fingerprint circuit breaker
  (:mod:`.breaker`), and a bounded admission queue with load shedding for
  the HTTP front door (:mod:`.admission`).

The paper's pipeline is deterministic, so every fault either heals (retry,
recompute) or surfaces as a structured, provenance-carrying error — never
as silent corruption.  ``docs/resilience.md`` walks through the whole
layer; ``repro chaos`` sweeps it end to end.
"""

from .admission import AdmissionController, OverloadedError
from .breaker import BreakerPolicy, CircuitBreaker, CircuitOpenError
from .faults import (
    FAULT_KINDS,
    INJECTION_POINTS,
    FaultEvent,
    FaultPlan,
    FaultScope,
    FaultSpec,
    InjectedFault,
    TransientFault,
    active_scope,
    fault_scope,
    maybe_inject,
)
from .retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "AdmissionController",
    "BreakerPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "FaultEvent",
    "FaultPlan",
    "FaultScope",
    "FaultSpec",
    "InjectedFault",
    "OverloadedError",
    "RetryPolicy",
    "TransientFault",
    "active_scope",
    "fault_scope",
    "maybe_inject",
]
