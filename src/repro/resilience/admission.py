"""Load shedding: a bounded admission queue in front of the HTTP handlers.

``ThreadingHTTPServer`` happily spawns a thread per connection; under a
traffic spike that means unbounded concurrent pipeline runs, memory growth
and collapsing latency for *everyone*.  The admission controller caps
concurrent work at ``max_concurrent`` and queues at most ``max_queue``
further requests; anything beyond is shed immediately with a
``retry_after`` hint (HTTP 429), which keeps the served requests fast —
graceful degradation instead of congestion collapse.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["AdmissionController", "OverloadedError"]


class OverloadedError(RuntimeError):
    """The admission queue is full; the caller should retry later."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"service overloaded: admission queue full, retry in {retry_after:.2f}s"
        )
        self.retry_after = retry_after


class AdmissionController:
    """Bounded concurrency + bounded queue + shed counter, lock-based."""

    def __init__(
        self,
        max_concurrent: int = 8,
        max_queue: int = 32,
        retry_after_s: float = 0.5,
    ) -> None:
        self.max_concurrent = max(1, int(max_concurrent))
        self.max_queue = max(0, int(max_queue))
        self.retry_after_s = float(retry_after_s)
        self._cond = threading.Condition()
        self._active = 0
        self._queued = 0
        self._admitted = 0
        self._shed = 0

    def acquire(self) -> bool:
        """Take a slot, queueing if needed; ``False`` means shed (no slot)."""
        with self._cond:
            if self._active >= self.max_concurrent:
                if self._queued >= self.max_queue:
                    self._shed += 1
                    return False
                self._queued += 1
                try:
                    while self._active >= self.max_concurrent:
                        self._cond.wait()
                finally:
                    self._queued -= 1
            self._active += 1
            self._admitted += 1
            return True

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._cond.notify()

    @contextmanager
    def admit(self):
        """Context-managed slot; raises :class:`OverloadedError` when shed."""
        if not self.acquire():
            raise OverloadedError(self.retry_after_s)
        try:
            yield
        finally:
            self.release()

    def stats(self) -> dict:
        with self._cond:
            return {
                "max_concurrent": self.max_concurrent,
                "max_queue": self.max_queue,
                "active": self._active,
                "queued": self._queued,
                "admitted": self._admitted,
                "shed": self._shed,
            }
