"""A per-key circuit breaker: stop hammering a corpus that keeps failing.

The service keys breakers by corpus fingerprint: a request whose pipeline
run fails repeatedly (poisoned corpus, permanent injected fault) trips its
breaker, and further identical requests fail fast with a ``retry_after``
hint instead of burning a worker for the full pipeline + retry budget.
Unrelated corpora are unaffected — their breakers are independent.

States follow the classic pattern: CLOSED (normal) → OPEN after
``failure_threshold`` consecutive failures (all calls rejected) →
HALF_OPEN after ``reset_after_s`` (one probe admitted) → CLOSED on probe
success, OPEN again on probe failure.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = ["BreakerPolicy", "CircuitBreaker", "CircuitOpenError"]


class CircuitOpenError(RuntimeError):
    """Fail-fast rejection: the fingerprint's breaker is open."""

    def __init__(self, key: str, retry_after: float) -> None:
        super().__init__(
            f"circuit open for {key[:16]}…: failing fast, retry in {retry_after:.2f}s"
        )
        self.key = key
        self.retry_after = retry_after


@dataclass(frozen=True)
class BreakerPolicy:
    """Configuration shared by every breaker an engine creates."""

    failure_threshold: int = 5
    reset_after_s: float = 30.0

    def build(self, clock=time.monotonic) -> "CircuitBreaker":
        return CircuitBreaker(
            failure_threshold=self.failure_threshold,
            reset_after_s=self.reset_after_s,
            clock=clock,
        )


class CircuitBreaker:
    """One key's breaker; thread-safe; ``clock`` injectable for tests."""

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_after_s: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.failure_threshold = max(1, int(failure_threshold))
        self.reset_after_s = float(reset_after_s)
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self._rejections = 0
        self._trips = 0

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May a call proceed right now?  (Counts a rejection when not.)"""
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self._clock() - self._opened_at >= self.reset_after_s:
                    self._state = self.HALF_OPEN
                    self._probing = False
                else:
                    self._rejections += 1
                    return False
            # HALF_OPEN: admit exactly one probe at a time.
            if self._probing:
                self._rejections += 1
                return False
            self._probing = True
            return True

    def retry_after(self) -> float:
        """Seconds until the breaker would admit a probe (0 when closed)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self.reset_after_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._consecutive_failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            probe_failed = self._state == self.HALF_OPEN
            if probe_failed or self._consecutive_failures >= self.failure_threshold:
                if self._state != self.OPEN:
                    self._trips += 1
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False

    def stats(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "rejections": self._rejections,
                "trips": self._trips,
            }
