"""Deterministic fault injection — seedable chaos for the labeling service.

The service's resilience machinery (retry, circuit breaking, load shedding,
cache integrity) is only trustworthy if faults can be *produced on demand,
reproducibly*.  This module provides that: a :class:`FaultPlan` describes
which faults fire where, and the decision for any (point, key) pair is a
pure function of the plan's seed — no wall clock, no ``random`` module
state, no dependence on thread interleaving.  Running the same plan over
the same corpus batch twice injects exactly the same faults, which is what
lets the chaos suite assert that fault-free items are byte-identical to a
no-fault run.

Injection points
----------------
Call sites across the stack invoke :func:`maybe_inject` with a point name:

======================  ====================================================
``engine.execute``      entry of :meth:`LabelingEngine._execute` (per item)
``cache.get``           :meth:`ResultCache.get` — ``corrupt`` faults flip a
                        stored entry so the integrity checksum must catch it
``pipeline.merge``      :func:`repro.core.pipeline.label_corpus` before the
                        1:m reduction and merge
``pipeline.phase1``     start of the three-phase naming traversal
``pipeline.phase3``     before top-down label assignment —
                        ``mutate_lexicon`` faults land here mid-run
``lexicon.query``       a :meth:`MiniWordNet.lemma_base` memo miss
======================  ====================================================

When no plan is active (the overwhelmingly common case) ``maybe_inject``
is a read of one module-level integer — the hot paths pay nothing.

Fault kinds
-----------
``latency``          sleep ``latency_s`` then continue
``timeout``          same, but conventionally with a delay sized to blow a
                     batch/item deadline
``error``            raise :class:`InjectedFault` (a transient, retryable
                     failure)
``corrupt``          returned to the call site, which flips its own stored
                     data (only honoured by ``cache.get``)
``mutate_lexicon``   add a unique junk synset to the active lexicon —
                     semantically inert, but it bumps the lexicon version
                     and forces every downstream memo to invalidate mid-run
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "TransientFault",
    "active_scope",
    "fault_scope",
    "maybe_inject",
]

#: Every named injection point wired through the stack.
INJECTION_POINTS = (
    "engine.execute",
    "cache.get",
    "pipeline.merge",
    "pipeline.phase1",
    "pipeline.phase3",
    "lexicon.query",
)

#: Supported fault kinds (see the module docstring).
FAULT_KINDS = ("latency", "timeout", "error", "corrupt", "mutate_lexicon")

#: Kinds that make sense at each point; ``FaultPlan.random`` draws from these.
_POINT_KINDS = {
    "engine.execute": ("latency", "error"),
    "cache.get": ("corrupt",),
    "pipeline.merge": ("latency", "error"),
    "pipeline.phase1": ("error", "mutate_lexicon"),
    "pipeline.phase3": ("latency", "error", "mutate_lexicon"),
    "lexicon.query": ("latency", "error"),
}


class TransientFault(RuntimeError):
    """A failure expected to clear on retry (the retry policy's trigger)."""


class InjectedFault(TransientFault):
    """An ``error``-kind fault raised by :func:`maybe_inject`."""

    def __init__(self, event: "FaultEvent", message: str) -> None:
        super().__init__(f"{message} [{event.point}]")
        self.event = event


@dataclass(frozen=True)
class FaultSpec:
    """One rule of a plan: what fires, where, how often, how many times.

    ``rate`` is the probability that a given key is *selected* by this
    spec (a pure function of the plan seed, the spec and the key).  A
    selected key faults on its first ``max_fires`` arrivals at the point
    and then heals — ``max_fires=1`` models a transient blip a single
    retry gets past, ``max_fires=None`` a permanent fault that exhausts
    the retry budget.
    """

    point: str                    # an INJECTION_POINTS name, or "*"
    kind: str                     # a FAULT_KINDS member
    rate: float = 1.0
    max_fires: int | None = 1
    latency_s: float = 0.002
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")


@dataclass(frozen=True)
class FaultEvent:
    """Provenance record of one injected fault."""

    point: str
    key: str
    kind: str
    spec_index: int

    def to_dict(self) -> dict:
        return {"point": self.point, "kind": self.kind}


class FaultPlan:
    """A seeded, thread-safe set of fault rules with full provenance.

    Selection is deterministic: whether spec *i* selects key *k* at point
    *p* depends only on ``(seed, i, p, k)`` — never on call order or
    threads — so a plan replayed over the same inputs injects the same
    faults.  Per-key fire counts (the ``max_fires`` budget) are tracked
    under a lock; :attr:`events` accumulates every injected fault for the
    chaos harness's accounting.
    """

    def __init__(self, specs, seed: int = 0, name: str | None = None) -> None:
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.name = name or f"plan-{self.seed}"
        self.events: list[FaultEvent] = []
        self._fired: dict[tuple[int, str], int] = {}
        self._mutations = 0
        self._lock = threading.Lock()

    @classmethod
    def random(
        cls,
        seed: int,
        rate: float = 0.1,
        points=INJECTION_POINTS,
        max_fires: int | None = 1,
        latency_s: float = 0.002,
    ) -> "FaultPlan":
        """A varied plan for chaos sweeps: one seed-chosen kind per point.

        The kind drawn for each point comes from the same hash family as
        the selection rolls, so the whole plan — shape and firing — is a
        pure function of ``seed``.
        """
        specs = []
        for index, point in enumerate(points):
            kinds = _POINT_KINDS.get(point, ("latency", "error"))
            kind = kinds[_uniform(seed, index, point, "kind-draw") % len(kinds)]
            specs.append(
                FaultSpec(
                    point=point,
                    kind=kind,
                    rate=rate,
                    max_fires=max_fires,
                    latency_s=latency_s,
                    message=f"chaos seed {seed}",
                )
            )
        return cls(specs, seed=seed, name=f"chaos-{seed}")

    # ------------------------------------------------------------------
    # Decision logic.
    # ------------------------------------------------------------------

    def _selected(self, spec_index: int, point: str, key: str) -> bool:
        spec = self.specs[spec_index]
        roll = _uniform(self.seed, spec_index, point, key) / float(2**64)
        return roll < spec.rate

    def fires(self, point: str, key: str) -> tuple[FaultSpec, FaultEvent] | None:
        """The first spec that fires for (point, key) this call, or None."""
        for index, spec in enumerate(self.specs):
            if spec.point not in (point, "*"):
                continue
            if not self._selected(index, point, key):
                continue
            with self._lock:
                fired = self._fired.get((index, key), 0)
                if spec.max_fires is not None and fired >= spec.max_fires:
                    continue
                self._fired[(index, key)] = fired + 1
                event = FaultEvent(
                    point=point, key=key, kind=spec.kind, spec_index=index
                )
                self.events.append(event)
            return spec, event
        return None

    def next_mutation_tag(self) -> str:
        """A unique, deterministic lemma tag for ``mutate_lexicon`` faults."""
        with self._lock:
            self._mutations += 1
            return f"chaoslemma {self.seed} {self._mutations}"

    def stats(self) -> dict:
        """JSON-ready summary of everything this plan injected."""
        with self._lock:
            events = list(self.events)
        by_kind: dict[str, int] = {}
        by_point: dict[str, int] = {}
        for event in events:
            by_kind[event.kind] = by_kind.get(event.kind, 0) + 1
            by_point[event.point] = by_point.get(event.point, 0) + 1
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": len(self.specs),
            "injected": len(events),
            "by_kind": dict(sorted(by_kind.items())),
            "by_point": dict(sorted(by_point.items())),
        }


def _uniform(*parts) -> int:
    """A 64-bit hash of the parts — the shared deterministic entropy source."""
    text = "|".join(str(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# The active scope: which plan applies, for which item.
# ----------------------------------------------------------------------


@dataclass
class FaultScope:
    """One item's fault context: the plan, the item key, observed events."""

    plan: FaultPlan
    key: str
    events: list[FaultEvent] = field(default_factory=list)


_SCOPE: ContextVar[FaultScope | None] = ContextVar("repro_fault_scope", default=None)

#: Count of live scopes across all threads; the hot-path fast-exit guard.
_ACTIVE = 0
_ACTIVE_LOCK = threading.Lock()


def active_scope() -> FaultScope | None:
    """The scope governing the current (thread's) execution, if any."""
    if not _ACTIVE:
        return None
    return _SCOPE.get()


@contextmanager
def fault_scope(plan: FaultPlan | None, key: str):
    """Activate ``plan`` for the current context, keyed by ``key``.

    ``plan=None`` yields a no-op scope so callers need no branching.  The
    scope is context-local: concurrent batch workers each activate their
    own item's scope without interference.
    """
    global _ACTIVE
    if plan is None:
        yield None
        return
    scope = FaultScope(plan=plan, key=key)
    token = _SCOPE.set(scope)
    with _ACTIVE_LOCK:
        _ACTIVE += 1
    try:
        yield scope
    finally:
        with _ACTIVE_LOCK:
            _ACTIVE -= 1
        _SCOPE.reset(token)


def maybe_inject(point: str, key: str | None = None, wordnet=None) -> FaultSpec | None:
    """Fire any fault the active plan schedules at ``point``.

    Costs one integer read when no plan is active.  ``key`` overrides the
    scope's item key (the cache uses the entry key).  ``latency``/``timeout``
    faults sleep here; ``error`` faults raise :class:`InjectedFault`;
    ``mutate_lexicon`` faults add a junk synset to ``wordnet`` (when given)
    — unique lemmas, so results are unchanged but every memo downstream of
    the lexicon version stamp must re-derive; ``corrupt`` faults are
    returned for the call site to apply to its own data.
    """
    scope = active_scope()
    if scope is None:
        return None
    hit = scope.plan.fires(point, key if key is not None else scope.key)
    if hit is None:
        return None
    spec, event = hit
    scope.events.append(event)
    if spec.kind in ("latency", "timeout"):
        time.sleep(spec.latency_s)
    elif spec.kind == "error":
        raise InjectedFault(event, spec.message)
    elif spec.kind == "mutate_lexicon" and wordnet is not None:
        wordnet.add_synset([scope.plan.next_mutation_tag()])
    return spec
