"""Bounded retry with exponential backoff and deterministic jitter.

Transient failures (injected faults, flaky I/O) clear on retry; systematic
ones (bad corpora, algorithmic bugs) do not.  The policy therefore retries
only exception types listed in ``retry_on`` — everything else propagates
immediately, so a deterministic pipeline error is never retried three
times for nothing.

Jitter is deterministic: the fractional wobble for attempt *n* of key *k*
is a hash of ``(k, n)``, not a ``random`` draw.  Retried timing is thus
reproducible under a fixed plan, while distinct keys still de-synchronise
(the thundering-herd property jitter exists for).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .faults import TransientFault, _uniform

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget + backoff curve for transient per-item failures."""

    max_attempts: int = 3
    base_delay_s: float = 0.02
    multiplier: float = 2.0
    max_delay_s: float = 0.5
    jitter: float = 0.25          # +/- fraction of the nominal delay
    retry_on: tuple[type[BaseException], ...] = (TransientFault, ConnectionError)

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), jittered."""
        nominal = min(
            self.base_delay_s * self.multiplier ** max(0, attempt - 1),
            self.max_delay_s,
        )
        if self.jitter <= 0:
            return nominal
        frac = _uniform("retry", key, attempt) / float(2**64)  # [0, 1)
        return nominal * (1.0 - self.jitter + 2.0 * self.jitter * frac)

    def call(self, fn, key: str = "", sleep=time.sleep):
        """Run ``fn`` with retries; returns ``(value, attempts)``.

        A retryable exception that survives ``max_attempts`` is re-raised
        with ``retry_attempts`` set on it, so callers can report how hard
        the policy tried.
        """
        attempt = 0
        while True:
            attempt += 1
            try:
                return fn(), attempt
            except self.retry_on as exc:
                if attempt >= self.max_attempts:
                    exc.retry_attempts = attempt
                    raise
                sleep(self.delay_for(attempt, key))
