"""Schema substrate: ordered trees, query interfaces, clusters, groups."""

from .clusters import Cluster, ExpansionRecord, Mapping
from .groups import Group, GroupKind, GroupPartition, partition_clusters
from .interface import FieldKind, QueryInterface, make_field, make_group
from .serialize import (
    corpus_to_dict,
    interface_from_dict,
    interface_to_dict,
    load_corpus,
    mapping_from_dict,
    mapping_to_dict,
    node_from_dict,
    node_to_dict,
    save_corpus,
)
from .tree import SchemaNode, depth_of, lowest_common_ancestor

__all__ = [
    "Cluster",
    "ExpansionRecord",
    "FieldKind",
    "Group",
    "GroupKind",
    "GroupPartition",
    "Mapping",
    "QueryInterface",
    "SchemaNode",
    "corpus_to_dict",
    "depth_of",
    "interface_from_dict",
    "interface_to_dict",
    "load_corpus",
    "lowest_common_ancestor",
    "make_field",
    "make_group",
    "mapping_from_dict",
    "mapping_to_dict",
    "node_from_dict",
    "node_to_dict",
    "partition_clusters",
    "save_corpus",
]
