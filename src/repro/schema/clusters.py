"""Clusters and the global mapping (paper Section 2.1).

"Among the inputs of our problem is a mapping globally characterizing the
semantic correspondences between equivalent fields in the query interfaces.
The mapping is organized in clusters that record 1:1 and 1:m matchings of
fields."

A :class:`Cluster` holds, per interface, the field(s) that realize one global
concept (Table 1 of the paper: ``c_Adult`` holds ``Adults``, ``Adult``, ...).
A field matching several clusters (``Passengers``) creates a granularity
mismatch; :meth:`Mapping.expand_one_to_many` performs the reduction described
in the paper: the leaf becomes an internal node whose unlabeled children have
1:1 correspondences, and its label ("Passengers") leaves the clusters —
surviving only as a potential label for internal nodes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .interface import QueryInterface
from .tree import SchemaNode

__all__ = ["Cluster", "Mapping", "ExpansionRecord"]


@dataclass
class Cluster:
    """All semantically equivalent fields across interfaces for one concept."""

    name: str
    members: dict[str, SchemaNode] = field(default_factory=dict)

    def add(self, interface_name: str, node: SchemaNode) -> None:
        if interface_name in self.members:
            raise ValueError(
                f"cluster {self.name}: interface {interface_name} already has a member"
            )
        self.members[interface_name] = node

    def label_of(self, interface_name: str) -> str | None:
        """The (display) label this interface supplies, or None."""
        node = self.members.get(interface_name)
        if node is None or not node.is_labeled:
            return None
        return node.label

    def labels(self) -> list[str]:
        """All distinct labels supplied for this cluster, first-seen order."""
        seen: list[str] = []
        for node in self.members.values():
            if node.is_labeled and node.label not in seen:
                seen.append(node.label)
        return seen

    def instances_union(self, label: str | None = None) -> frozenset[str]:
        """Union of instance values of member fields.

        With ``label`` given, restrict to members carrying exactly that
        label — the ``domain(l)`` of inference rule LI6.
        """
        values: set[str] = set()
        for node in self.members.values():
            if label is not None and node.label != label:
                continue
            values.update(node.instances)
        return frozenset(values)

    def frequency(self) -> int:
        """Number of interfaces contributing a field to this cluster."""
        return len(self.members)

    def __contains__(self, interface_name: str) -> bool:
        return interface_name in self.members

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Cluster({self.name!r}, {len(self.members)} members)"


@dataclass(frozen=True)
class ExpansionRecord:
    """One 1:m reduction: ``field_label`` on ``interface`` expanded over
    ``clusters`` (paper Section 2.1, the Passengers example)."""

    interface: str
    field_label: str | None
    clusters: tuple[str, ...]


class Mapping:
    """The set of clusters for a domain, with 1:m granularity reduction."""

    def __init__(self, clusters: list[Cluster] | None = None) -> None:
        self._clusters: dict[str, Cluster] = {}
        for cluster in clusters or []:
            self.add_cluster(cluster)
        self.expansions: list[ExpansionRecord] = []

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_cluster(self, cluster: Cluster) -> None:
        if cluster.name in self._clusters:
            raise ValueError(f"duplicate cluster name {cluster.name!r}")
        self._clusters[cluster.name] = cluster

    def get_or_create(self, name: str) -> Cluster:
        cluster = self._clusters.get(name)
        if cluster is None:
            cluster = Cluster(name)
            self._clusters[name] = cluster
        return cluster

    def assign(self, cluster_name: str, interface_name: str, node: SchemaNode) -> None:
        """Place ``node`` of ``interface_name`` into ``cluster_name``.

        A node may be assigned to several clusters before reduction; the
        node's own ``cluster`` attribute is only set once it is unambiguous.
        """
        self.get_or_create(cluster_name).add(interface_name, node)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------

    @property
    def clusters(self) -> list[Cluster]:
        return list(self._clusters.values())

    def cluster_names(self) -> list[str]:
        return list(self._clusters)

    def __getitem__(self, name: str) -> Cluster:
        return self._clusters[name]

    def __contains__(self, name: str) -> bool:
        return name in self._clusters

    def __len__(self) -> int:
        return len(self._clusters)

    def clusters_of(self, interface_name: str, node: SchemaNode) -> list[str]:
        """Names of the clusters that contain this exact node."""
        return [
            cluster.name
            for cluster in self._clusters.values()
            if cluster.members.get(interface_name) is node
        ]

    # ------------------------------------------------------------------
    # 1:m -> 1:1 reduction (Section 2.1).
    # ------------------------------------------------------------------

    def expand_one_to_many(self, interfaces: list[QueryInterface]) -> list[ExpansionRecord]:
        """Reduce every 1:m correspondence to 1:1 correspondences.

        For each field that belongs to several clusters, the leaf is expanded
        in its source tree into an internal node (keeping the original label,
        which thereby becomes internal-node material) whose fresh unlabeled
        children take the field's place in each cluster.

        Returns the list of expansions performed (also stored on
        ``self.expansions``).
        """
        by_name = {qi.name: qi for qi in interfaces}
        # Collect multi-cluster memberships: (interface, node) -> cluster names.
        memberships: dict[tuple[str, int], list[str]] = defaultdict(list)
        node_of: dict[tuple[str, int], SchemaNode] = {}
        for cluster in self._clusters.values():
            for interface_name, node in cluster.members.items():
                key = (interface_name, id(node))
                memberships[key].append(cluster.name)
                node_of[key] = node

        performed: list[ExpansionRecord] = []
        for key, cluster_names in memberships.items():
            interface_name, _ = key
            node = node_of[key]
            if len(cluster_names) < 2:
                # 1:1 — just record the membership on the node.
                node.cluster = cluster_names[0]
                continue
            interface = by_name.get(interface_name)
            if interface is None:
                raise KeyError(
                    f"mapping references unknown interface {interface_name!r}"
                )
            children = []
            for cluster_name in cluster_names:
                child = SchemaNode(
                    None,
                    kind=node.kind,
                    instances=node.instances,
                    cluster=cluster_name,
                    name=f"{node.name}:{cluster_name}",
                )
                children.append(child)
                self._clusters[cluster_name].members[interface_name] = child
            expanded = SchemaNode(node.label, children, name=node.name)
            if node.parent is None:
                raise ValueError(
                    f"cannot expand root-level field {node.name} of {interface_name}"
                )
            node.parent.replace_child(node, expanded)
            record = ExpansionRecord(
                interface=interface_name,
                field_label=node.label,
                clusters=tuple(cluster_names),
            )
            performed.append(record)
        self.expansions.extend(performed)
        return performed

    def validate_one_to_one(self) -> None:
        """Raise if any field still belongs to more than one cluster."""
        seen: dict[tuple[str, int], str] = {}
        for cluster in self._clusters.values():
            for interface_name, node in cluster.members.items():
                key = (interface_name, id(node))
                if key in seen:
                    raise ValueError(
                        f"field {node.name} of {interface_name} is in both "
                        f"{seen[key]} and {cluster.name}"
                    )
                seen[key] = cluster.name
