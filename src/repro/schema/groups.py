"""Groups of clusters and the C_groups / C_root / C_int partition (Sec. 3).

"Based on the placement of the fields in the integrated schema tree, the set
of clusters is divided into three disjoint partitions: the set of clusters
that belong to some group (C_groups), the set of clusters that are children
of the root (C_root) and the set of clusters that are isolated children of
internal nodes, other than the root (C_int)."

The partition is computed from the integrated tree alone: leaves that share
a non-root parent form a regular group (two or more of them); a lone leaf
child of a non-root internal node is isolated; leaf children of the root
form the special root group, which accepts partially consistent solutions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .tree import SchemaNode

__all__ = ["GroupKind", "Group", "GroupPartition", "partition_clusters"]


class GroupKind(str, Enum):
    REGULAR = "regular"      # members of C_groups
    ROOT = "root"            # the C_root pseudo-group
    ISOLATED = "isolated"    # singleton clusters in C_int


@dataclass(frozen=True)
class Group:
    """A semantic unit of clusters under one parent of the integrated tree."""

    name: str
    kind: GroupKind
    clusters: tuple[str, ...]
    parent_name: str

    @property
    def is_isolated(self) -> bool:
        return self.kind is GroupKind.ISOLATED

    def __len__(self) -> int:
        return len(self.clusters)


@dataclass
class GroupPartition:
    """The three-way partition of an integrated tree's clusters."""

    regular: list[Group]
    root_group: Group | None
    isolated: list[Group]

    def all_groups(self) -> list[Group]:
        """Every group, regular first, then root, then isolated singletons."""
        groups = list(self.regular)
        if self.root_group is not None:
            groups.append(self.root_group)
        groups.extend(self.isolated)
        return groups

    def c_groups(self) -> list[tuple[str, ...]]:
        return [g.clusters for g in self.regular]

    def c_root(self) -> tuple[str, ...]:
        return self.root_group.clusters if self.root_group else ()

    def c_int(self) -> tuple[str, ...]:
        return tuple(cluster for g in self.isolated for cluster in g.clusters)

    def group_of(self, cluster: str) -> Group | None:
        for group in self.all_groups():
            if cluster in group.clusters:
                return group
        return None


def partition_clusters(integrated_root: SchemaNode) -> GroupPartition:
    """Compute the C_groups / C_root / C_int partition of Section 3.

    Every leaf of the integrated tree must carry a ``cluster`` name.
    Group names are derived from the parent node's ``name`` so they are
    stable across runs of the same tree.
    """
    regular: list[Group] = []
    isolated: list[Group] = []
    root_clusters: list[str] = []

    for node in integrated_root.walk():
        if node.is_leaf:
            if node.cluster is None:
                raise ValueError(
                    f"integrated leaf {node.name!r} has no cluster assignment"
                )
            continue
        leaf_children = [child for child in node.children if child.is_leaf]
        if not leaf_children:
            continue
        clusters = tuple(child.cluster for child in leaf_children)
        if node is integrated_root:
            root_clusters.extend(clusters)
        elif len(leaf_children) >= 2:
            regular.append(
                Group(
                    name=f"group:{node.name}",
                    kind=GroupKind.REGULAR,
                    clusters=clusters,
                    parent_name=node.name,
                )
            )
        else:
            isolated.append(
                Group(
                    name=f"isolated:{clusters[0]}",
                    kind=GroupKind.ISOLATED,
                    clusters=clusters,
                    parent_name=node.name,
                )
            )

    root_group = None
    if root_clusters:
        root_group = Group(
            name="group:root",
            kind=GroupKind.ROOT,
            clusters=tuple(root_clusters),
            parent_name=integrated_root.name,
        )
    return GroupPartition(regular=regular, root_group=root_group, isolated=isolated)
