"""Query interfaces: a named schema tree plus interface-level measures.

A :class:`QueryInterface` wraps the root :class:`SchemaNode` of one source
(or of the integrated interface) and exposes the per-interface statistics
the paper reports in Table 6: number of leaves, number of internal nodes,
depth, and labeling quality (LQ — the fraction of nodes that carry labels).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .tree import FieldKind, SchemaNode, depth_of

__all__ = ["QueryInterface", "FieldKind", "make_field", "make_group"]


def make_field(
    label: str | None,
    *,
    kind: FieldKind = FieldKind.TEXT_BOX,
    instances: tuple[str, ...] = (),
    cluster: str | None = None,
    name: str | None = None,
) -> SchemaNode:
    """Convenience constructor for a leaf field node."""
    return SchemaNode(
        label, kind=kind, instances=tuple(instances), cluster=cluster, name=name
    )


def make_group(label: str | None, children, *, name: str | None = None) -> SchemaNode:
    """Convenience constructor for an internal (group) node."""
    return SchemaNode(label, list(children), name=name)


@dataclass
class QueryInterface:
    """One form-based search interface, abstracted as an ordered schema tree."""

    name: str
    root: SchemaNode
    domain: str | None = None
    url: str | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.root.validate()

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------

    def fields(self) -> list[SchemaNode]:
        """The leaf fields in interface order.

        A childless root is an *empty* interface, not a one-field one —
        the root node itself is never a field.
        """
        return [node for node in self.root.leaves() if node is not self.root]

    def internal_nodes(self, include_root: bool = True) -> list[SchemaNode]:
        nodes = self.root.internal_nodes()
        if not include_root and nodes and nodes[0] is self.root:
            nodes = nodes[1:]
        return nodes

    def field_by_name(self, name: str) -> SchemaNode:
        node = self.root.find_by_name(name)
        if node is None or not node.is_leaf:
            raise KeyError(f"{self.name}: no field named {name!r}")
        return node

    # ------------------------------------------------------------------
    # Table 6 measures (columns 2-5).
    # ------------------------------------------------------------------

    def leaf_count(self) -> int:
        return len(self.fields())

    def internal_node_count(self, include_root: bool = False) -> int:
        """Internal nodes below the root — the paper counts (super)groups,
        not the implicit root of the form itself."""
        return len(self.internal_nodes(include_root=include_root))

    def depth(self) -> int:
        return depth_of(self.root)

    def labeling_quality(self) -> float:
        """LQ: fraction of nodes (leaves + internal, excl. root) labeled."""
        nodes = [node for node in self.root.walk() if node is not self.root]
        if not nodes:
            return 1.0
        labeled = sum(1 for node in nodes if node.is_labeled)
        return labeled / len(nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QueryInterface({self.name!r}, fields={self.leaf_count()}, "
            f"depth={self.depth()})"
        )
