"""repro.service — the labeling pipeline as a long-lived, concurrent service.

The paper's workload is inherently online: a deep-web integrator crawls
query interfaces continuously and must label each freshly integrated
interface.  This package wraps the one-shot pipeline in the pieces that
workload needs:

``fingerprint``  stable content hashes of (corpus, lexicon overlay,
                 naming options) — the cache key;
``cache``        a thread-safe LRU result cache; :class:`ResultCache`
                 adds per-entry checksums so a corrupted entry is evicted
                 and recomputed, never served;
``engine``       :class:`LabelingEngine` — request validation, cache
                 consultation, pipeline execution, a batch executor with
                 per-item timeout and error isolation, plus the resilience
                 stack (retry, per-corpus circuit breaker, fault-plan
                 scope, strict oracle verification);
``parallel``     worker warm-up and the shared CPU-derived ``--jobs``
                 default for the process batch backend
                 (``executor="process"``);
``diskcache``    a persistent, CRC-checked JSONL warm-start layer under
                 the in-memory result cache;
``server``       a stdlib-only HTTP JSON API (``POST /label``,
                 ``POST /batch``, ``GET /healthz``, ``GET /metrics``,
                 ``GET /trace/<request_id>``) behind a bounded admission
                 queue (429 + ``Retry-After`` on overload), with
                 request-scoped tracing (:mod:`repro.obs`) and a
                 ``request_id`` echoed on every POST response;
``client``       a urllib client that honors the service's backpressure.

Start a server with ``python -m repro serve`` or in-process::

    from repro.service import LabelingServer, ServiceClient

    with LabelingServer(port=0) as server:
        client = ServiceClient(server.url)
        print(client.label(domain="airline")["classification"])
"""

from .cache import CacheStats, LRUCache, ResultCache
from .client import ServiceClient, ServiceError
from .diskcache import DiskCache
from .engine import (
    BatchOutcome,
    LabelingEngine,
    LabelingRequest,
    RequestError,
    execute_batch,
)
from .fingerprint import corpus_fingerprint, fingerprint_document
from .parallel import default_jobs, normalize_jobs
from .server import LabelingServer, MetricsRegistry, PayloadTooLargeError

__all__ = [
    "BatchOutcome",
    "CacheStats",
    "DiskCache",
    "LRUCache",
    "LabelingEngine",
    "LabelingRequest",
    "LabelingServer",
    "MetricsRegistry",
    "PayloadTooLargeError",
    "RequestError",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "corpus_fingerprint",
    "default_jobs",
    "execute_batch",
    "fingerprint_document",
    "normalize_jobs",
]
