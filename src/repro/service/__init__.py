"""repro.service — the labeling pipeline as a long-lived, concurrent service.

The paper's workload is inherently online: a deep-web integrator crawls
query interfaces continuously and must label each freshly integrated
interface.  This package wraps the one-shot pipeline in the pieces that
workload needs:

``fingerprint``  stable content hashes of (corpus, lexicon overlay,
                 naming options) — the cache key;
``cache``        a thread-safe LRU result cache with hit/miss/eviction
                 counters;
``engine``       :class:`LabelingEngine` — request validation, cache
                 consultation, pipeline execution, and a batch executor
                 with per-item timeout and error isolation;
``server``       a stdlib-only HTTP JSON API (``POST /label``,
                 ``POST /batch``, ``GET /healthz``, ``GET /metrics``);
``client``       a urllib client for tests, examples and benchmarks.

Start a server with ``python -m repro serve`` or in-process::

    from repro.service import LabelingServer, ServiceClient

    with LabelingServer(port=0) as server:
        client = ServiceClient(server.url)
        print(client.label(domain="airline")["classification"])
"""

from .cache import CacheStats, LRUCache
from .client import ServiceClient, ServiceError
from .engine import (
    BatchOutcome,
    LabelingEngine,
    LabelingRequest,
    RequestError,
    execute_batch,
)
from .fingerprint import corpus_fingerprint, fingerprint_document
from .server import LabelingServer, MetricsRegistry

__all__ = [
    "BatchOutcome",
    "CacheStats",
    "LRUCache",
    "LabelingEngine",
    "LabelingRequest",
    "LabelingServer",
    "MetricsRegistry",
    "RequestError",
    "ServiceClient",
    "ServiceError",
    "corpus_fingerprint",
    "execute_batch",
    "fingerprint_document",
]
