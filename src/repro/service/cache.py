"""A thread-safe LRU cache for labeling results, with observable counters.

The labeling pipeline is deterministic, so a result keyed by the corpus
fingerprint (:mod:`repro.service.fingerprint`) never goes stale — the only
eviction policy needed is capacity.  The cache is a plain ordered-dict LRU
guarded by a lock: correct under the ``ThreadingHTTPServer``/executor
concurrency the service runs with, and cheap enough that a hit costs
microseconds against the pipeline's tens of milliseconds.

:class:`ResultCache` layers integrity on top: every stored response is
checksummed (CRC-32 over its canonical JSON) at put time and re-verified
at get time.  An entry whose bytes no longer match — a chaos ``corrupt``
fault, or real memory/serialization rot — is *evicted and reported as a
miss*, so the engine recomputes instead of serving a silently wrong
labeling.  The pipeline being deterministic makes that recovery exact.

Counters (hits / misses / evictions / corruptions) are part of the public
contract — ``GET /metrics`` reports them, and operators size ``capacity``
(and alarm on ``corruptions``) from them.
"""

from __future__ import annotations

import copy
import json
import threading
import zlib
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "LRUCache", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int
    corruptions: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (what ``GET /metrics`` embeds)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "corruptions": self.corruptions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Least-recently-used mapping with a capacity bound and counters.

    ``get`` refreshes recency; ``put`` evicts the coldest entry once
    ``capacity`` is exceeded.  ``capacity <= 0`` disables storage entirely
    (every lookup is a miss) so a service can run cache-less without a
    second code path.  All operations are safe to call from any thread.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str):
        """The cached value for ``key`` (refreshed as most recent), or ``None``."""
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries over capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


def _checksum(value) -> int:
    """CRC-32 over the value's canonical JSON — the integrity fingerprint.

    Responses are JSON-ready dicts by construction, so canonical JSON is a
    faithful byte image; CRC-32 is plenty against the accidental/injected
    corruption this guards (it is not a cryptographic seal).
    """
    canonical = json.dumps(
        value, sort_keys=True, separators=(",", ":"), default=str
    )
    return zlib.crc32(canonical.encode("utf-8"))


class ResultCache(LRUCache):
    """An :class:`LRUCache` whose entries carry an integrity checksum.

    ``put`` stores ``(value, crc)``; ``get`` recomputes the CRC and treats
    a mismatch as *eviction + miss* — a corrupted labeling is never served.
    The ``corrupt`` method flips a stored entry in place; it exists for the
    chaos plan's ``cache.get``/``corrupt`` faults and the integrity tests,
    which use it to prove the read path catches exactly this.
    """

    def __init__(self, capacity: int = 128) -> None:
        super().__init__(capacity=capacity)
        self._corruptions = 0

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            value, crc = entry
            if _checksum(value) != crc:
                # Integrity failure: drop the entry, report a miss — the
                # caller recomputes and the deterministic pipeline restores
                # the exact result the corrupted entry used to hold.
                del self._entries[key]
                self._corruptions += 1
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: str, value) -> None:
        super().put(key, (value, _checksum(value)))

    def corrupt(self, key: str) -> bool:
        """Tamper with the stored entry for ``key`` (chaos/test hook).

        Flips the cached value without refreshing its checksum, exactly
        like bit rot would; returns whether an entry existed to corrupt.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return False
            value, crc = entry
            tampered = copy.deepcopy(value)
            if isinstance(tampered, dict):
                tampered["fingerprint"] = "corrupted-" + str(
                    tampered.get("fingerprint", "")
                )
                if isinstance(tampered.get("field_labels"), dict):
                    for cluster in tampered["field_labels"]:
                        tampered["field_labels"][cluster] = "CORRUPTED"
                        break
            else:
                tampered = ("corrupted", tampered)
            self._entries[key] = (tampered, crc)
            return True

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
                corruptions=self._corruptions,
            )
