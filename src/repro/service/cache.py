"""A thread-safe LRU cache for labeling results, with observable counters.

The labeling pipeline is deterministic, so a result keyed by the corpus
fingerprint (:mod:`repro.service.fingerprint`) never goes stale — the only
eviction policy needed is capacity.  The cache is a plain ordered-dict LRU
guarded by a lock: correct under the ``ThreadingHTTPServer``/executor
concurrency the service runs with, and cheap enough that a hit costs
microseconds against the pipeline's tens of milliseconds.

Counters (hits / misses / evictions) are part of the public contract —
``GET /metrics`` reports them, and operators size ``capacity`` from them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "LRUCache"]


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of the cache's counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, 0.0 before the first lookup."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form (what ``GET /metrics`` embeds)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Least-recently-used mapping with a capacity bound and counters.

    ``get`` refreshes recency; ``put`` evicts the coldest entry once
    ``capacity`` is exceeded.  ``capacity <= 0`` disables storage entirely
    (every lookup is a miss) so a service can run cache-less without a
    second code path.  All operations are safe to call from any thread.
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = int(capacity)
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str):
        """The cached value for ``key`` (refreshed as most recent), or ``None``."""
        with self._lock:
            if key not in self._entries:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return self._entries[key]

    def put(self, key: str, value) -> None:
        """Store ``value`` under ``key``, evicting LRU entries over capacity."""
        if self.capacity <= 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters keep accumulating)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """A consistent :class:`CacheStats` snapshot."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )
