"""A small urllib client for the labeling service — no dependencies.

Used by the tests, the examples and the benchmark to exercise the real
HTTP surface; also a reasonable starting point for callers in other
processes.  Every method returns the decoded JSON payload; non-2xx
responses raise :class:`ServiceError` carrying the status code and the
server's error payload.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.serialize import corpus_to_dict

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, payload: dict | None, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """Talk JSON to a running labeling service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP round trip; decoded JSON back, :class:`ServiceError` on failure."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as response:
                return json.loads(response.read())
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                error_payload = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                error_payload = None
            message = (
                error_payload.get("error") if error_payload else raw.decode("utf-8", "replace")
            )
            raise ServiceError(exc.code, error_payload, message or exc.reason) from None

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self.request("GET", "/metrics")

    def label(
        self,
        corpus: dict | None = None,
        domain: str | None = None,
        seed: int = 0,
        options: dict | None = None,
        lexicon: dict | None = None,
        lint: bool = False,
        timeout: float | None = None,
    ) -> dict:
        """``POST /label`` with either a corpus document or a domain name."""
        payload: dict = {}
        if corpus is not None:
            payload["corpus"] = corpus
        if domain is not None:
            payload["domain"] = domain
            payload["seed"] = seed
        if options:
            payload["options"] = options
        if lexicon:
            payload["lexicon"] = lexicon
        if lint:
            payload["lint"] = True
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/label", payload)

    def label_corpus(
        self, interfaces: list[QueryInterface], mapping: Mapping, **kwargs
    ) -> dict:
        """Serialize in-memory corpus objects and ``POST /label`` them."""
        return self.label(corpus=corpus_to_dict(interfaces, mapping), **kwargs)

    def batch(
        self,
        requests: list[dict],
        jobs: int | None = None,
        timeout: float | None = None,
    ) -> dict:
        """``POST /batch`` over a list of label-request payloads."""
        payload: dict = {"requests": requests}
        if jobs is not None:
            payload["jobs"] = jobs
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/batch", payload)
