"""A small urllib client for the labeling service — no dependencies.

Used by the tests, the examples and the benchmark to exercise the real
HTTP surface; also a reasonable starting point for callers in other
processes.  Every method returns the decoded JSON payload; failures raise
:class:`ServiceError` carrying the HTTP status (``0`` when no response
arrived at all — connection refused, DNS failure, a non-JSON body) and the
server's error payload when there was one.

The client cooperates with the service's backpressure: an HTTP 429
(admission shed) or 503 (open circuit breaker / transient exhaustion)
response is retried up to ``retries`` times, sleeping whatever
``retry_after`` the response names (payload field or ``Retry-After``
header, capped at ``max_backoff_s``).  Connection-level failures retry on
a fixed ``backoff_s`` — the server may simply not be up yet.  Everything
else (400, 404, 500, 504) is not retried: those are answers.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.serialize import corpus_to_dict

__all__ = ["ServiceClient", "ServiceError"]

#: Statuses that signal "try again shortly" rather than "you are wrong".
_RETRYABLE_STATUSES = (429, 503)


class ServiceError(RuntimeError):
    """A failed service call: non-2xx, unreachable, or an unparseable body."""

    def __init__(self, status: int, payload: dict | None, message: str) -> None:
        super().__init__(
            f"HTTP {status}: {message}" if status else message
        )
        self.status = status
        # A misbehaving (or non-repro) server can answer with any JSON
        # value; only a dict is a usable error payload — anything else
        # would break the retry loop's ``payload.get(...)`` probes.
        self.payload = payload if isinstance(payload, dict) else {}


class ServiceClient:
    """Talk JSON to a running labeling service at ``base_url``."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 2.0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff_s = float(backoff_s)
        self.max_backoff_s = float(max_backoff_s)
        #: How many attempts the most recent ``request`` call used.
        self.last_attempts = 0

    # ------------------------------------------------------------------
    # Transport.
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        request_id: str | None = None,
    ) -> dict:
        """One logical call (with backpressure retries); decoded JSON back.

        ``request_id`` rides as ``X-Request-Id`` so the server correlates
        every attempt (and its trace) with this logical call.
        """
        attempts = self.retries + 1
        for attempt in range(1, attempts + 1):
            self.last_attempts = attempt
            try:
                return self._round_trip(method, path, payload, request_id)
            except ServiceError as exc:
                retryable = exc.status in _RETRYABLE_STATUSES or exc.status == 0
                if not retryable or attempt >= attempts:
                    raise
                time.sleep(self._delay_for(exc))
        raise AssertionError("unreachable")  # pragma: no cover

    def _delay_for(self, exc: ServiceError) -> float:
        """The server's ``retry_after`` when stated, else the fixed backoff."""
        retry_after = exc.payload.get("retry_after") if exc.payload else None
        if retry_after is None:
            retry_after = getattr(exc, "retry_after_header", None)
        try:
            delay = float(retry_after) if retry_after is not None else self.backoff_s
        except (TypeError, ValueError):
            delay = self.backoff_s
        return max(0.0, min(delay, self.max_backoff_s))

    def _round_trip(
        self,
        method: str,
        path: str,
        payload: dict | None,
        request_id: str | None = None,
    ) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as response:
                raw = response.read()
                try:
                    return json.loads(raw)
                except (json.JSONDecodeError, ValueError):
                    raise ServiceError(
                        0,
                        None,
                        f"response body is not valid JSON: {raw[:80]!r}",
                    ) from None
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                error_payload = json.loads(raw)
            except (json.JSONDecodeError, ValueError):
                error_payload = None
            if not isinstance(error_payload, dict):
                error_payload = None
            message = (
                error_payload.get("error")
                if error_payload
                else raw.decode("utf-8", "replace")
            )
            error = ServiceError(exc.code, error_payload, message or exc.reason)
            error.retry_after_header = exc.headers.get("Retry-After")
            raise error from None
        except urllib.error.URLError as exc:
            # No HTTP response at all: refused, unresolvable, timed out.
            raise ServiceError(
                0, None, f"connection to {self.base_url} failed: {exc.reason}"
            ) from None

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def healthz(self) -> dict:
        """``GET /healthz``."""
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        """``GET /metrics``."""
        return self.request("GET", "/metrics")

    def label(
        self,
        corpus: dict | None = None,
        domain: str | None = None,
        seed: int = 0,
        options: dict | None = None,
        lexicon: dict | None = None,
        lint: bool = False,
        timeout: float | None = None,
        request_id: str | None = None,
    ) -> dict:
        """``POST /label`` with either a corpus document or a domain name."""
        payload: dict = {}
        if corpus is not None:
            payload["corpus"] = corpus
        if domain is not None:
            payload["domain"] = domain
            payload["seed"] = seed
        if options:
            payload["options"] = options
        if lexicon:
            payload["lexicon"] = lexicon
        if lint:
            payload["lint"] = True
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/label", payload, request_id=request_id)

    def label_corpus(
        self, interfaces: list[QueryInterface], mapping: Mapping, **kwargs
    ) -> dict:
        """Serialize in-memory corpus objects and ``POST /label`` them."""
        return self.label(corpus=corpus_to_dict(interfaces, mapping), **kwargs)

    def batch(
        self,
        requests: list[dict],
        jobs: int | None = None,
        timeout: float | None = None,
        request_id: str | None = None,
    ) -> dict:
        """``POST /batch`` over a list of label-request payloads."""
        payload: dict = {"requests": requests}
        if jobs is not None:
            payload["jobs"] = jobs
        if timeout is not None:
            payload["timeout"] = timeout
        return self.request("POST", "/batch", payload, request_id=request_id)

    def trace(self, request_id: str) -> dict:
        """``GET /trace/<request_id>`` — the span trace of a served request."""
        return self.request("GET", f"/trace/{request_id}")
