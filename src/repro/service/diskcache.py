"""Persistent warm-start layer under the in-memory :class:`ResultCache`.

A :class:`DiskCache` is an append-only JSONL segment store living in one
directory.  Each record is a single line::

    {"k": <corpus fingerprint>, "e": <engine-config fingerprint>,
     "crc": <CRC-32 of the value's canonical JSON>, "v": <response dict>}

The two fingerprints jointly key an entry: ``k`` describes the input
(:func:`repro.service.fingerprint.corpus_fingerprint`) and ``e`` describes
the computation (response format + verify mode + lexicon content, see
:meth:`repro.service.engine.LabelingEngine.engine_fingerprint`) — a cache
directory can therefore be shared across engine configurations without
ever serving a result computed under different semantics.

Design points:

* **Append-only writes.**  A ``put`` appends one line and flushes; there
  is no in-place mutation, so a crash mid-write can at worst leave one
  truncated final line (which the CRC check then skips).
* **CRC-verified reads.**  Every record is checked at load time against
  its stored CRC-32; a corrupt or truncated record is counted, reported
  via :meth:`stats`, and never served — the engine just recomputes.
* **Compaction.**  When the live segment grows past ``max_bytes`` the
  store rewrites one latest record per ``(e, k)`` pair into a fresh
  segment (atomic ``os.replace``) and deletes the old ones.  Records
  belonging to *other* engine configurations are preserved verbatim.
* **Startup load.**  The whole store is read once at construction into a
  plain dict, so a warm restart serves every previously computed corpus
  with zero recomputation; ``load_ms`` is reported in ``/metrics``.

All mutating operations are lock-guarded; the engine may call ``put``
from many batch worker threads at once.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
import zlib
from pathlib import Path

__all__ = ["DiskCache"]

log = logging.getLogger(__name__)

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _canonical(value) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"), default=str)


def _crc(value) -> int:
    return zlib.crc32(_canonical(value).encode("utf-8"))


class DiskCache:
    """Append-only JSONL result store with CRC-checked warm-start loading."""

    def __init__(
        self,
        directory: str | Path,
        engine_fingerprint: str,
        max_bytes: int = 4 * 1024 * 1024,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.engine_fingerprint = engine_fingerprint
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        # Live entries for THIS engine configuration (corpus fp -> value)
        # and the latest raw line per foreign (e, k) pair — carried through
        # compaction so other configurations keep their warm starts.
        self._entries: dict[str, object] = {}
        self._foreign: dict[tuple[str, str], str] = {}
        self._hits = 0
        self._misses = 0
        self._corrupt_records = 0
        self._compactions = 0
        self._load_ms = 0.0
        self._load()

    # ------------------------------------------------------------------
    # Load / read path.
    # ------------------------------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(
            p
            for p in self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.is_file()
        )

    def _load(self) -> None:
        start = time.perf_counter()
        for segment in self._segments():
            try:
                lines = segment.read_text("utf-8").splitlines()
            except OSError as exc:  # pragma: no cover - unreadable segment
                log.warning("disk cache: cannot read %s: %s", segment, exc)
                continue
            for lineno, line in enumerate(lines, 1):
                if not line.strip():
                    continue
                record = self._decode(line)
                if record is None:
                    self._corrupt_records += 1
                    log.warning(
                        "disk cache: skipping corrupt record %s:%d",
                        segment.name,
                        lineno,
                    )
                    continue
                key, engine_fp, value = record
                if engine_fp == self.engine_fingerprint:
                    self._entries[key] = value
                else:
                    self._foreign[(engine_fp, key)] = line
        self._load_ms = round((time.perf_counter() - start) * 1000.0, 3)

    @staticmethod
    def _decode(line: str):
        """Parse + CRC-verify one record line; ``None`` if it cannot be served."""
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict):
            return None
        key, engine_fp = record.get("k"), record.get("e")
        if not isinstance(key, str) or not isinstance(engine_fp, str):
            return None
        if "v" not in record or _crc(record["v"]) != record.get("crc"):
            return None
        return key, engine_fp, record["v"]

    def get(self, key: str):
        """The stored value for ``key`` under this engine config, or ``None``.

        Values were CRC-verified at load/put time; callers deep-copy before
        mutating (the engine already does for every cache layer).
        """
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._hits += 1
            return value

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Write path.
    # ------------------------------------------------------------------

    def _active_segment(self) -> Path:
        segments = self._segments()
        if segments:
            return segments[-1]
        return self.directory / f"{_SEGMENT_PREFIX}00000{_SEGMENT_SUFFIX}"

    def _next_segment(self) -> Path:
        segments = self._segments()
        index = 0
        if segments:
            stem = segments[-1].name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            try:
                index = int(stem) + 1
            except ValueError:  # pragma: no cover - alien file name
                index = len(segments)
        return self.directory / f"{_SEGMENT_PREFIX}{index:05d}{_SEGMENT_SUFFIX}"

    def put(self, key: str, value) -> None:
        """Append one record and remember it; compact past ``max_bytes``."""
        line = json.dumps(
            {"k": key, "e": self.engine_fingerprint, "crc": _crc(value), "v": value},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        with self._lock:
            self._entries[key] = value
            segment = self._active_segment()
            with segment.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
            try:
                size = segment.stat().st_size
            except OSError:  # pragma: no cover - raced deletion
                size = 0
            if size > self.max_bytes:
                self._compact()

    def _compact(self) -> None:
        """Rewrite one latest record per key into a fresh segment (atomic).

        Caller holds the lock.  The new segment is written to a temp file
        and ``os.replace``d into place before the old segments are removed,
        so a crash at any point leaves a loadable store.
        """
        old_segments = self._segments()
        target = self._next_segment()
        tmp = target.with_suffix(".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for key in sorted(self._entries):
                value = self._entries[key]
                handle.write(
                    json.dumps(
                        {
                            "k": key,
                            "e": self.engine_fingerprint,
                            "crc": _crc(value),
                            "v": value,
                        },
                        sort_keys=True,
                        separators=(",", ":"),
                        default=str,
                    )
                    + "\n"
                )
            for line in self._foreign.values():
                handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        for segment in old_segments:
            if segment != target:
                try:
                    segment.unlink()
                except OSError:  # pragma: no cover - raced deletion
                    pass
        self._compactions += 1

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """JSON-ready counters (the ``disk`` section of ``GET /metrics``)."""
        with self._lock:
            segments = self._segments()
            try:
                size_bytes = sum(s.stat().st_size for s in segments)
            except OSError:  # pragma: no cover - raced deletion
                size_bytes = 0
            return {
                "directory": str(self.directory),
                "entries": len(self._entries),
                "foreign_entries": len(self._foreign),
                "hits": self._hits,
                "misses": self._misses,
                "corrupt_records": self._corrupt_records,
                "compactions": self._compactions,
                "segments": len(segments),
                "size_bytes": size_bytes,
                "load_ms": self._load_ms,
            }
