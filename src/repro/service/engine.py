"""The long-lived labeling engine: validation, caching, batch fan-out.

One :class:`LabelingEngine` wraps the naming pipeline
(:func:`repro.core.pipeline.label_corpus`) as a service-shaped component:

* **requests in, JSON out** — a request names either a registered domain
  (``{"domain": "airline", "seed": 0}``) or carries a full corpus document
  (the ``save_corpus`` shape), plus optional naming options, a lexicon
  overlay, and a lint flag; the response is a JSON-ready dict with the
  labeled tree, per-cluster labels and the Definition-8 classification;
* **result caching** — responses are cached in a thread-safe LRU keyed by
  the corpus fingerprint (:mod:`repro.service.fingerprint`); the pipeline
  is deterministic, so entries never go stale;
* **batch execution** — :func:`execute_batch` fans any list of thunks over
  a ``ThreadPoolExecutor`` with per-item timeout and structured
  :class:`BatchOutcome` results: one bad corpus degrades to an error entry
  and never kills the batch.  ``repro table6 --jobs N`` and
  :func:`repro.experiment.run_all_domains` ride the same executor.

The engine holds no request state between calls and all shared state (the
cache, counters) is lock-guarded, so one engine instance safely serves the
``ThreadingHTTPServer`` in :mod:`repro.service.server`.
"""

from __future__ import annotations

import contextvars
import copy
import json
import logging
import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..core.pipeline import NamingOptions, label_corpus
from ..obs.tracer import Span, current_span, current_trace
from ..obs.tracer import event as obs_event
from ..obs.tracer import is_active as obs_is_active
from ..obs.tracer import span as obs_span
from ..core.semantics import SemanticComparator
from ..perf import aggregate_stats
from ..resilience import (
    BreakerPolicy,
    CircuitBreaker,
    CircuitOpenError,
    FaultPlan,
    RetryPolicy,
    TransientFault,
    fault_scope,
    maybe_inject,
)
from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.serialize import (
    interface_from_dict,
    mapping_from_dict,
    node_to_dict,
)
from .cache import ResultCache
from .fingerprint import corpus_fingerprint, options_from_dict, options_to_dict

__all__ = [
    "BatchOutcome",
    "LabelingEngine",
    "LabelingRequest",
    "RequestError",
    "execute_batch",
]

log = logging.getLogger(__name__)


class RequestError(ValueError):
    """A request that cannot be executed (maps to HTTP 400)."""


@dataclass
class LabelingRequest:
    """One validated unit of work for the engine."""

    interfaces: list[QueryInterface]
    mapping: Mapping
    options: NamingOptions
    lexicon: dict | None = None
    domain: str | None = None
    include_lint: bool = False
    timeout: float | None = None
    fingerprint: str = field(default="", repr=False)

    @classmethod
    def from_payload(cls, payload) -> "LabelingRequest":
        """Parse + validate an untrusted JSON payload (raises :class:`RequestError`)."""
        if not isinstance(payload, dict):
            raise RequestError("request payload must be a JSON object")
        has_corpus = "corpus" in payload
        has_domain = "domain" in payload
        if has_corpus == has_domain:
            raise RequestError(
                "request must carry exactly one of 'corpus' or 'domain'"
            )

        try:
            options = options_from_dict(payload.get("options"))
        except ValueError as exc:
            raise RequestError(str(exc)) from None

        lexicon = payload.get("lexicon")
        if lexicon is not None:
            if not isinstance(lexicon, dict):
                raise RequestError("'lexicon' must be an object with synsets/hypernyms")
            from ..lexicon.io import wordnet_from_dict

            try:  # validate eagerly so bad overlays fail as 400, not 500
                wordnet_from_dict(lexicon, extend_default=False)
            except (ValueError, TypeError) as exc:
                raise RequestError(f"invalid lexicon overlay: {exc}") from None

        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise RequestError("'timeout' must be a number of seconds") from None
            if timeout <= 0:
                raise RequestError("'timeout' must be positive")

        domain = None
        if has_domain:
            from ..datasets.registry import DOMAINS, load_domain

            domain = payload["domain"]
            if domain not in DOMAINS:
                known = ", ".join(sorted(DOMAINS))
                raise RequestError(f"unknown domain {domain!r}; known: {known}")
            seed = payload.get("seed", 0)
            if not isinstance(seed, int) or isinstance(seed, bool):
                raise RequestError("'seed' must be an integer")
            dataset = load_domain(domain, seed=seed)
            interfaces, mapping = dataset.interfaces, dataset.mapping
        else:
            corpus = payload["corpus"]
            if not isinstance(corpus, dict):
                raise RequestError("'corpus' must be an object")
            if not isinstance(corpus.get("interfaces"), list) or not corpus["interfaces"]:
                raise RequestError("'corpus.interfaces' must be a non-empty array")
            if not isinstance(corpus.get("mapping"), dict):
                raise RequestError("'corpus.mapping' must be an object")
            try:
                interfaces = [
                    interface_from_dict(d) for d in corpus["interfaces"]
                ]
                mapping = mapping_from_dict(corpus["mapping"], interfaces)
            except (KeyError, TypeError, ValueError, AttributeError) as exc:
                raise RequestError(f"malformed corpus: {exc}") from None

        # Fingerprint before the 1:m reduction mutates the trees: the key
        # must describe the *input*, which is what a repeat request carries.
        digest = corpus_fingerprint(
            interfaces, mapping, options=options, lexicon=lexicon
        )
        return cls(
            interfaces=interfaces,
            mapping=mapping,
            options=options,
            lexicon=lexicon,
            domain=domain,
            include_lint=bool(payload.get("lint", False)),
            timeout=timeout,
            fingerprint=digest,
        )


@dataclass
class BatchOutcome:
    """Structured result of one batch item: a value or a classified error.

    ``detail`` carries error-type-specific structure (``retry_after`` for a
    shed, the injected-fault trail for a transient exhaustion) that batch
    entries surface verbatim; ``exception`` keeps the original object so a
    timeout-wrapped single request can re-raise it with its type intact.
    """

    ok: bool
    value: object = None
    error: str | None = None
    error_type: str | None = None
    elapsed_ms: float = 0.0
    detail: dict | None = None
    exception: BaseException | None = None


def _run_timed(task: Callable[[], object]) -> BatchOutcome:
    start = time.perf_counter()
    try:
        value = task()
    except RequestError as exc:
        elapsed = (time.perf_counter() - start) * 1000.0
        return BatchOutcome(
            ok=False, error=str(exc), error_type="invalid_request",
            elapsed_ms=elapsed, exception=exc,
        )
    except CircuitOpenError as exc:
        elapsed = (time.perf_counter() - start) * 1000.0
        return BatchOutcome(
            ok=False,
            error=str(exc),
            error_type="circuit_open",
            elapsed_ms=elapsed,
            detail={"retry_after": round(exc.retry_after, 3)},
            exception=exc,
        )
    except TransientFault as exc:
        elapsed = (time.perf_counter() - start) * 1000.0
        return BatchOutcome(
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            error_type="transient",
            elapsed_ms=elapsed,
            detail={
                "resilience": {
                    "attempts": getattr(exc, "retry_attempts", 1),
                    "faults": list(getattr(exc, "fault_events", [])),
                }
            },
            exception=exc,
        )
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        elapsed = (time.perf_counter() - start) * 1000.0
        return BatchOutcome(
            ok=False,
            error=f"{type(exc).__name__}: {exc}",
            error_type="internal",
            elapsed_ms=elapsed,
            exception=exc,
        )
    elapsed = (time.perf_counter() - start) * 1000.0
    return BatchOutcome(ok=True, value=value, elapsed_ms=elapsed)


def _run_timed_chunk(tasks: Sequence[Callable[[], object]]) -> list[BatchOutcome]:
    """Worker-side body for the process backend: run a chunk of tasks.

    Same classification as :func:`_run_timed`, but ``exception`` is dropped
    from every outcome — exception objects are not reliably picklable and
    the parent only needs the classified ``error``/``error_type``/``detail``.
    """
    outcomes = []
    for task in tasks:
        outcome = _run_timed(task)
        outcome.exception = None
        outcomes.append(outcome)
    return outcomes


def _timeout_outcome(timeout: float | None) -> BatchOutcome:
    return BatchOutcome(
        ok=False,
        error=f"timed out after {timeout:g}s",
        error_type="timeout",
        elapsed_ms=(timeout or 0.0) * 1000.0,
    )


def _chunk_tasks(tasks: Sequence, chunksize: int) -> list[tuple[int, list]]:
    """Split ``tasks`` into ``(start_index, chunk)`` pairs of ``chunksize``."""
    return [
        (start, list(tasks[start : start + chunksize]))
        for start in range(0, len(tasks), chunksize)
    ]


def execute_batch(
    tasks: Sequence[Callable[[], object]],
    jobs: int = 1,
    timeout: float | None = None,
    executor: str = "thread",
    initializer: Callable | None = None,
    initargs: tuple = (),
    chunksize: int | None = None,
    mp_context=None,
) -> list[BatchOutcome]:
    """Run ``tasks`` with bounded concurrency and full error isolation.

    Results come back in submission order, one :class:`BatchOutcome` per
    task; an exception inside a task becomes an error outcome, never a
    raised exception.  With ``jobs <= 1`` and no ``timeout`` the tasks run
    inline on the calling thread (deterministic, no thread overhead) —
    this is the byte-identical path the defaults keep.  ``timeout`` bounds
    how long the caller waits for each item's result (queueing included);
    a worker thread past its deadline is abandoned, not interrupted.

    ``executor="process"`` fans the tasks over a ``ProcessPoolExecutor``
    instead: tasks (and their results) must be picklable, ``initializer``/
    ``initargs`` warm each worker exactly once (see
    :func:`repro.service.parallel.init_worker`), and tasks ship in chunks —
    ``chunksize`` defaults to ``len(tasks) // (jobs * 4)`` so each worker
    sees a few chunks for load balance, or 1 whenever a per-item ``timeout``
    is set (a timeout must bound one item, not a whole chunk).  Error
    isolation is preserved: an exception in a worker comes back as an error
    outcome (its ``exception`` object stays in the worker; only the
    classified error crosses the pipe), and a pool whose workers fail to
    bootstrap (``BrokenProcessPool``) falls back to the thread backend with
    a logged warning rather than failing the batch.  ``mp_context`` selects
    the multiprocessing start method (tests exercise ``spawn``).
    """
    from .parallel import normalize_jobs, validate_executor

    executor = validate_executor(executor)
    jobs = normalize_jobs(jobs)
    if executor == "thread" or jobs == 1:
        if jobs == 1 and timeout is None:
            return [_run_timed(task) for task in tasks]

        outcomes: list[BatchOutcome] = []
        with ThreadPoolExecutor(
            max_workers=jobs, thread_name_prefix="repro-batch"
        ) as pool:
            futures = [pool.submit(_run_timed, task) for task in tasks]
            for future in futures:
                try:
                    outcomes.append(future.result(timeout=timeout))
                except FutureTimeoutError:
                    future.cancel()
                    outcomes.append(_timeout_outcome(timeout))
        return outcomes

    if chunksize is None:
        chunksize = 1 if timeout is not None else max(1, len(tasks) // (jobs * 4))
    chunks = _chunk_tasks(tasks, max(1, int(chunksize)))
    slots: list[BatchOutcome | None] = [None] * len(tasks)
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=initializer,
            initargs=initargs,
            mp_context=mp_context,
        ) as pool:
            submitted = [
                (start, chunk, pool.submit(_run_timed_chunk, chunk))
                for start, chunk in chunks
            ]
            for start, chunk, future in submitted:
                try:
                    results = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    results = [_timeout_outcome(timeout) for _ in chunk]
                except BrokenProcessPool:
                    raise
                except BaseException as exc:  # noqa: BLE001 — isolation
                    results = [
                        BatchOutcome(
                            ok=False,
                            error=f"{type(exc).__name__}: {exc}",
                            error_type="internal",
                        )
                        for _ in chunk
                    ]
                for offset, outcome in enumerate(results[: len(chunk)]):
                    slots[start + offset] = outcome
    except BrokenProcessPool as exc:
        # Worker bootstrap failed (e.g. unpicklable initializer state under
        # a spawn start method).  The tasks themselves are plain callables,
        # so degrade to the thread backend rather than failing the batch.
        log.warning(
            "process pool broke (%s); falling back to thread backend for %d tasks",
            exc,
            len(tasks),
        )
        return execute_batch(tasks, jobs=jobs, timeout=timeout, executor="thread")
    return [
        outcome
        if outcome is not None
        else BatchOutcome(ok=False, error="worker produced no result",
                          error_type="internal")
        for outcome in slots
    ]


def _lint_findings_to_dicts(findings) -> list[dict]:
    return [
        {
            "check": finding.check,
            "severity": finding.severity,
            "nodes": list(finding.node_names),
            "message": finding.message,
        }
        for finding in findings
    ]


class LabelingEngine:
    """Validate, cache and execute labeling requests, singly or in batches.

    Resilience knobs (all optional; the defaults serve fault-free traffic
    with negligible overhead):

    ``fault_plan``
        a :class:`~repro.resilience.FaultPlan` activated per item, keyed by
        the corpus fingerprint — the chaos harness's entry point;
    ``retry``
        the :class:`~repro.resilience.RetryPolicy` wrapping every item;
        transient failures (injected faults, flaky I/O) heal here;
    ``breaker``
        a :class:`~repro.resilience.BreakerPolicy` applied *per corpus
        fingerprint*: a corpus that keeps failing trips its own breaker and
        fails fast with ``retry_after`` while other corpora are untouched;
        ``None`` disables breaking;
    ``verify``
        ``"strict"`` re-checks every freshly computed labeling against the
        paper-invariant oracles (:mod:`repro.testing.oracles`) before it is
        served or cached; a violation raises ``OracleError``;
    ``comparator``
        a shared default comparator for overlay-free requests (instead of
        one per worker thread) — lets test/chaos sweeps reuse warm caches.
    """

    #: How many lexicon-overlay comparators to keep warm; overlays beyond
    #: this evict the least recently used one (its caches go with it).
    OVERLAY_COMPARATORS = 8

    #: Response schema version, part of :meth:`engine_fingerprint` — bump on
    #: any change to the response dict's shape or semantics.
    RESPONSE_FORMAT = 1

    #: Bound on distinct per-fingerprint breakers kept live.
    MAX_BREAKERS = 512

    def __init__(
        self,
        cache_size: int = 128,
        jobs: int = 1,
        fault_plan: FaultPlan | None = None,
        retry: RetryPolicy | None = None,
        breaker: BreakerPolicy | None = BreakerPolicy(),
        verify: str = "off",
        comparator: SemanticComparator | None = None,
        clock=time.monotonic,
        executor: str = "thread",
        disk_cache=None,
    ) -> None:
        from .parallel import normalize_jobs, validate_executor

        if verify not in ("off", "strict"):
            raise ValueError("verify must be 'off' or 'strict'")
        self.cache = ResultCache(capacity=cache_size)
        self.default_jobs = normalize_jobs(jobs)
        self.default_executor = validate_executor(executor)
        self.fault_plan = fault_plan
        self.retry = retry or RetryPolicy()
        self.breaker_policy = breaker
        self.verify = verify
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        self._local = threading.local()
        self._lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._oracle_checks = 0
        self._oracle_failures = 0
        self._started = time.time()
        # Comparator registry: every comparator this engine ever built, so
        # stats() can aggregate their cache counters into one /metrics
        # section.  Overlay comparators are shared across requests (and
        # batch items) with the same overlay, keyed by its canonical JSON.
        self._comparators: list[SemanticComparator] = []
        self._overlay_comparators: dict[str, SemanticComparator] = {}
        self._default_comparator = comparator
        if comparator is not None:
            self._comparators.append(comparator)
        self._computations = 0
        # The persistent warm-start layer: a DiskCache instance, or a
        # directory path to open one under this engine's config fingerprint.
        if disk_cache is None or hasattr(disk_cache, "get"):
            self.disk = disk_cache
        else:
            from .diskcache import DiskCache

            self.disk = DiskCache(disk_cache, self.engine_fingerprint())

    def engine_fingerprint(self) -> str:
        """Digest of everything that determines a response besides the corpus.

        Keys the engine's slice of a shared :class:`DiskCache` directory:
        response format version, verify mode, and the lexicon content
        (compiled-lexicon fingerprint).  Bump ``RESPONSE_FORMAT`` whenever
        the response shape changes so stale disk entries self-invalidate.
        """
        import hashlib

        from ..lexicon.compiled import default_compiled

        material = json.dumps(
            {
                "format": self.RESPONSE_FORMAT,
                "verify": self.verify,
                "lexicon": default_compiled().fingerprint,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Single requests.
    # ------------------------------------------------------------------

    def label(self, payload) -> dict:
        """Execute one request payload (or prebuilt request); JSON-ready response.

        Raises :class:`RequestError` on invalid payloads — batch execution
        and the HTTP layer turn that into error entries / HTTP 400.  A
        payload ``timeout`` is enforced by running the pipeline on a helper
        thread and abandoning it past the deadline.
        """
        request = (
            payload
            if isinstance(payload, LabelingRequest)
            else LabelingRequest.from_payload(payload)
        )
        if request.timeout is None:
            return self._label_request(request)
        # The deadline helper thread must inherit the caller's context
        # (active trace scope, fault scope) — ThreadPoolExecutor does not
        # propagate contextvars on its own.
        ctx = contextvars.copy_context()
        outcome = execute_batch(
            [lambda: ctx.run(self._label_request, request)],
            jobs=1,
            timeout=request.timeout,
        )[0]
        if outcome.ok:
            return outcome.value
        if outcome.error_type == "timeout":
            raise TimeoutError(outcome.error)
        if outcome.exception is not None:
            # Preserve the original type (CircuitOpenError, TransientFault,
            # OracleError, ...) so the HTTP layer maps it faithfully.
            raise outcome.exception
        raise RuntimeError(outcome.error)

    def _label_request(self, request: LabelingRequest) -> dict:
        """One item, with the full resilience stack around the pipeline.

        Breaker check → fault scope → bounded retry → provenance.  The
        ``resilience`` key is attached only when something actually
        happened (a retry or an injected fault), so fault-free responses
        stay byte-identical to those of an engine with no plan at all.
        """
        with self._lock:
            self._requests += 1
        traced = obs_is_active()
        breaker = self._breaker_for(request.fingerprint)
        if breaker is not None:
            allowed = self._breaker_op(breaker, breaker.allow, traced)
            if not allowed:
                obs_event("breaker.rejected", state=breaker.state)
                raise CircuitOpenError(request.fingerprint, breaker.retry_after())
        attempt_fn, retry_sleep = self._attempt_fn(request, traced)
        with fault_scope(self.fault_plan, request.fingerprint) as scope:
            try:
                response, attempts = self.retry.call(
                    attempt_fn, key=request.fingerprint, sleep=retry_sleep
                )
            except Exception as exc:
                with self._lock:
                    self._errors += 1
                if breaker is not None and not isinstance(exc, RequestError):
                    self._breaker_op(breaker, breaker.record_failure, traced)
                if scope is not None and scope.events:
                    exc.fault_events = [e.to_dict() for e in scope.events]
                raise
            events = list(scope.events) if scope is not None else []
        if breaker is not None:
            self._breaker_op(breaker, breaker.record_success, traced)
        if attempts > 1 or events:
            response["resilience"] = {
                "attempts": attempts,
                "faults": [event.to_dict() for event in events],
            }
        return response

    @staticmethod
    def _breaker_op(breaker: CircuitBreaker, op: Callable, traced: bool):
        """Run one breaker operation; trace state transitions as span events."""
        if not traced:
            return op()
        before = breaker.state
        result = op()
        after = breaker.state
        if after != before:
            obs_event("breaker.transition", **{"from": before, "to": after})
        return result

    def _attempt_fn(self, request: LabelingRequest, traced: bool):
        """The retry body and sleep hook, span-wrapped when tracing is on."""
        if not traced:
            return (lambda: self._label_once(request)), time.sleep

        counter = {"n": 0}

        def attempt():
            counter["n"] += 1
            with obs_span("engine.attempt", attempt=counter["n"]):
                return self._label_once(request)

        def sleep(delay: float) -> None:
            obs_event("retry.backoff", delay_ms=round(delay * 1000.0, 3))
            time.sleep(delay)

        return attempt, sleep

    def _label_once(self, request: LabelingRequest) -> dict:
        """Cache lookup + pipeline run — the unit the retry policy repeats."""
        spec = maybe_inject("cache.get", key=request.fingerprint)
        if spec is not None and spec.kind == "corrupt":
            self.cache.corrupt(request.fingerprint)
        with obs_span("cache.lookup") as sp:
            cached = self.cache.get(request.fingerprint)
            outcome = "memory" if cached is not None else "miss"
            if cached is None:
                cached = self._disk_lookup(request.fingerprint)
                if cached is not None:
                    outcome = "disk"
            if sp is not None:
                sp.tags["outcome"] = outcome
        if cached is not None:
            response = copy.deepcopy(cached)
            response["cached"] = True
            if request.include_lint:
                response["lint"] = self._lint_tree(response["tree"], request)
            return response
        response = self._execute(request)
        # Lint is keyed by the request, not the corpus content, so the
        # cached entry stores only the fingerprint-determined part; the
        # same goes for retry/fault provenance (attached by the caller).
        stored = copy.deepcopy(response)
        stored.pop("lint", None)
        self.cache.put(request.fingerprint, stored)
        if self.disk is not None:
            self.disk.put(request.fingerprint, stored)
        response["cached"] = False
        return response

    def _disk_lookup(self, fingerprint: str):
        """Consult the persistent layer; promote a hit into the memory LRU."""
        if self.disk is None:
            return None
        value = self.disk.get(fingerprint)
        if value is not None:
            self.cache.put(fingerprint, copy.deepcopy(value))
        return value

    def _breaker_for(self, fingerprint: str) -> CircuitBreaker | None:
        if self.breaker_policy is None:
            return None
        with self._lock:
            breaker = self._breakers.get(fingerprint)
            if breaker is None:
                if len(self._breakers) >= self.MAX_BREAKERS:
                    # Shed the oldest closed breaker; an open one is live
                    # protection and stays.
                    for key, candidate in list(self._breakers.items()):
                        if candidate.state == CircuitBreaker.CLOSED:
                            del self._breakers[key]
                            break
                breaker = self.breaker_policy.build(clock=self._clock)
                self._breakers[fingerprint] = breaker
        return breaker

    def _execute(self, request: LabelingRequest) -> dict:
        start = time.perf_counter()
        with self._lock:
            self._computations += 1
        comparator = self._comparator_for(request)
        maybe_inject("engine.execute", key=request.fingerprint)
        with obs_span(
            "pipeline",
            interfaces=len(request.interfaces),
            clusters=len(request.mapping),
        ):
            root, result = label_corpus(
                request.interfaces,
                request.mapping,
                comparator=comparator,
                options=request.options,
                domain=request.domain,
            )
        if self.verify == "strict":
            from ..testing.oracles import verify_labeling

            with obs_span("verify.oracles") as sp:
                report = verify_labeling(root, result, comparator)
                if sp is not None:
                    sp.tags["checks"] = report.checks
                    sp.tags["violations"] = len(report.violations)
            with self._lock:
                self._oracle_checks += report.checks
                self._oracle_failures += len(report.violations)
            report.raise_if_failed()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        leaves = list(root.leaves())
        internal = [n for n in root.internal_nodes() if n is not root]
        response = {
            "ok": True,
            "fingerprint": request.fingerprint,
            "domain": request.domain,
            "classification": result.classification.value,
            "tree": node_to_dict(root),
            "field_labels": dict(sorted(result.field_labels.items())),
            "node_labels": dict(sorted(result.node_labels.items())),
            "options": options_to_dict(request.options),
            "stats": {
                "interfaces": len(request.interfaces),
                "clusters": len(request.mapping),
                "leaves": len(leaves),
                "internal_nodes": len(internal),
                "groups": len(result.group_results),
                "labeled_fields": sum(
                    1 for label in result.field_labels.values() if label
                ),
                "elapsed_ms": round(elapsed_ms, 3),
            },
        }
        if request.include_lint:
            from ..lint import lint_interface

            response["lint"] = _lint_findings_to_dicts(
                lint_interface(root, comparator)
            )
        return response

    def _lint_tree(self, tree: dict, request: LabelingRequest) -> list[dict]:
        """Lint a serialized tree (a cached response) for this request."""
        from ..lint import lint_node_dict

        return _lint_findings_to_dicts(
            lint_node_dict(tree, self._comparator_for(request))
        )

    def _comparator_for(self, request: LabelingRequest) -> SemanticComparator:
        """A comparator for this request: shared per overlay, else per-thread.

        Requests (and batch items) carrying the same lexicon overlay share
        one comparator — and therefore its label/relation/group caches —
        instead of rebuilding the lexicon and re-deriving every comparison
        per item.  The comparator's memos are safe under concurrent use
        (append-only maps of deterministic values), so one instance can
        serve parallel batch workers.
        """
        if request.lexicon is not None:
            key = json.dumps(
                request.lexicon, sort_keys=True, separators=(",", ":"), default=str
            )
            with self._lock:
                comparator = self._overlay_comparators.get(key)
                if comparator is not None:
                    # Refresh LRU position.
                    self._overlay_comparators[key] = self._overlay_comparators.pop(key)
                    return comparator
            from ..core.label import LabelAnalyzer
            from ..lexicon.io import wordnet_from_dict

            comparator = SemanticComparator(
                LabelAnalyzer(wordnet_from_dict(request.lexicon))
            )
            with self._lock:
                existing = self._overlay_comparators.get(key)
                if existing is not None:  # lost a build race: share the winner
                    return existing
                while len(self._overlay_comparators) >= self.OVERLAY_COMPARATORS:
                    evicted_key = next(iter(self._overlay_comparators))
                    evicted = self._overlay_comparators.pop(evicted_key)
                    self._comparators.remove(evicted)
                self._overlay_comparators[key] = comparator
                self._comparators.append(comparator)
            return comparator
        return self.default_comparator()

    def default_comparator(self) -> SemanticComparator:
        """The comparator overlay-free requests use.

        The engine-wide instance when one was passed at construction,
        otherwise one per worker thread (comparator memos are cheap to
        build but their caches are worth keeping hot per thread).
        """
        if self._default_comparator is not None:
            return self._default_comparator
        comparator = getattr(self._local, "comparator", None)
        if comparator is None:
            comparator = SemanticComparator()
            self._local.comparator = comparator
            with self._lock:
                self._comparators.append(comparator)
        return comparator

    # ------------------------------------------------------------------
    # Batches.
    # ------------------------------------------------------------------

    def label_batch(
        self,
        payloads: Sequence,
        jobs: int | None = None,
        timeout: float | None = None,
        executor: str | None = None,
    ) -> list[dict]:
        """Label many payloads concurrently; one response dict per payload.

        Invalid or failing items degrade to ``{"ok": false, ...}`` entries
        in their slot — a poisoned corpus never takes the batch down.

        ``executor="process"`` routes computation through a warm
        ``ProcessPoolExecutor`` (see :meth:`_label_batch_process`); the
        engine falls back to the thread backend whenever the process one
        cannot apply — ``jobs <= 1`` (nothing to parallelize) or an active
        ``fault_plan`` (fault injection mutates shared state the workers
        cannot see, and the plan itself must observe every attempt).
        """
        from .parallel import normalize_jobs, validate_executor

        jobs = self.default_jobs if jobs is None else normalize_jobs(jobs)
        if executor is None:
            executor = self.default_executor
        else:
            executor = validate_executor(executor)
        with obs_span(
            "engine.batch", items=len(payloads), jobs=jobs, executor=executor
        ):
            if executor == "process" and jobs > 1 and self.fault_plan is None:
                return self._label_batch_process(payloads, jobs, timeout)
            trace = current_trace()
            parent = current_span()
            if trace is not None and parent is not None:
                # Fan-out tracing: pre-create one span per item in submission
                # order (deterministic tree shape), and have each worker
                # thread attach its own scope rooted at its item's span.
                tasks = []
                for index, payload in enumerate(payloads):
                    item_span = Span(f"item[{index}]")
                    item_span.start_s = item_span.end_s = trace.clock()
                    parent.children.append(item_span)
                    tasks.append(self._traced_task(trace, item_span, payload))
            else:
                tasks = [
                    (
                        lambda p=payload: self._label_request(
                            LabelingRequest.from_payload(p)
                        )
                    )
                    for payload in payloads
                ]
            responses: list[dict] = []
            for outcome in execute_batch(tasks, jobs=jobs, timeout=timeout):
                if outcome.ok:
                    responses.append(outcome.value)
                else:
                    responses.append(self._outcome_entry(outcome))
            return responses

    def _traced_task(self, trace, item_span: Span, payload) -> Callable[[], dict]:
        def run() -> dict:
            with trace.attach(item_span):
                return self._label_request(LabelingRequest.from_payload(payload))

        return run

    @staticmethod
    def _outcome_entry(outcome: BatchOutcome) -> dict:
        entry = {
            "ok": False,
            "error": outcome.error,
            "error_type": outcome.error_type,
            "elapsed_ms": round(outcome.elapsed_ms, 3),
        }
        if outcome.detail:
            entry.update(outcome.detail)
        return entry

    def _label_batch_process(
        self,
        payloads: Sequence,
        jobs: int,
        timeout: float | None,
    ) -> list[dict]:
        """The process backend: parse + cache in the parent, compute in workers.

        Payloads are validated in the parent (invalid ones degrade to error
        entries without ever touching the pool), deduplicated by corpus
        fingerprint, and answered from the parent's result cache where
        possible.  Only cache misses ship to workers — as raw payload dicts
        (always picklable), re-parsed next to the data by the worker's warm
        engine (:func:`repro.service.parallel.init_worker` built it once,
        around the compiled lexicon that arrived with the initializer).
        Results flow back as JSON-ready dicts and are stored in the parent
        cache exactly as a thread-backend computation would have been.

        The per-item resilience stack (retry, per-fingerprint breakers) runs
        inside each worker's engine; the parent's breakers are not consulted
        — the process backend is for fault-free bulk work, which is why an
        active ``fault_plan`` forces the thread fallback in
        :meth:`label_batch`.
        """
        from ..lexicon.compiled import default_compiled
        from .parallel import PayloadTask, init_worker

        entries: list[dict | None] = [None] * len(payloads)
        requests: dict[int, LabelingRequest] = {}
        pending: dict[str, list[int]] = {}
        for index, payload in enumerate(payloads):
            try:
                request = LabelingRequest.from_payload(payload)
            except RequestError as exc:
                entries[index] = {
                    "ok": False,
                    "error": str(exc),
                    "error_type": "invalid_request",
                    "elapsed_ms": 0.0,
                }
                continue
            with self._lock:
                self._requests += 1
            requests[index] = request
            cached = self._cached_response(request)
            if cached is not None:
                entries[index] = cached
                continue
            # Dedupe by fingerprint only when the cache could have served
            # the repeats — with caching disabled the thread backend
            # recomputes every duplicate, and this path must match it.
            key = (
                request.fingerprint
                if self.cache.capacity > 0
                else f"{request.fingerprint}#{index}"
            )
            pending.setdefault(key, []).append(index)

        if pending:
            order = list(pending.items())
            trace = current_trace()
            parent = current_span()
            task_spans: list[Span] | None = None
            if trace is not None and parent is not None:
                # Mirror execute_batch's default chunking so each item span
                # carries the chunk it actually shipped in.
                chunksize = (
                    1 if timeout is not None else max(1, len(order) // (jobs * 4))
                )
                task_spans = []
                for position, (_key, indices) in enumerate(order):
                    sp = Span(f"item[{indices[0]}]", {"chunk": position // chunksize})
                    sp.start_s = sp.end_s = trace.clock()
                    parent.children.append(sp)
                    task_spans.append(sp)
            tasks = [
                PayloadTask(payloads[indices[0]], trace=task_spans is not None)
                for _, indices in order
            ]
            outcomes = execute_batch(
                tasks,
                jobs=jobs,
                timeout=timeout,
                executor="process",
                initializer=init_worker,
                initargs=(default_compiled(),),
            )
            for position, ((_key, indices), outcome) in enumerate(
                zip(order, outcomes)
            ):
                if outcome.ok:
                    with self._lock:
                        self._computations += 1  # computed in a worker process
                    response = outcome.value
                    worker_tree = (
                        response.pop("_obs_trace", None)
                        if isinstance(response, dict)
                        else None
                    )
                    if task_spans is not None and worker_tree:
                        # Graft the worker-process span tree under this
                        # item's span, re-based onto the parent timeline.
                        sp = task_spans[position]
                        grafted = Span.from_dict(worker_tree, base_s=sp.start_s)
                        sp.children.append(grafted)
                        sp.end_s = grafted.end_s
                    stored = copy.deepcopy(response)
                    for volatile in ("cached", "lint", "resilience", "_obs_trace"):
                        stored.pop(volatile, None)
                    self._store_response(
                        requests[indices[0]].fingerprint, stored, requests[indices[0]]
                    )
                    entries[indices[0]] = response
                    for duplicate in indices[1:]:
                        repeat = copy.deepcopy(stored)
                        repeat["cached"] = True
                        if requests[duplicate].include_lint:
                            repeat["lint"] = self._lint_tree(
                                repeat["tree"], requests[duplicate]
                            )
                        entries[duplicate] = repeat
                else:
                    with self._lock:
                        self._errors += len(indices)
                    for index in indices:
                        entries[index] = self._outcome_entry(outcome)

        return [entry for entry in entries if entry is not None]

    def _cached_response(self, request: LabelingRequest) -> dict | None:
        """A cache hit shaped exactly like the thread path's hit, or ``None``."""
        cached = self.cache.get(request.fingerprint)
        if cached is None:
            cached = self._disk_lookup(request.fingerprint)
        if cached is None:
            return None
        response = copy.deepcopy(cached)
        response["cached"] = True
        if request.include_lint:
            response["lint"] = self._lint_tree(response["tree"], request)
        return response

    def _store_response(
        self, fingerprint: str, stored: dict, request: LabelingRequest
    ) -> None:
        """Store an already-sanitized response in every cache layer."""
        self.cache.put(fingerprint, stored)
        if self.disk is not None:
            self.disk.put(fingerprint, stored)

    # ------------------------------------------------------------------
    # Introspection / lifecycle.
    # ------------------------------------------------------------------

    def stats(self) -> dict:
        """Engine counters + cache stats (embedded in ``GET /metrics``)."""
        with self._lock:
            requests, errors = self._requests, self._errors
            computations = self._computations
            comparators = list(self._comparators)
            overlays = len(self._overlay_comparators)
            breakers = list(self._breakers.values())
            oracle_checks = self._oracle_checks
            oracle_failures = self._oracle_failures
        semantics = aggregate_stats([c.cache_stats() for c in comparators])
        semantics["comparators"] = len(comparators)
        semantics["overlay_comparators"] = overlays
        breaker_stats = [b.stats() for b in breakers]
        resilience = {
            "retry": {"max_attempts": self.retry.max_attempts},
            "breakers": {
                "count": len(breaker_stats),
                "open": sum(1 for b in breaker_stats if b["state"] != "closed"),
                "rejections": sum(b["rejections"] for b in breaker_stats),
                "trips": sum(b["trips"] for b in breaker_stats),
            },
            "verify": self.verify,
            "oracle": {"checks": oracle_checks, "failures": oracle_failures},
        }
        if self.fault_plan is not None:
            resilience["fault_plan"] = self.fault_plan.stats()
        snapshot = {
            "requests": requests,
            "errors": errors,
            "computations": computations,
            "uptime_s": round(time.time() - self._started, 3),
            "default_jobs": self.default_jobs,
            "default_executor": self.default_executor,
            "cache": self.cache.stats().to_dict(),
            "semantics": semantics,
            "resilience": resilience,
        }
        if self.disk is not None:
            snapshot["disk"] = self.disk.stats()
        return snapshot

    def close(self) -> None:
        """Release cached results (symmetry with the server lifecycle)."""
        self.cache.clear()
