"""Stable content fingerprints of labeling inputs — the service cache key.

A labeling run is a pure function of three inputs: the corpus (source
interface trees + cluster mapping), the lexicon overlay merged over the
built-in MiniWordNet, and the :class:`~repro.core.pipeline.NamingOptions`.
This module hashes exactly those three things into one hex digest, so the
service can answer a repeated request from its cache (:mod:`repro.service.cache`)
without re-running the pipeline.

The digest is computed over a *canonical* JSON form — sorted keys, sorted
mapping clusters/members, no whitespace variance — so it is invariant
under everything that does not change meaning: dict insertion order,
``save_corpus``/``load_corpus`` round trips, pretty-printing, and the
order synsets were declared in a lexicon overlay.
"""

from __future__ import annotations

import hashlib
import json

from ..core.consistency import ConsistencyLevel
from ..core.inference import InferenceRule
from ..core.pipeline import NamingOptions
from ..schema.clusters import Mapping
from ..schema.interface import QueryInterface
from ..schema.serialize import corpus_to_dict

__all__ = [
    "canonical_json",
    "corpus_fingerprint",
    "fingerprint_document",
    "options_to_dict",
    "options_from_dict",
]


def canonical_json(value) -> str:
    """``value`` as minimal, key-sorted JSON — the hashable canonical form."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def options_to_dict(options: NamingOptions | None) -> dict:
    """A :class:`NamingOptions` as a plain, canonically ordered dict."""
    options = options or NamingOptions()
    return {
        "use_instances": options.use_instances,
        "max_level": options.max_level.name.lower(),
        "enabled_rules": sorted(rule.value for rule in options.enabled_rules),
        "repair_homonyms": options.repair_homonyms,
    }


def options_from_dict(data: dict | None) -> NamingOptions:
    """Inverse of :func:`options_to_dict`; unknown keys/values raise ``ValueError``."""
    data = dict(data or {})
    defaults = NamingOptions()
    known = {"use_instances", "max_level", "enabled_rules", "repair_homonyms"}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown naming option(s): {', '.join(sorted(unknown))}")
    try:
        max_level = ConsistencyLevel[
            str(data.get("max_level", defaults.max_level.name)).upper()
        ]
    except KeyError:
        names = ", ".join(level.name.lower() for level in ConsistencyLevel)
        raise ValueError(
            f"max_level must be one of: {names}"
        ) from None
    rules = data.get("enabled_rules")
    if rules is None:
        enabled = defaults.enabled_rules
    else:
        try:
            enabled = frozenset(InferenceRule(str(r).upper()) for r in rules)
        except ValueError:
            names = ", ".join(rule.value for rule in InferenceRule)
            raise ValueError(f"enabled_rules entries must be among: {names}") from None
    return NamingOptions(
        use_instances=bool(data.get("use_instances", defaults.use_instances)),
        max_level=max_level,
        enabled_rules=enabled,
        repair_homonyms=bool(data.get("repair_homonyms", defaults.repair_homonyms)),
    )


def _canonical_corpus_document(corpus: dict) -> dict:
    """Normalize a raw ``{"interfaces": ..., "mapping": ...}`` document.

    Mapping clusters and members sort by name; interface list order is
    preserved (it is semantically meaningful).  Works on untrusted request
    payloads without building schema objects first.
    """
    mapping = {
        cluster: {
            interface: members[interface] for interface in sorted(members)
        }
        for cluster, members in sorted(corpus.get("mapping", {}).items())
    }
    return {"interfaces": corpus.get("interfaces", []), "mapping": mapping}


def _canonical_lexicon(lexicon: dict | None) -> dict | None:
    if not lexicon:
        return None
    synsets = sorted(
        sorted(str(lemma) for lemma in synset)
        for synset in lexicon.get("synsets", [])
    )
    hypernyms = sorted(
        [str(pair[0]), str(pair[1])] for pair in lexicon.get("hypernyms", [])
    )
    return {"synsets": synsets, "hypernyms": hypernyms}


def fingerprint_document(
    corpus: dict,
    options: dict | NamingOptions | None = None,
    lexicon: dict | None = None,
) -> str:
    """SHA-256 fingerprint of a raw corpus document + knobs.

    ``corpus`` is the ``save_corpus`` JSON shape; ``options`` either a
    :class:`NamingOptions` or its dict form; ``lexicon`` the overlay dict
    accepted by :func:`repro.lexicon.io.wordnet_from_dict` (or ``None``).
    """
    if isinstance(options, NamingOptions) or options is None:
        options_doc = options_to_dict(options)
    else:
        options_doc = options_to_dict(options_from_dict(options))
    envelope = {
        "corpus": _canonical_corpus_document(corpus),
        "options": options_doc,
        "lexicon": _canonical_lexicon(lexicon),
    }
    digest = hashlib.sha256(canonical_json(envelope).encode("utf-8"))
    return digest.hexdigest()


def corpus_fingerprint(
    interfaces: list[QueryInterface],
    mapping: Mapping,
    options: NamingOptions | dict | None = None,
    lexicon: dict | None = None,
) -> str:
    """Fingerprint of in-memory corpus objects (same digest as the document form)."""
    return fingerprint_document(
        corpus_to_dict(interfaces, mapping), options=options, lexicon=lexicon
    )
