"""Process-pool plumbing for the batch backend: worker warm-up + tasks.

The thread backend in :func:`repro.service.engine.execute_batch` is bounded
by the GIL for the CPU-heavy parts of the pipeline (the ``Combine*``
closure, the Definition-1 token loops).  The process backend fans the same
work over a ``ProcessPoolExecutor``; everything that crosses the process
boundary lives in this module so it is importable — hence picklable — from
worker processes:

* :func:`init_worker` — the pool initializer.  It receives one
  :class:`~repro.lexicon.compiled.CompiledLexicon` (pickled once per
  worker, never per task) and builds the worker's long-lived comparator
  and cache-less engine.  Every task dispatched to that worker reuses them.
* :class:`PayloadTask` — one labeling payload as a picklable callable; its
  result is the engine's JSON-ready response dict, so nothing exotic rides
  the return pickle.
* :func:`default_jobs` — the documented CPU-derived default the ``batch``,
  ``serve`` and ``chaos`` CLI subcommands share.

Worker state is module-global by design: a ``ProcessPoolExecutor`` worker
is a fresh interpreter whose only channel for warm state is the
initializer, and globals are how that state survives across tasks.
"""

from __future__ import annotations

import os

__all__ = [
    "EXECUTORS",
    "PayloadTask",
    "default_jobs",
    "init_worker",
    "normalize_jobs",
    "worker_comparator",
    "worker_engine",
]

#: The executor kinds the batch backend accepts.
EXECUTORS = ("thread", "process")

#: Cap on the CPU-derived default: labeling is memory-light but the curve
#: flattens past a handful of workers (per-worker warm-up and result
#: pickling take over), so more than 8 defaults helps nobody.
MAX_DEFAULT_JOBS = 8


def default_jobs() -> int:
    """The shared CLI default for ``--jobs``: ``os.cpu_count()`` capped at 8.

    ``sched_getaffinity`` is preferred where available — in a container the
    affinity mask, not the host core count, is what can actually run.
    """
    try:
        cores = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        cores = os.cpu_count() or 1
    return max(1, min(MAX_DEFAULT_JOBS, cores))


def normalize_jobs(jobs) -> int:
    """Normalize a ``jobs`` knob to a usable worker count (``>= 1``).

    ``None`` means "pick for me" and resolves to :func:`default_jobs`
    (which itself survives ``os.cpu_count()`` returning ``None``).  ``0``
    is clamped to 1 — "no parallelism", not "no workers".  A negative or
    non-integral value is a caller bug and raises ``ValueError`` with a
    message naming the offender; the HTTP layer maps that to a 400.
    """
    if jobs is None:
        return default_jobs()
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        try:
            coerced = int(str(jobs))
        except (TypeError, ValueError):
            raise ValueError(f"jobs must be an integer, got {jobs!r}") from None
        jobs = coerced
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return max(1, jobs)


def validate_executor(executor: str) -> str:
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {', '.join(EXECUTORS)}; got {executor!r}"
        )
    return executor


# ----------------------------------------------------------------------
# Worker-side state (one interpreter per pool worker).
# ----------------------------------------------------------------------

_WORKER: dict = {}


def init_worker(compiled) -> None:
    """Pool initializer: build the worker's comparator + engine once.

    ``compiled`` is the parent's :class:`CompiledLexicon` — immutable and
    cheaply pickled, it arrives exactly once per worker.  The engine is
    cache-less (the parent process owns result caching) and breaker-less
    (the process backend only runs fault-free work; resilient traffic
    falls back to the thread backend).
    """
    from ..core.label import LabelAnalyzer
    from ..core.semantics import SemanticComparator
    from .engine import LabelingEngine

    comparator = SemanticComparator(LabelAnalyzer(compiled))
    _WORKER["comparator"] = comparator
    _WORKER["engine"] = LabelingEngine(
        cache_size=0, breaker=None, comparator=comparator
    )


def worker_comparator():
    """The warm per-worker comparator, or ``None`` outside a pool worker."""
    return _WORKER.get("comparator")


def worker_engine():
    """The warm per-worker engine, building a default one if the pool was
    created without an initializer (defensive; normal pools always init)."""
    engine = _WORKER.get("engine")
    if engine is None:
        from ..lexicon.compiled import default_compiled

        init_worker(default_compiled())
        engine = _WORKER["engine"]
    return engine


class PayloadTask:
    """One labeling payload as a picklable zero-argument callable.

    Calling it inside a worker routes the payload through the worker's
    warm engine; the return value is the engine's JSON-ready response
    dict.  Errors propagate as exceptions for the caller's
    :class:`~repro.service.engine.BatchOutcome` classification.
    """

    __slots__ = ("payload", "trace")

    def __init__(self, payload, trace: bool = False) -> None:
        self.payload = payload
        self.trace = trace

    def __call__(self) -> dict:
        # Mirror the thread backend's task body (parse, then the resilience
        # wrapper) so both executors classify errors identically.
        from .engine import LabelingRequest

        engine = worker_engine()
        request = LabelingRequest.from_payload(self.payload)
        if not self.trace:
            return engine._label_request(request)
        # The parent asked for spans: build a standalone worker-local trace
        # and ship its tree home inside the response (the parent pops the
        # key and grafts the tree under this item's span).
        from ..obs.tracer import Trace

        trace = Trace(name="worker")
        trace.root.tags["pid"] = os.getpid()
        with trace.scope():
            response = engine._label_request(request)
        if isinstance(response, dict):
            response["_obs_trace"] = trace.root.to_dict(trace.root.start_s)
        return response

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PayloadTask({type(self.payload).__name__})"
