"""Stdlib-only HTTP JSON API over the labeling engine.

Endpoints
---------
``GET /healthz``   liveness: ``{"status": "ok", "uptime_s": ...}``.
``GET /metrics``   request counts per endpoint/status, latency percentiles
                   computed from a fixed-size ring buffer, engine + cache
                   counters.
``POST /label``    one labeling request (see :mod:`repro.service.engine`
                   for the payload shape); repeated identical requests are
                   served from the result cache.
``POST /batch``    ``{"requests": [...], "jobs": N, "timeout": s}`` — the
                   engine fans the items over its batch executor; per-item
                   failures come back as error entries, HTTP status stays
                   200.
``GET /trace/<id>``  the span trace of a recently served request (see
                   :mod:`repro.obs`), from a bounded in-memory LRU; 404
                   once evicted or when tracing is disabled.

Every POST response (success, error, 429/503 shed alike) carries a
``request_id`` — honored from an ``X-Request-Id`` request header or
generated — echoed both in the JSON payload and as an ``X-Request-Id``
response header.  With tracing enabled (``tracing=True`` or a trace log
configured), each POST runs under a request-scoped trace whose span tree
lands in the LRU behind ``GET /trace/<id>`` and, with ``serve
--trace-log DIR``, in a CRC-safe JSONL span log.

Both POST endpoints pass through a bounded admission queue
(:class:`repro.resilience.AdmissionController`): work beyond the
concurrency cap queues, and a full queue sheds with **HTTP 429** plus a
``Retry-After`` header / ``retry_after`` field.  An open circuit breaker
or an exhausted transient failure maps to **HTTP 503** (with structured
fault provenance for the latter) — see ``docs/resilience.md``.

Built on ``http.server.ThreadingHTTPServer`` so the package keeps its
no-dependency guarantee; one daemon thread per connection, all shared
state behind the engine's and the metrics registry's locks.
:class:`LabelingServer` wraps the lifecycle (ephemeral-port bind, start,
graceful shutdown) for both the CLI and the tests.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import Trace, TraceLog, TraceStore, new_request_id
from ..resilience import (
    AdmissionController,
    CircuitOpenError,
    OverloadedError,
    TransientFault,
)
from .engine import LabelingEngine, RequestError

__all__ = ["LabelingServer", "MetricsRegistry", "PayloadTooLargeError"]


class PayloadTooLargeError(Exception):
    """A declared request body too large to read (maps to HTTP 413)."""

    def __init__(self, declared: int, limit: int) -> None:
        super().__init__(
            f"declared Content-Length {declared} exceeds the "
            f"{limit}-byte limit"
        )
        self.declared = declared
        self.limit = limit


class MetricsRegistry:
    """Thread-safe request counters + a latency ring buffer with percentiles."""

    def __init__(self, window: int = 1024) -> None:
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._by_endpoint: dict[str, int] = {}
        self._by_status: dict[int, int] = {}
        self._started = time.time()
        # The sorted sample is snapshotted once and reused until the next
        # record() invalidates it, so back-to-back /metrics polls of an
        # idle window don't re-sort (the list is replaced, never mutated,
        # so a reference handed out under the lock stays consistent).
        self._sorted: list[float] | None = None

    def record(self, endpoint: str, status: int, elapsed_ms: float) -> None:
        with self._lock:
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1
            self._by_status[status] = self._by_status.get(status, 0) + 1
            self._latencies.append(elapsed_ms)
            self._sorted = None

    @staticmethod
    def _percentile(ordered: list[float], pct: float) -> float:
        """Nearest-rank percentile of an already-sorted sample."""
        if not ordered:
            return 0.0
        rank = max(1, -(-len(ordered) * pct // 100))  # ceil without math
        return ordered[int(rank) - 1]

    def snapshot(self) -> dict:
        with self._lock:
            if self._sorted is None:
                self._sorted = sorted(self._latencies)
            sample = self._sorted
            by_endpoint = dict(sorted(self._by_endpoint.items()))
            by_status = {str(k): v for k, v in sorted(self._by_status.items())}
        latency = {
            "window": len(sample),
            "p50_ms": round(self._percentile(sample, 50), 3),
            "p90_ms": round(self._percentile(sample, 90), 3),
            "p99_ms": round(self._percentile(sample, 99), 3),
            "max_ms": round(sample[-1], 3) if sample else 0.0,
            "mean_ms": round(sum(sample) / len(sample), 3) if sample else 0.0,
        }
        return {
            "uptime_s": round(time.time() - self._started, 3),
            "requests_total": sum(by_endpoint.values()),
            "by_endpoint": by_endpoint,
            "by_status": by_status,
            "latency": latency,
        }


class _LabelingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the engine + metrics for its handlers."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address,
        engine: LabelingEngine,
        quiet: bool = True,
        admission: AdmissionController | None = None,
        tracing: bool = False,
        trace_log: TraceLog | None = None,
        trace_capacity: int = 128,
    ):
        super().__init__(address, _Handler)
        self.engine = engine
        self.metrics = MetricsRegistry()
        self.quiet = quiet
        self.admission = admission or AdmissionController()
        self.trace_log = trace_log
        self.tracing = bool(tracing or trace_log is not None)
        self.traces = TraceStore(capacity=trace_capacity)


class _Handler(BaseHTTPRequestHandler):
    """Route the four endpoints; every response is JSON with Content-Length."""

    server: _LabelingHTTPServer
    protocol_version = "HTTP/1.1"

    #: Hard cap on a declared request body.  A client announcing more gets
    #: a clean 413 *before* the server tries to read it — blindly trusting
    #: a huge Content-Length would block the handler on ``rfile.read``.
    MAX_BODY_BYTES = 16 * 1024 * 1024

    # ------------------------------------------------------------------
    # Plumbing.
    # ------------------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - operator logging
            super().log_message(format, *args)

    def _send_json(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self):
        declared = self.headers.get("Content-Length")
        try:
            length = int(declared or 0)
        except ValueError:
            # A garbage header is the client's bug: answer 400, not 500.
            raise RequestError(
                f"invalid Content-Length header: {declared!r}"
            ) from None
        if length <= 0:
            raise RequestError("request body required")
        if length > self.MAX_BODY_BYTES:
            raise PayloadTooLargeError(length, self.MAX_BODY_BYTES)
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"body is not valid JSON: {exc}") from None

    def _handle(self, endpoint: str, fn, request_id: str | None = None) -> None:
        start = time.perf_counter()
        headers: dict | None = None
        trace: Trace | None = None
        if request_id is not None and self.server.tracing:
            trace = Trace(request_id=request_id, name=endpoint.lstrip("/") or "request")
            inner = fn

            def fn():
                with trace.scope():
                    return inner()

        try:
            status, payload = fn()
        except RequestError as exc:
            status, payload = 400, {
                "ok": False, "error": str(exc), "error_type": "invalid_request",
            }
        except PayloadTooLargeError as exc:
            status, payload = 413, {
                "ok": False, "error": str(exc), "error_type": "payload_too_large",
            }
        except TimeoutError as exc:
            status, payload = 504, {
                "ok": False, "error": str(exc), "error_type": "timeout",
            }
        except OverloadedError as exc:
            # Load shed: the admission queue is full.  429 + Retry-After is
            # the structured backpressure clients key their backoff on.
            status, payload = 429, {
                "ok": False,
                "error": str(exc),
                "error_type": "overloaded",
                "retry_after": round(exc.retry_after, 3),
            }
            headers = {"Retry-After": f"{exc.retry_after:.3f}"}
        except CircuitOpenError as exc:
            status, payload = 503, {
                "ok": False,
                "error": str(exc),
                "error_type": "circuit_open",
                "retry_after": round(exc.retry_after, 3),
            }
            headers = {"Retry-After": f"{exc.retry_after:.3f}"}
        except TransientFault as exc:
            status, payload = 503, {
                "ok": False,
                "error": str(exc),
                "error_type": "transient",
            }
            resilience = getattr(exc, "fault_events", None)
            if resilience:
                payload["resilience"] = {
                    "attempts": getattr(exc, "retry_attempts", 1),
                    "faults": list(resilience),
                }
        except Exception as exc:  # noqa: BLE001 - the server must answer
            status, payload = 500, {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "error_type": "internal",
            }
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        if request_id is not None:
            if isinstance(payload, dict):
                payload["request_id"] = request_id
            headers = {**(headers or {}), "X-Request-Id": request_id}
        if trace is not None:
            trace.meta["endpoint"] = endpoint
            trace.meta["status"] = status
            record = trace.to_dict()
            self.server.traces.put(record)
            if self.server.trace_log is not None:
                self.server.trace_log.append(record)
        self.server.metrics.record(endpoint, status, elapsed_ms)
        self._send_json(status, payload, headers)

    # ------------------------------------------------------------------
    # Endpoints.
    # ------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self._handle("/healthz", lambda: (200, {
                "status": "ok",
                "uptime_s": self.server.engine.stats()["uptime_s"],
            }))
        elif self.path == "/metrics":
            self._handle("/metrics", lambda: (200, {
                "http": self.server.metrics.snapshot(),
                "engine": self.server.engine.stats(),
                "admission": self.server.admission.stats(),
            }))
        elif self.path.startswith("/trace/"):
            self._handle("/trace", self._get_trace)
        else:
            self._handle(self.path, lambda: (404, {
                "ok": False, "error": f"no such endpoint {self.path!r}",
                "error_type": "not_found",
            }))

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        request_id = (
            (self.headers.get("X-Request-Id") or "").strip()[:128]
            or new_request_id()
        )
        if self.path == "/label":
            self._handle("/label", self._post_label, request_id=request_id)
        elif self.path == "/batch":
            self._handle("/batch", self._post_batch, request_id=request_id)
        else:
            self._handle(self.path, lambda: (404, {
                "ok": False, "error": f"no such endpoint {self.path!r}",
                "error_type": "not_found",
            }))

    def _get_trace(self):
        request_id = self.path[len("/trace/"):]
        record = self.server.traces.get(request_id)
        if record is None:
            detail = (
                "tracing is disabled on this server"
                if not self.server.tracing
                else "not traced, or evicted from the trace store"
            )
            return 404, {
                "ok": False,
                "error": f"no trace for request id {request_id!r} ({detail})",
                "error_type": "not_found",
            }
        return 200, {"ok": True, "trace": record}

    def _post_label(self):
        payload = self._read_json()
        with self.server.admission.admit():
            return 200, self.server.engine.label(payload)

    def _post_batch(self):
        payload = self._read_json()
        if not isinstance(payload, dict) or not isinstance(
            payload.get("requests"), list
        ):
            raise RequestError("batch payload must carry a 'requests' array")
        jobs = payload.get("jobs")
        if jobs is not None and (isinstance(jobs, bool) or not isinstance(jobs, int)):
            raise RequestError("'jobs' must be an integer")
        timeout = payload.get("timeout")
        if timeout is not None:
            try:
                timeout = float(timeout)
            except (TypeError, ValueError):
                raise RequestError("'timeout' must be a number of seconds") from None
        with self.server.admission.admit():
            results = self.server.engine.label_batch(
                payload["requests"], jobs=jobs, timeout=timeout
            )
        return 200, {
            "ok": all(r.get("ok") for r in results),
            "count": len(results),
            "results": results,
        }


class LabelingServer:
    """Lifecycle wrapper: bind, serve on a background thread, stop cleanly.

    ::

        with LabelingServer(port=0) as server:     # 0 = ephemeral port
            client = ServiceClient(server.url)
            client.healthz()

    ``serve_forever()`` (no background thread) is what ``repro serve``
    uses; ``stop()`` is idempotent and also runs on context exit.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_size: int = 128,
        jobs: int = 1,
        engine: LabelingEngine | None = None,
        quiet: bool = True,
        max_concurrent: int = 8,
        max_queue: int = 32,
        retry_after_s: float = 0.5,
        executor: str = "thread",
        disk_cache=None,
        tracing: bool = False,
        trace_log=None,
        trace_capacity: int = 128,
    ) -> None:
        self.engine = engine or LabelingEngine(
            cache_size=cache_size,
            jobs=jobs,
            executor=executor,
            disk_cache=disk_cache,
        )
        # A trace log may arrive as a TraceLog or as a directory path.
        if trace_log is not None and not isinstance(trace_log, TraceLog):
            trace_log = TraceLog(trace_log)
        self._httpd = _LabelingHTTPServer(
            (host, port),
            self.engine,
            quiet=quiet,
            admission=AdmissionController(
                max_concurrent=max_concurrent,
                max_queue=max_queue,
                retry_after_s=retry_after_s,
            ),
            tracing=tracing,
            trace_log=trace_log,
            trace_capacity=trace_capacity,
        )
        self._thread: threading.Thread | None = None
        self._loop_entered = False
        self._stopped = False

    @property
    def admission(self) -> AdmissionController:
        return self._httpd.admission

    @property
    def traces(self) -> TraceStore:
        return self._httpd.traces

    @property
    def trace_log(self) -> TraceLog | None:
        return self._httpd.trace_log

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "LabelingServer":
        """Serve on a daemon thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._loop_entered = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-serve:{self.port}",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`stop` (or interrupt)."""
        self._loop_entered = True
        self._httpd.serve_forever()

    def stop(self) -> None:
        """Graceful shutdown: stop accepting, close the socket, drop caches.

        Idempotent; in-flight handlers finish (``shutdown`` only stops the
        accept loop, daemon handler threads drain on their own).
        """
        if self._stopped:
            return
        self._stopped = True
        # shutdown() handshakes with a serve loop; calling it when no loop
        # ever ran would block forever on the loop-exit event.
        if self._loop_entered:
            self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.engine.close()

    def __enter__(self) -> "LabelingServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
