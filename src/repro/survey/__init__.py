"""Human-acceptance substrate: simulated respondents, HA / HA* metrics."""

from .respondent import Difficulty, Respondent
from .study import StudyResult, run_study

__all__ = ["Difficulty", "Respondent", "StudyResult", "run_study"]
