"""Simulated survey respondents — the human-acceptance substrate.

The paper's Section 7 asked 11 people three questions about each integrated
interface: (1) any difficulty filling in a field?  (2) which fields?
(3) are those fields understandable on a *source* interface?  Its analysis
attributes every hard-to-understand field to identifiable causes: fields
with frequency 1 ("too specific to be included in the global interface",
e.g. chain discount programs), unlabeled fields without instances, residual
homonym pairs, and overly generic labels.

A :class:`Respondent` encodes exactly that causal model: it flags a field
with a per-cause probability (people differ — not everyone notices every
problem), and separately judges whether the difficulty is *inherited from
the sources* (question 3) — which is what separates HA from HA*.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.result import LabelingResult
from ..core.semantics import SemanticComparator
from ..schema.clusters import Mapping

__all__ = ["Difficulty", "Respondent"]

#: Single content words too vague to stand alone on a global interface.
_GENERIC_LONERS = frozenset(
    {"category", "function", "type", "option", "options", "name", "other"}
)


@dataclass(frozen=True)
class Difficulty:
    """One flagged field: the cluster, the cause, and source attribution."""

    cluster: str
    cause: str                   # unlabeled | too_specific | homonym | generic
    inherited_from_source: bool  # question 3: hard on the source too?


class Respondent:
    """One simulated survey participant.

    ``attentiveness`` scales every flagging probability: a distracted
    respondent misses problems a careful one reports, which is how the
    paper's per-person averages get their spread.
    """

    #: Base flagging probability per cause (scaled by attentiveness).
    _CAUSE_PROBABILITY = {
        "unlabeled": 0.95,
        "too_specific": 0.75,
        "homonym": 0.6,
        "generic": 0.15,
    }

    def __init__(self, seed: int, attentiveness: float | None = None) -> None:
        self._rng = random.Random(seed)
        if attentiveness is None:
            attentiveness = 0.7 + 0.3 * self._rng.random()
        self.attentiveness = attentiveness
        self._homonym_peers: dict[str, str] = {}
        self._comparator: SemanticComparator | None = None

    # ------------------------------------------------------------------

    def review(
        self,
        result: LabelingResult,
        mapping: Mapping,
        comparator: SemanticComparator,
    ) -> list[Difficulty]:
        """Question 1+2: the fields this respondent has difficulty with."""
        difficulties: list[Difficulty] = []
        self._homonym_peers = {}
        self._comparator = comparator
        for cluster, cause in self._objective_problems(result, mapping, comparator):
            probability = (
                self._CAUSE_PROBABILITY[cause] * self.attentiveness
            )
            if self._rng.random() < probability:
                difficulties.append(
                    Difficulty(
                        cluster=cluster,
                        cause=cause,
                        inherited_from_source=self._inherited(cluster, cause, mapping),
                    )
                )
        return difficulties

    # ------------------------------------------------------------------

    def _objective_problems(
        self,
        result: LabelingResult,
        mapping: Mapping,
        comparator: SemanticComparator,
    ):
        """The causal model: (cluster, cause) pairs a person could notice."""
        labels = {
            c: l for c, l in result.field_labels.items() if c in mapping
        }
        named = [(c, l) for c, l in labels.items() if l]
        token_df = self._token_document_frequency(mapping, comparator)
        for cluster, label in labels.items():
            leaf = result.root.find_by_cluster(cluster)
            has_instances = bool(leaf is not None and leaf.instances)
            if not label and not has_instances:
                yield cluster, "unlabeled"
                continue
            if mapping[cluster].frequency() <= 1 and self._is_jargon(
                label, token_df, comparator
            ):
                # The paper: "without exception all the fields that people
                # found hard to understand have ... a frequency of 1" —
                # chain-specific jargon like "Wyndham ByRequest No".  A
                # frequency-1 field whose words are ordinary domain
                # vocabulary ("Signed Copy") does not confuse anyone.
                yield cluster, "too_specific"
                continue
            if label:
                tokens = comparator.analyzer.label(label).tokens
                if (
                    len(tokens) == 1
                    and tokens[0].lemma in _GENERIC_LONERS
                ):
                    yield cluster, "generic"
                    continue
                for other_cluster, other_label in named:
                    if other_cluster == cluster:
                        continue
                    if comparator.similar(label, other_label):
                        self._homonym_peers.setdefault(cluster, other_cluster)
                        yield cluster, "homonym"
                        break

    @staticmethod
    def _token_document_frequency(mapping: Mapping, comparator) -> dict[str, int]:
        """How many source interfaces use each content-word stem anywhere."""
        per_interface: dict[str, set[str]] = {}
        for cluster in mapping.clusters:
            for interface_name, node in cluster.members.items():
                if not node.is_labeled:
                    continue
                stems = comparator.analyzer.label(node.label).stems
                per_interface.setdefault(interface_name, set()).update(stems)
        counts: dict[str, int] = {}
        for stems in per_interface.values():
            for stem in stems:
                counts[stem] = counts.get(stem, 0) + 1
        return counts

    def _is_jargon(self, label, token_df: dict[str, int], comparator) -> bool:
        """A label is jargon when it is missing, or uses a token that is
        both outside ordinary vocabulary (the lexicon) and a one-off in the
        corpus — brand/program names like "Wyndham ByRequest No"."""
        if not label:
            return True
        tokens = comparator.analyzer.label(label).tokens
        if not tokens:
            return True
        return any(
            not comparator.wordnet.is_known(t.lemma)
            and token_df.get(t.stem, 0) <= 1
            for t in tokens
        )

    def _inherited(self, cluster: str, cause: str, mapping: Mapping) -> bool:
        """Question 3: is the field just as hard on a source interface?

        Frequency-1 fields are verbatim copies of their single source — if
        they confuse here, they confuse there (the paper's Hotels/Book
        analysis).  Unlabeled fields are unlabeled on the sources too when
        no source ever labels them.
        """
        if cause == "too_specific":
            return True
        if cause == "unlabeled":
            return all(
                not node.is_labeled for node in mapping[cluster].members.values()
            )
        if cause == "homonym":
            # Inherited when some source interface itself labels both
            # clusters ambiguously (the paper's airline analysis: "half of
            # the errors originate from source interfaces").
            peer = self._homonym_peers.get(cluster)
            comparator = self._comparator
            if peer is not None and peer in mapping and comparator is not None:
                for interface_name, node in mapping[cluster].members.items():
                    other = mapping[peer].members.get(interface_name)
                    if (
                        node.is_labeled
                        and other is not None
                        and other.is_labeled
                        and comparator.similar(node.label, other.label)
                    ):
                        return True
        return False
