"""The human-acceptance study: HA and HA* of Table 6 (columns 14-15).

"HA is defined as the average of per person percentage of non-ambiguous
attributes within an integrated interface."  HA* recomputes the metric
after discounting fields "which are difficult to understand in both
integrated interface and on some source interfaces" — hence HA* >= HA.

:func:`run_study` polls ``respondent_count`` simulated users (11, like the
paper) over a labeled integrated interface and returns both metrics plus
the flagged fields for inspection.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..core.result import LabelingResult
from ..core.semantics import SemanticComparator
from ..schema.clusters import Mapping
from .respondent import Difficulty, Respondent

__all__ = ["StudyResult", "run_study"]


@dataclass
class StudyResult:
    """HA / HA* plus per-field flag counts for one integrated interface."""

    ha: float
    ha_star: float
    respondent_count: int
    field_count: int
    flag_counts: Counter = field(default_factory=Counter)
    difficulties: list[list[Difficulty]] = field(default_factory=list)

    def flagged_clusters(self) -> list[str]:
        return [cluster for cluster, __ in self.flag_counts.most_common()]


def run_study(
    result: LabelingResult,
    mapping: Mapping,
    comparator: SemanticComparator | None = None,
    respondent_count: int = 11,
    seed: int = 0,
) -> StudyResult:
    """Simulate the Section 7 survey over a labeling result.

    HA averages, per respondent, the fraction of fields *not* flagged;
    HA* does the same after removing flags the respondent attributes to
    the source interfaces (question 3 of the survey).
    """
    comparator = comparator or SemanticComparator()
    fields = [
        leaf.cluster
        for leaf in result.root.leaves()
        if leaf.cluster is not None
    ]
    total = len(fields)
    if total == 0:
        return StudyResult(
            ha=1.0, ha_star=1.0, respondent_count=respondent_count, field_count=0
        )

    ha_scores: list[float] = []
    ha_star_scores: list[float] = []
    flag_counts: Counter = Counter()
    all_difficulties: list[list[Difficulty]] = []

    for index in range(respondent_count):
        respondent = Respondent(seed=seed * 1009 + index)
        difficulties = respondent.review(result, mapping, comparator)
        all_difficulties.append(difficulties)
        flagged = {d.cluster for d in difficulties}
        flag_counts.update(flagged)
        ha_scores.append((total - len(flagged)) / total)
        own_fault = {
            d.cluster for d in difficulties if not d.inherited_from_source
        }
        ha_star_scores.append((total - len(own_fault)) / total)

    return StudyResult(
        ha=sum(ha_scores) / respondent_count,
        ha_star=sum(ha_star_scores) / respondent_count,
        respondent_count=respondent_count,
        field_count=total,
        flag_counts=flag_counts,
        difficulties=all_difficulties,
    )
