"""repro.testing — paper-invariant oracles and the chaos harness.

:mod:`.oracles` turns the paper's correctness contracts (horizontal
consistency within solved groups, vertical generality down the tree,
idempotence of ``label_corpus``) into reusable checkers that run from
pytest, from the engine's ``verify="strict"`` mode, and over every
successful item of a chaos sweep.

:mod:`.chaos` is the sweep itself: seeded :class:`~repro.resilience.FaultPlan`
after plan driven through the full engine + batch stack, asserting that
every response stays well-formed, fault-free items are byte-identical to a
no-fault baseline, and surviving results still satisfy the oracles.  The
``repro chaos`` CLI command, ``tests/test_resilience.py`` and
``benchmarks/test_bench_resilience.py`` all drive this one harness.
"""

from .chaos import run_chaos_sweep
from .oracles import (
    OracleError,
    OracleReport,
    OracleViolation,
    canonical_response,
    check_horizontal_consistency,
    check_label_idempotence,
    check_tree_dict,
    check_vertical_generality,
    verify_labeling,
    wordnet_strict_hypernym,
)

__all__ = [
    "OracleError",
    "OracleReport",
    "OracleViolation",
    "canonical_response",
    "check_horizontal_consistency",
    "check_label_idempotence",
    "check_tree_dict",
    "check_vertical_generality",
    "run_chaos_sweep",
    "verify_labeling",
    "wordnet_strict_hypernym",
]
