"""The chaos harness: seeded fault plans driven through the whole stack.

One sweep = one fault-free baseline + ``plans`` seeded
:class:`~repro.resilience.FaultPlan` runs over the same batch of payloads.
For every run the harness asserts the service's degradation contract:

* the batch response is **complete and well-formed** — one entry per
  payload, in order, each either ``ok`` or a classified error; no item is
  ever silently dropped;
* every successful item is **byte-identical** to the baseline (the
  pipeline is deterministic and injected faults either heal or fail — they
  must never skew a result that is reported as a success);
* successful items still satisfy the **vertical oracles** over their
  serialized trees;
* failed items carry structured provenance: a message, a classified
  ``error_type``, and — for transient exhaustion — the injected-fault
  trail that killed them.

Violations are collected as ``anomalies`` rather than raised, so a CLI
sweep reports everything it saw; the pytest suites assert the list is
empty.
"""

from __future__ import annotations

from ..resilience import FaultPlan, RetryPolicy
from .oracles import OracleViolation, canonical_response, check_tree_dict

__all__ = ["run_chaos_sweep"]

#: error_type values a degraded batch entry may legitimately carry.
_KNOWN_ERROR_TYPES = {
    "invalid_request",
    "internal",
    "timeout",
    "transient",
    "circuit_open",
}

#: A fast backoff curve so sweeps spend their time labeling, not sleeping.
_SWEEP_RETRY = RetryPolicy(base_delay_s=0.001, max_delay_s=0.005)


def run_chaos_sweep(
    plans: int = 10,
    seed: int = 0,
    rate: float = 0.1,
    jobs: int = 2,
    domains=None,
    dataset_seed: int = 0,
    payloads=None,
    cache_size: int = 64,
    comparator=None,
    latency_s: float = 0.001,
    max_fires: int | None = 1,
    retry: RetryPolicy | None = None,
    check_trees: bool = True,
) -> dict:
    """Run ``plans`` seeded fault plans over a payload batch; full accounting.

    ``payloads`` overrides the default seed-domain batch (``domains`` +
    ``dataset_seed``).  A shared ``comparator`` keeps lexicon analysis warm
    across the baseline and every plan — essential for large sweeps.
    Returns a JSON-ready report whose ``anomalies`` list is empty iff every
    degradation-contract property held for every plan.
    """
    from ..service.engine import LabelingEngine

    if payloads is None:
        from ..datasets.registry import DOMAINS

        names = list(domains) if domains else sorted(DOMAINS)
        payloads = [{"domain": name, "seed": dataset_seed} for name in names]
    payloads = list(payloads)
    if not payloads:
        raise ValueError("chaos sweep needs at least one payload")
    retry = retry or _SWEEP_RETRY

    # The no-fault truth every successful chaos item must reproduce.
    baseline_engine = LabelingEngine(cache_size=0, comparator=comparator)
    baseline = [
        canonical_response(baseline_engine.label(payload)) for payload in payloads
    ]

    anomalies: list[dict] = []
    per_plan: list[dict] = []
    totals = {"ok": 0, "failed": 0, "recovered": 0, "identical": 0, "injected": 0}

    def anomaly(plan: FaultPlan, index: int, kind: str, message: str) -> None:
        anomalies.append(
            {
                "plan": plan.name,
                "seed": plan.seed,
                "item": index,
                "kind": kind,
                "message": message,
            }
        )

    for plan_index in range(max(1, int(plans))):
        plan = FaultPlan.random(
            seed + plan_index, rate=rate, max_fires=max_fires, latency_s=latency_s
        )
        engine = LabelingEngine(
            cache_size=cache_size,
            jobs=jobs,
            fault_plan=plan,
            retry=retry,
            comparator=comparator,
        )
        responses = engine.label_batch(payloads, jobs=jobs)

        if len(responses) != len(payloads):
            anomaly(
                plan,
                -1,
                "dropped",
                f"batch returned {len(responses)} entries for "
                f"{len(payloads)} payloads",
            )
        counts = {"ok": 0, "failed": 0, "recovered": 0, "identical": 0}
        for index, response in enumerate(responses):
            if not isinstance(response, dict) or "ok" not in response:
                anomaly(plan, index, "malformed", f"not a response dict: {response!r}")
                continue
            resilience = response.get("resilience")
            if response["ok"]:
                counts["ok"] += 1
                if resilience and (
                    resilience.get("attempts", 1) > 1 or resilience.get("faults")
                ):
                    counts["recovered"] += 1
                if canonical_response(response) == baseline[index]:
                    counts["identical"] += 1
                else:
                    anomaly(
                        plan,
                        index,
                        "divergence",
                        "successful item differs from the no-fault baseline",
                    )
                if check_trees:
                    violations: list[OracleViolation] = check_tree_dict(
                        response["tree"],
                        comparator or baseline_engine.default_comparator(),
                    )
                    for violation in violations:
                        anomaly(plan, index, "oracle", str(violation))
            else:
                counts["failed"] += 1
                if not response.get("error") or response.get("error_type") not in (
                    _KNOWN_ERROR_TYPES
                ):
                    anomaly(
                        plan,
                        index,
                        "unclassified",
                        f"degraded entry lacks classification: {response!r}",
                    )
                if response.get("error_type") == "transient" and not (
                    resilience and resilience.get("faults")
                ):
                    anomaly(
                        plan,
                        index,
                        "no-provenance",
                        "transient failure without an injected-fault trail",
                    )
        injected = plan.stats()
        per_plan.append({"plan": plan.name, "seed": plan.seed, **counts,
                         "injected": injected["injected"]})
        for key in ("ok", "failed", "recovered", "identical"):
            totals[key] += counts[key]
        totals["injected"] += injected["injected"]

    report = {
        "plans": max(1, int(plans)),
        "seed": seed,
        "rate": rate,
        "jobs": jobs,
        "items_per_plan": len(payloads),
        "items": max(1, int(plans)) * len(payloads),
        "ok_items": totals["ok"],
        "failed_items": totals["failed"],
        "recovered_items": totals["recovered"],
        "identical_items": totals["identical"],
        "injected_faults": totals["injected"],
        "anomalies": anomalies,
        "ok": not anomalies,
        "per_plan": per_plan,
    }
    return report
