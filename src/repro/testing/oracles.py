"""Paper-invariant oracles — the correctness contracts as runtime checkers.

The paper's Definitions 1–3 (label relations, consistent rows, consistent
naming solutions) and its Section-4/6 construction imply properties any
*correct* labeling must have, independent of which labels were chosen.
This module states them as reusable oracles that run over a finished
:class:`~repro.core.result.LabelingResult` — from pytest (regression
suites), from the chaos harness (every successful chaos item must still
satisfy the paper), or inside the engine (``verify="strict"`` re-checks
every fresh result before it is served or cached).

Oracles
-------
**Horizontal consistency** (:func:`check_horizontal_consistency`), within
every solved group:

* *coverage* — a group reported consistent labels every labelable cluster
  (one some source labels); Definition 3 solutions cover the group;
* *provenance* — every assigned label is one some source interface
  actually uses for that cluster (solutions and homonym repairs both draw
  rows from the group relation, so a label from nowhere is a bug);
* *agreement* — the flat ``field_labels`` map agrees with the chosen
  solution of the cluster's group (the response the service serializes is
  the solution the algorithm picked).

**Vertical generality** (:func:`check_vertical_generality`), down every
root-to-leaf path:

* no labeled leaf is *strictly more general* than a labeled internal
  ancestor by genuine WordNet hypernymy (Definition 5 inverted with an
  actual hypernym edge — the token-subset reading of Definition 1 is
  excluded because ``Availability`` vs ``Availability Options`` is a
  legitimate, paper-sanctioned outcome);
* no node repeats an ancestor's label (Proposition 2's
  ``Le - Lpath(e)`` discipline).

**Idempotence** (:func:`check_label_idempotence`): ``label_corpus`` is a
pure function — labeling the same payload with caching on, caching off,
and on a repeat engine call must produce canonically identical responses.

:func:`check_tree_dict` runs the vertical oracle over *serialized* trees
(service responses, golden files) so invariants can be asserted without
the in-memory result objects.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from ..core.semantics import SemanticComparator

__all__ = [
    "OracleError",
    "OracleReport",
    "OracleViolation",
    "canonical_response",
    "check_horizontal_consistency",
    "check_label_idempotence",
    "check_tree_dict",
    "check_vertical_generality",
    "verify_labeling",
    "wordnet_strict_hypernym",
]


@dataclass(frozen=True)
class OracleViolation:
    """One broken invariant: which oracle, on what, and why it matters."""

    oracle: str
    subject: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.oracle}] {self.subject}: {self.message}"


class OracleError(AssertionError):
    """Raised by strict verification when any oracle is violated."""

    def __init__(self, report: "OracleReport") -> None:
        super().__init__(report.summary())
        self.report = report


@dataclass
class OracleReport:
    """Outcome of a verification pass: what ran, what failed."""

    checks: int = 0
    violations: list[OracleViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        if self.ok:
            return f"oracles ok ({self.checks} checks)"
        lines = [f"{len(self.violations)} oracle violation(s) in {self.checks} checks:"]
        lines += [f"  {v}" for v in self.violations]
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise OracleError(self)


# ----------------------------------------------------------------------
# Relation helper: strict WordNet generality.
# ----------------------------------------------------------------------


def wordnet_strict_hypernym(
    comparator: SemanticComparator, a: str, b: str
) -> bool:
    """Definition-1 hypernymy of ``a`` over ``b`` via a real WordNet edge.

    Like :meth:`SemanticComparator.hypernym` but the token-count subset
    rule alone does not qualify: at least one token pair must be related
    by actual lexicon hypernymy.  This is the generality notion the
    vertical oracle enforces — ``Vehicle`` over ``Sedan`` is an inversion,
    ``Time`` over ``Drop-off Time`` is not.
    """
    la, lb = comparator._as_label(a), comparator._as_label(b)
    if la.has_conjunction or lb.has_conjunction:
        return False
    n, m = len(la.tokens), len(lb.tokens)
    if n == 0 or n > m:
        return False
    saw_hypernymy = False
    for a_tok in la.tokens:
        related = False
        for b_tok in lb.tokens:
            rel, via_hyp = comparator._tokens_related_for_hypernymy(a_tok, b_tok)
            if rel:
                related = True
                saw_hypernymy = saw_hypernymy or via_hyp
        if not related:
            return False
    return saw_hypernymy


# ----------------------------------------------------------------------
# Horizontal consistency.
# ----------------------------------------------------------------------


def check_horizontal_consistency(result, comparator=None) -> list[OracleViolation]:
    """Coverage, provenance and agreement over every solved group."""
    violations: list[OracleViolation] = []
    for name, group_result in result.group_results.items():
        solution = result.chosen_solutions.get(name)
        if solution is None:
            continue
        relation = group_result.relation
        labelable = {
            c
            for c in relation.clusters
            if any(t.label_for(c) is not None for t in relation.tuples)
        }
        source_labels = {
            c: {t.label_for(c) for t in relation.tuples} - {None}
            for c in relation.clusters
        }
        for cluster in group_result.group.clusters:
            label = solution.labels.get(cluster)
            if group_result.consistent and cluster in labelable and label is None:
                violations.append(
                    OracleViolation(
                        "horizontal.coverage",
                        f"{name}/{cluster}",
                        "group reported consistent but a labelable cluster "
                        "received no label",
                    )
                )
            if label is not None and label not in source_labels.get(cluster, set()):
                violations.append(
                    OracleViolation(
                        "horizontal.provenance",
                        f"{name}/{cluster}",
                        f"assigned label {label!r} is used by no source "
                        "interface for this cluster",
                    )
                )
            assigned = result.field_labels.get(cluster)
            if assigned != label:
                violations.append(
                    OracleViolation(
                        "horizontal.agreement",
                        f"{name}/{cluster}",
                        f"field_labels says {assigned!r} but the chosen "
                        f"solution says {label!r}",
                    )
                )
    return violations


# ----------------------------------------------------------------------
# Vertical generality.
# ----------------------------------------------------------------------


def check_vertical_generality(
    root, comparator: SemanticComparator
) -> list[OracleViolation]:
    """Generality inversions and path label repeats down the tree."""
    violations: list[OracleViolation] = []
    for node in root.internal_nodes():
        if node is root or not node.is_labeled:
            continue
        for leaf in node.walk():
            if not leaf.is_leaf or not leaf.is_labeled:
                continue
            if wordnet_strict_hypernym(comparator, leaf.label, node.label):
                violations.append(
                    OracleViolation(
                        "vertical.generality",
                        node.name,
                        f"leaf {leaf.label!r} is strictly more general than "
                        f"its ancestor {node.label!r}",
                    )
                )
    for node in root.walk():
        if node is root or not node.is_labeled:
            continue
        for ancestor in node.ancestors():
            if ancestor.is_labeled and comparator.string_equal(
                node.label, ancestor.label
            ):
                violations.append(
                    OracleViolation(
                        "vertical.path",
                        node.name,
                        f"label {node.label!r} repeats its ancestor "
                        f"{ancestor.name!r} (Proposition 2)",
                    )
                )
    return violations


def check_tree_dict(tree: dict, comparator: SemanticComparator) -> list[OracleViolation]:
    """The vertical oracle over a serialized tree (response/golden shape).

    Accepts any nested ``{"label": ..., "children": [...]}`` dict — the
    service's ``node_to_dict`` output and the golden snapshots both fit.
    """
    if not isinstance(tree, dict) or (
        "children" not in tree and "label" not in tree
    ):
        raise ValueError("not a serialized schema node (needs label/children)")
    violations: list[OracleViolation] = []

    def descend(node: dict, path: list[tuple[str, str]], position: str) -> None:
        label = node.get("label")
        name = node.get("name") or position
        children = node.get("children") or []
        if label is not None:
            for anc_name, anc_label in path:
                if comparator.string_equal(label, anc_label):
                    violations.append(
                        OracleViolation(
                            "vertical.path",
                            name,
                            f"label {label!r} repeats ancestor {anc_name!r}",
                        )
                    )
        if label is not None and children and position:  # internal, labeled
            for leaf_name, leaf_label in _labeled_leaves(node, position):
                if wordnet_strict_hypernym(comparator, leaf_label, label):
                    violations.append(
                        OracleViolation(
                            "vertical.generality",
                            name,
                            f"leaf {leaf_label!r} ({leaf_name}) is strictly "
                            f"more general than ancestor {label!r}",
                        )
                    )
        next_path = path + [(name, label)] if label is not None else path
        for index, child in enumerate(children):
            descend(child, next_path, f"{position}.{index}")

    def _labeled_leaves(node: dict, position: str):
        for index, child in enumerate(node.get("children") or []):
            child_pos = f"{position}.{index}"
            if child.get("children"):
                yield from _labeled_leaves(child, child_pos)
            elif child.get("label") is not None:
                yield child.get("name") or child_pos, child["label"]

    for index, child in enumerate(tree.get("children") or []):
        descend(child, [], f"root.{index}")
    return violations


# ----------------------------------------------------------------------
# Idempotence.
# ----------------------------------------------------------------------

#: Response keys that legitimately vary between otherwise identical runs.
_VOLATILE_KEYS = ("cached", "resilience")


def canonical_response(response: dict) -> dict:
    """A response stripped of run-volatile fields (timing, cache flags).

    Two correct runs over the same payload must produce *identical*
    canonical responses — this is the byte-identity the chaos suite and
    the idempotence oracle compare.
    """
    clean = copy.deepcopy(response)
    for volatile in _VOLATILE_KEYS:
        clean.pop(volatile, None)
    stats = clean.get("stats")
    if isinstance(stats, dict):
        stats.pop("elapsed_ms", None)
    return clean


def check_label_idempotence(
    payload: dict, engine_factory=None
) -> list[OracleViolation]:
    """Label ``payload`` cached, uncached and repeated; all must agree.

    ``engine_factory(cache_size=...)`` defaults to building fresh
    :class:`~repro.service.engine.LabelingEngine` instances; injectable so
    the chaos/regression suites can share warm comparators.
    """
    if engine_factory is None:
        from ..service.engine import LabelingEngine

        engine_factory = LabelingEngine
    violations: list[OracleViolation] = []
    cached_engine = engine_factory(cache_size=8)
    first = canonical_response(cached_engine.label(payload))
    repeat = canonical_response(cached_engine.label(payload))
    uncached = canonical_response(engine_factory(cache_size=0).label(payload))
    subject = first.get("fingerprint", "payload")
    if repeat != first:
        violations.append(
            OracleViolation(
                "idempotence.cache-hit",
                subject,
                "a cache-served repeat differs from the original response",
            )
        )
    if uncached != first:
        violations.append(
            OracleViolation(
                "idempotence.cache-off",
                subject,
                "labeling with the cache disabled differs from cached labeling",
            )
        )
    return violations


# ----------------------------------------------------------------------
# Composite entry point (what the engine's strict mode runs).
# ----------------------------------------------------------------------


def verify_labeling(root, result, comparator: SemanticComparator) -> OracleReport:
    """Horizontal + vertical oracles over one finished labeling."""
    report = OracleReport()
    horizontal = check_horizontal_consistency(result, comparator)
    vertical = check_vertical_generality(root, comparator)
    report.checks = (
        sum(len(gr.group.clusters) for gr in result.group_results.values())
        + len(result.node_labels)
    )
    report.violations = horizontal + vertical
    return report
