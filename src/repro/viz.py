"""Graphviz (DOT) rendering of schema trees — figures like the paper's.

The paper communicates through schema-tree figures (Figures 2, 6, 11).
:func:`to_dot` emits Graphviz source for any :class:`SchemaNode` tree —
fields as boxes (with their cluster annotation), internal nodes as
ellipses, unlabeled nodes dashed — so ``dot -Tpng`` reproduces that visual
language.  No Graphviz dependency is needed to *generate* the source.

::

    from repro import run_domain
    from repro.viz import to_dot

    run = run_domain("auto")
    print(to_dot(run.labeling.root, title="Integrated Auto Interface"))
"""

from __future__ import annotations

from .schema.tree import SchemaNode

__all__ = ["to_dot", "write_dot"]


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _node_line(node: SchemaNode, node_id: str) -> str:
    if node.is_leaf:
        label = node.label or "(no label)"
        if node.cluster:
            label = f"{label}\\n[{node.cluster}]"
        style = "filled" if node.is_labeled else "filled,dashed"
        return (
            f'  {node_id} [shape=box, style="{style}", fillcolor="#eef4fb", '
            f'label="{_escape(label)}"];'
        )
    label = node.label or "(no label)"
    style = "solid" if node.is_labeled else "dashed"
    return (
        f'  {node_id} [shape=ellipse, style="{style}", '
        f'label="{_escape(label)}"];'
    )


def to_dot(root: SchemaNode, title: str = "") -> str:
    """Graphviz source for the tree rooted at ``root``."""
    lines = ["digraph schema_tree {"]
    lines.append("  rankdir=TB;")
    lines.append('  node [fontname="Helvetica", fontsize=11];')
    if title:
        lines.append(f'  labelloc="t"; label="{_escape(title)}";')

    ids: dict[int, str] = {}
    for index, node in enumerate(root.walk()):
        ids[id(node)] = f"n{index}"
    for node in root.walk():
        lines.append(_node_line(node, ids[id(node)]))
    for node in root.walk():
        for child in node.children:
            lines.append(f"  {ids[id(node)]} -> {ids[id(child)]};")
    lines.append("}")
    return "\n".join(lines)


def write_dot(root: SchemaNode, path, title: str = "") -> None:
    """Write :func:`to_dot` output to ``path``."""
    from pathlib import Path

    Path(path).write_text(to_dot(root, title=title) + "\n")
