"""Shared fixtures: lexicon, comparator, and the paper's worked examples."""

from __future__ import annotations

import pytest

from repro.core.label import LabelAnalyzer
from repro.core.semantics import SemanticComparator
from repro.lexicon.data import build_default_wordnet
from repro.schema.clusters import Mapping
from repro.schema.groups import Group, GroupKind
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode


@pytest.fixture(scope="session")
def wordnet():
    return build_default_wordnet()


@pytest.fixture(scope="session")
def analyzer(wordnet):
    return LabelAnalyzer(wordnet)


@pytest.fixture(scope="session")
def comparator(analyzer):
    return SemanticComparator(analyzer)


def build_group_corpus(rows: dict[str, dict[str, str]], clusters: list[str]):
    """Build interfaces + mapping from ``{interface: {cluster: label}}``.

    Each interface gets one group node containing its labeled fields —
    the shape of the paper's Tables 2-4.
    """
    mapping = Mapping()
    interfaces = []
    for interface_name, labels in rows.items():
        fields = []
        for cluster in clusters:
            if cluster not in labels:
                continue
            field = make_field(
                labels[cluster],
                cluster=cluster,
                name=f"{interface_name}:{cluster}",
            )
            fields.append(field)
            mapping.assign(cluster, interface_name, field)
        root = SchemaNode(
            None,
            [make_group(None, fields, name=f"{interface_name}:grp")],
            name=f"{interface_name}:root",
        )
        interfaces.append(QueryInterface(interface_name, root))
    return interfaces, mapping


def regular_group(clusters: list[str], name: str = "g") -> Group:
    return Group(
        name=name,
        kind=GroupKind.REGULAR,
        clusters=tuple(clusters),
        parent_name="p",
    )


@pytest.fixture()
def table2_corpus():
    """The paper's Table 2: the airline passenger group."""
    rows = {
        "aa": {"c_adult": "Adults", "c_child": "Children"},
        "airfareplanet": {"c_adult": "Adult", "c_child": "Child"},
        "airtravel": {"c_adult": "Adult", "c_child": "Child", "c_infant": "Infant"},
        "british": {"c_senior": "Seniors", "c_adult": "Adults", "c_child": "Children"},
        "economytravel": {
            "c_adult": "Adults", "c_child": "Children", "c_infant": "Infants"
        },
        "vacations": {"c_senior": "Seniors", "c_adult": "Adults", "c_child": "Children"},
    }
    clusters = ["c_senior", "c_adult", "c_child", "c_infant"]
    interfaces, mapping = build_group_corpus(rows, clusters)
    return interfaces, mapping, regular_group(clusters, "passengers")


@pytest.fixture()
def table3_corpus():
    """The paper's Table 3: the auto location group with disjoint halves."""
    rows = {
        "100auto": {"c_state": "State", "c_city": "City"},
        "Ads4autos": {"c_state": "State", "c_city": "City"},
        "CarMarket": {"c_zip": "Zip Code", "c_distance": "Distance"},
        "cars-1": {"c_zip": "Your Zip", "c_distance": "Within"},
    }
    clusters = ["c_state", "c_city", "c_zip", "c_distance"]
    interfaces, mapping = build_group_corpus(rows, clusters)
    return interfaces, mapping, regular_group(clusters, "location")


@pytest.fixture()
def table4_corpus():
    """The paper's Table 4: the airline service group (semantic level)."""
    rows = {
        "aa": {"c_stops": "NonStop", "c_airline": "Choose an Airline"},
        "airfare": {
            "c_stops": "Number of Connections", "c_airline": "Airline Preference"
        },
        "alldest": {"c_class": "Class of Ticket", "c_airline": "Preferred Airline"},
        "cheap": {"c_stops": "Max. Number of Stops", "c_airline": "Airline Preference"},
        "msn": {"c_class": "Class", "c_airline": "Airline"},
    }
    clusters = ["c_stops", "c_class", "c_airline"]
    interfaces, mapping = build_group_corpus(rows, clusters)
    return interfaces, mapping, regular_group(clusters, "service")
