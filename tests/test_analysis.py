"""The typed paper-vs-measured comparison (repro.analysis)."""

from __future__ import annotations

import pytest

from repro.analysis import Deviation, compare_to_paper, shape_violations
from repro.experiment import run_all_domains


@pytest.fixture(scope="module")
def runs():
    return run_all_domains(seed=0, respondent_count=11)


class TestCompareToPaper:
    def test_reference_corpus_has_no_shape_violations(self, runs):
        assert shape_violations(runs) == []

    def test_magnitude_deviations_are_typed(self, runs):
        for deviation in compare_to_paper(runs):
            assert isinstance(deviation, Deviation)
            assert deviation.domain in runs
            assert not deviation.is_shape_violation

    def test_detects_fldacc_floor_violation(self, runs):
        import dataclasses

        broken = dict(runs)
        bad = dataclasses.replace  # DomainRunResult is a plain dataclass
        run = runs["job"]
        hacked = bad(run, fld_acc=0.5)
        broken["job"] = hacked
        violations = shape_violations(broken)
        assert any(
            d.domain == "job" and d.metric == "fld_acc" for d in violations
        )

    def test_detects_classification_flip(self, runs):
        class Fake:
            def __getattr__(self, name):
                return getattr(runs["job"], name)

            classification = "inconsistent"

        broken = dict(runs)
        broken["job"] = Fake()
        violations = shape_violations(broken)
        assert any(
            d.domain == "job" and d.metric == "classification"
            for d in violations
        )

    def test_detects_ha_star_inversion(self, runs):
        class Fake:
            def __getattr__(self, name):
                return getattr(runs["book"], name)

            ha = 0.9
            ha_star = 0.5

        broken = dict(runs)
        broken["book"] = Fake()
        violations = shape_violations(broken)
        assert any(d.metric == "ha_star" for d in violations)
