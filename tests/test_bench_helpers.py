"""The shared benchmark-harness helpers (table rendering, persistence)."""

from __future__ import annotations

from repro.bench import format_table, write_result


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(
            ["Name", "Value"],
            [["alpha", 1], ["b", 22222]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].startswith("Name")
        assert set(lines[2]) <= {"-", " "}
        # Columns align: 'Value' column starts at the same offset everywhere.
        offset = lines[1].index("Value")
        assert lines[3][offset:].startswith("1")

    def test_empty_rows(self):
        text = format_table(["A", "B"], [])
        assert "A" in text and text.count("\n") == 1

    def test_no_title(self):
        text = format_table(["A"], [["x"]])
        assert text.splitlines()[0].startswith("A")


class TestWriteResult:
    def test_writes_and_prints(self, tmp_path, capsys):
        path = write_result("unit", "hello table", directory=tmp_path)
        assert path.read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "results"
        path = write_result("unit", "x", directory=target)
        assert path.parent == target and path.exists()

    def test_overwrites(self, tmp_path):
        write_result("unit", "first", directory=tmp_path)
        path = write_result("unit", "second", directory=tmp_path)
        assert path.read_text() == "second\n"
