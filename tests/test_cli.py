"""The command-line interface (python -m repro ...)."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_domain(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["domain", "warehouse"])


class TestDomainCommand:
    def test_prints_metrics(self, capsys):
        assert main(["domain", "job", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "Job:" in out and "FldAcc" in out

    def test_tree_flag(self, capsys):
        main(["domain", "job", "--tree"])
        out = capsys.readouterr().out
        assert "[c_" in out  # cluster annotations from pretty()

    def test_html_output(self, tmp_path, capsys):
        target = tmp_path / "out.html"
        main(["domain", "job", "--html", str(target)])
        html = target.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<form>" in html


class TestGenerateAndLabel:
    def test_round_trip(self, tmp_path, capsys):
        corpus = tmp_path / "auto.json"
        assert main(["generate", "auto", "-o", str(corpus), "--seed", "1"]) == 0
        assert corpus.exists()
        document = json.loads(corpus.read_text())
        assert len(document["interfaces"]) == 20

        assert main(["label", str(corpus)]) == 0
        out = capsys.readouterr().out
        assert "classification:" in out

    def test_label_to_html(self, tmp_path, capsys):
        corpus = tmp_path / "job.json"
        main(["generate", "job", "-o", str(corpus)])
        target = tmp_path / "form.html"
        main(["label", str(corpus), "--html", str(target)])
        assert "<form>" in target.read_text()


class TestParseCommand:
    def test_parse_html_file(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text(
            "<form>City <input type='text' name='c'>"
            "<label for='s'>State</label><input id='s' type='text'></form>"
        )
        assert main(["parse", str(page)]) == 0
        out = capsys.readouterr().out
        assert "2 fields" in out and "City" in out

    def test_parse_json_output(self, tmp_path, capsys):
        page = tmp_path / "page.html"
        page.write_text("<form>Q <input type='text' name='q'></form>")
        main(["parse", str(page), "--json"])
        data = json.loads(capsys.readouterr().out)
        assert data[0]["root"]["children"][0]["label"] == "Q"

    def test_parse_no_forms_fails(self, tmp_path, capsys):
        page = tmp_path / "empty.html"
        page.write_text("<p>nothing</p>")
        assert main(["parse", str(page)]) == 1


class TestReportCommands:
    def test_figure10(self, capsys):
        assert main(["figure10"]) == 0
        out = capsys.readouterr().out
        assert "LI2" in out and "Share" in out

    def test_table6_small_survey(self, capsys):
        assert main(["table6", "--respondents", "1"]) == 0
        out = capsys.readouterr().out
        assert "Airline" in out and "Hotels" in out


class TestSweepCommand:
    def test_sweep_prints_aggregates(self, capsys):
        assert main(["sweep", "--seeds", "0", "--respondents", "1"]) == 0
        out = capsys.readouterr().out
        assert "seeds: [0]" in out
        assert "Airline" in out and "classes" in out


class TestSweepApi:
    def test_sweep_seeds_aggregation(self):
        from repro.experiment import sweep_seeds

        rows = sweep_seeds(seeds=(0,), respondent_count=1)
        assert set(rows) == {
            "airline", "auto", "book", "job", "realestate", "carrental", "hotels"
        }
        row = rows["job"]
        assert row.fld_acc_min <= row.fld_acc_mean
        assert sum(row.classifications.values()) == 1
        assert row.dominant_classification() in (
            "consistent", "weakly_consistent", "inconsistent"
        )


class TestDescribeCommand:
    def test_describe_prints_stats(self, capsys):
        assert main(["describe", "auto"]) == 0
        out = capsys.readouterr().out
        assert "Auto (seed 0): 20 interfaces" in out
        assert "clusters:" in out
        assert "cluster frequencies" in out


class TestTable6Jobs:
    def test_jobs_flag_produces_same_table(self, capsys):
        assert main(["table6", "--respondents", "1", "--jobs", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(["table6", "--respondents", "1", "--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential


class TestBatchCommand:
    def test_labels_many_corpora(self, tmp_path, capsys):
        first = tmp_path / "job.json"
        second = tmp_path / "auto.json"
        main(["generate", "job", "-o", str(first)])
        main(["generate", "auto", "-o", str(second)])
        capsys.readouterr()
        assert main(["batch", str(first), str(second), "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "[job.json]" in out and "[auto.json]" in out
        assert "2/2 corpora labeled" in out

    def test_bad_corpus_degrades_not_kills(self, tmp_path, capsys):
        good = tmp_path / "job.json"
        bad = tmp_path / "bad.json"
        main(["generate", "job", "-o", str(good)])
        bad.write_text("{not json")
        capsys.readouterr()
        assert main(["batch", str(good), str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[job.json]" in out and "ERROR" in out
        assert "1/2 corpora labeled" in out


class TestServeParser:
    def test_serve_defaults(self):
        from repro.service.parallel import default_jobs

        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8777 and args.cache_size == 128
        assert args.jobs == default_jobs()
        assert args.executor == "thread" and args.disk_cache is None

    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--cache-size", "4", "--jobs", "2"]
        )
        assert (args.port, args.cache_size, args.jobs) == (0, 4, 2)


class TestLintCommand:
    def test_lint_bad_form_fails(self, tmp_path, capsys):
        page = tmp_path / "bad.html"
        page.write_text(
            "<form>Job Type <input type='text' name='a'>"
            "Type of Job <input type='text' name='b'></form>"
        )
        assert main(["lint", str(page)]) == 1
        out = capsys.readouterr().out
        assert "homonyms/warn" in out

    def test_lint_clean_form_passes(self, tmp_path, capsys):
        page = tmp_path / "good.html"
        page.write_text(
            "<form>Adults <input type='text' name='a'>"
            "Children <input type='text' name='c'></form>"
        )
        assert main(["lint", str(page)]) == 0

    def test_lint_corpus_json(self, tmp_path, capsys):
        corpus = tmp_path / "job.json"
        main(["generate", "job", "-o", str(corpus)])
        code = main(["lint", str(corpus)])
        out = capsys.readouterr().out
        assert "finding(s)" in out
        assert code in (0, 1)

    def test_lint_empty_page_errors(self, tmp_path):
        page = tmp_path / "empty.html"
        page.write_text("<p>no form</p>")
        assert main(["lint", str(page)]) == 1


class TestChaosCommand:
    def test_chaos_parser_defaults(self):
        from repro.service.parallel import default_jobs

        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert (args.plans, args.seed, args.rate) == (10, 0, 0.1)
        assert args.jobs == default_jobs()

    def test_chaos_smoke_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "chaos.json"
        code = main([
            "chaos", "--plans", "2", "--rate", "0.2",
            "--domains", "airline", "-o", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert code == 0
        assert "degradation contract held" in printed
        report = json.loads(out_path.read_text())
        assert report["ok"] is True
        assert report["plans"] == 2
        assert report["anomalies"] == []
