"""CompiledLexicon: equivalence with MiniWordNet, immutability, pickling.

The compiled lexicon's contract is *exact* behavioral equivalence with the
dynamic lexicon it was built from — same base forms, same synonymy /
hypernymy / co-hyponymy verdicts — with O(1) table lookups instead of
memoised graph walks.  The property tests here drive both implementations
over the curated vocabulary (full single-word sweep + a seeded pair
sample + morphological variants) and demand identical answers.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.lexicon import (
    CompiledLexicon,
    ImmutableLexiconError,
    MiniWordNet,
    compile_lexicon,
    default_compiled,
    lexicon_fingerprint,
)
from repro.lexicon.data import build_default_wordnet


@pytest.fixture(scope="module")
def dynamic() -> MiniWordNet:
    return build_default_wordnet()


@pytest.fixture(scope="module")
def compiled(dynamic) -> CompiledLexicon:
    return compile_lexicon(dynamic)


def _pair_sample(vocabulary, count=4000, seed=7):
    rng = random.Random(seed)
    return [
        (rng.choice(vocabulary), rng.choice(vocabulary)) for __ in range(count)
    ]


# ----------------------------------------------------------------------
# Equivalence properties.
# ----------------------------------------------------------------------


def test_vocabulary_matches(dynamic, compiled):
    assert compiled.vocabulary() == dynamic.vocabulary()
    assert len(compiled) == len(dynamic._synsets)


def test_base_form_equivalent_over_vocabulary(dynamic, compiled):
    for token in compiled.vocabulary():
        assert compiled.lemma_base(token) == dynamic.lemma_base(token), token


def test_base_form_equivalent_on_variants(dynamic, compiled):
    variants = []
    for lemma in compiled.vocabulary():
        variants.extend((lemma + "s", lemma + "es", lemma + "ing", lemma.upper()))
    variants.extend(["children", "people", "Flights", "zzzz-unknown", ""])
    for token in variants:
        assert compiled.lemma_base(token) == dynamic.lemma_base(token), token


def test_is_known_and_synsets_of_equivalent(dynamic, compiled):
    for token in (*compiled.vocabulary(), "zzzz-unknown", "Children"):
        assert compiled.is_known(token) == dynamic.is_known(token), token
        got = [(s.sid, s.lemmas) for s in compiled.synsets_of(token)]
        want = [(s.sid, s.lemmas) for s in dynamic.synsets_of(token)]
        assert sorted(got) == sorted(want), token
        assert (token in compiled) == (token in dynamic)


def test_relations_equivalent_on_pair_sample(dynamic, compiled):
    vocabulary = compiled.vocabulary()
    for a, b in _pair_sample(vocabulary):
        assert compiled.are_synonyms(a, b) == dynamic.are_synonyms(a, b), (a, b)
        assert compiled.is_hypernym(a, b) == dynamic.is_hypernym(a, b), (a, b)
        assert compiled.share_hypernym(a, b) == dynamic.share_hypernym(a, b), (
            a,
            b,
        )


def test_relations_equivalent_on_inflected_pairs(dynamic, compiled):
    vocabulary = compiled.vocabulary()
    rng = random.Random(11)
    for __ in range(500):
        a = rng.choice(vocabulary) + rng.choice(("", "s", "es"))
        b = rng.choice(vocabulary) + rng.choice(("", "s", "ing"))
        assert compiled.are_synonyms(a, b) == dynamic.are_synonyms(a, b), (a, b)
        assert compiled.is_hypernym(a, b) == dynamic.is_hypernym(a, b), (a, b)
        assert compiled.share_hypernym(a, b) == dynamic.share_hypernym(a, b), (
            a,
            b,
        )


# ----------------------------------------------------------------------
# Fingerprint.
# ----------------------------------------------------------------------


def test_fingerprint_stable_and_content_addressed(dynamic, compiled):
    assert compiled.fingerprint == lexicon_fingerprint(dynamic)
    assert compiled.fingerprint == lexicon_fingerprint(compiled)
    # Rebuilding from scratch lands on the same digest...
    assert compile_lexicon(build_default_wordnet()).fingerprint == (
        compiled.fingerprint
    )
    # ...and any content change moves it.
    extended = build_default_wordnet()
    extended.add_synset(["zzz-novel-concept"])
    assert lexicon_fingerprint(extended) != compiled.fingerprint


# ----------------------------------------------------------------------
# Immutability + thaw.
# ----------------------------------------------------------------------


def test_mutation_raises(compiled):
    with pytest.raises(ImmutableLexiconError, match="immutable"):
        compiled.add_synset(["x", "y"])
    with pytest.raises(ImmutableLexiconError):
        compiled.add_hypernym("a", "b")
    with pytest.raises(ImmutableLexiconError):
        compiled.load([["a"]])
    # The error is a TypeError so generic mutation guards also catch it.
    assert issubclass(ImmutableLexiconError, TypeError)


def test_version_is_frozen(compiled):
    assert compiled.version == 0
    assert compiled.cache_stats()["version"] == 0


def test_thaw_is_mutable_and_query_equivalent(compiled):
    thawed = compiled.thaw()
    assert isinstance(thawed, MiniWordNet)
    vocabulary = compiled.vocabulary()
    assert thawed.vocabulary() == vocabulary
    for a, b in _pair_sample(vocabulary, count=800, seed=3):
        assert thawed.are_synonyms(a, b) == compiled.are_synonyms(a, b), (a, b)
        assert thawed.is_hypernym(a, b) == compiled.is_hypernym(a, b), (a, b)
        assert thawed.share_hypernym(a, b) == compiled.share_hypernym(a, b), (
            a,
            b,
        )
    # And it really is mutable again.
    thawed.add_synset(["zzz-thawed-concept"])
    assert thawed.is_known("zzz-thawed-concept")


# ----------------------------------------------------------------------
# Pickling.
# ----------------------------------------------------------------------


def test_pickle_roundtrip_preserves_behavior(dynamic, compiled):
    clone = pickle.loads(pickle.dumps(compiled))
    assert clone.fingerprint == compiled.fingerprint
    assert clone.vocabulary() == compiled.vocabulary()
    for a, b in _pair_sample(compiled.vocabulary(), count=500, seed=5):
        assert clone.are_synonyms(a, b) == dynamic.are_synonyms(a, b), (a, b)
        assert clone.is_hypernym(a, b) == dynamic.is_hypernym(a, b), (a, b)
    # Runtime memo + counters are rebuilt, not shipped.
    compiled.lemma_base("zzz-unknown-token")
    assert "zzz-unknown-token" not in pickle.loads(
        pickle.dumps(compiled)
    )._base_cache


def test_pickle_is_compact(compiled):
    assert len(pickle.dumps(compiled)) < 256 * 1024


# ----------------------------------------------------------------------
# Singleton + stats surface.
# ----------------------------------------------------------------------


def test_default_compiled_is_cached_singleton():
    assert default_compiled() is default_compiled()
    assert default_compiled().fingerprint == lexicon_fingerprint(
        build_default_wordnet()
    )


def test_cache_stats_shape(compiled):
    stats = compiled.cache_stats()
    assert stats["compiled"] is True
    for section in ("base_form", "relations"):
        assert {"hits", "misses", "hit_rate", "size"} <= set(stats[section])


def test_compile_is_idempotent(compiled):
    assert compile_lexicon(compiled) is compiled


def test_pipeline_results_identical_with_compiled_lexicon(compiled):
    """The whole labeling pipeline must not care which backing answers."""
    from repro.core.label import LabelAnalyzer
    from repro.core.pipeline import label_corpus
    from repro.core.semantics import SemanticComparator
    from repro.datasets.registry import load_domain
    from repro.schema.serialize import node_to_dict

    dataset = load_domain("airline", seed=0)
    root_d, result_d = label_corpus(
        dataset.interfaces, dataset.mapping, comparator=SemanticComparator()
    )
    dataset = load_domain("airline", seed=0)
    root_c, result_c = label_corpus(
        dataset.interfaces,
        dataset.mapping,
        comparator=SemanticComparator(LabelAnalyzer(compiled)),
    )
    assert node_to_dict(root_d) == node_to_dict(root_c)
    assert result_d.field_labels == result_c.field_labels
    assert result_d.classification == result_c.classification
