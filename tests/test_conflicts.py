"""Homonym conflict detection and repair (Section 4.2.3)."""

from __future__ import annotations

from repro.core.conflicts import find_homonym_pairs, resolve_homonyms
from repro.core.group_relation import GroupRelation
from repro.core.solutions import GroupSolution

from .conftest import build_group_corpus, regular_group

CLUSTERS = ["c_options", "c_type", "c_pref", "c_company"]


def _job_relation():
    """The paper's 4.2.3 example: Job Type vs Type of Job, repaired through
    a row that spells the preference cluster 'Employment Type'."""
    rows = {
        "jobsite": {
            "c_options": "Position Options",
            "c_type": "Job Type",
            "c_pref": "Type of Job",
            "c_company": "Company Name",
        },
        "careers": {
            "c_options": "Options",
            "c_type": "Job Type",
            "c_pref": "Employment Type",
            "c_company": "Employer",
        },
    }
    __, mapping = build_group_corpus(rows, CLUSTERS)
    group = regular_group(CLUSTERS, "job")
    return GroupRelation.from_mapping(group, mapping), group


class TestFindHomonymPairs:
    def test_detects_equal_content_labels(self, comparator):
        labels = {
            "c_type": "Job Type",
            "c_pref": "Type of Job",
            "c_company": "Company Name",
        }
        pairs = find_homonym_pairs(labels, comparator)
        assert pairs == [("c_type", "c_pref")]

    def test_none_labels_ignored(self, comparator):
        assert find_homonym_pairs({"a": None, "b": "X"}, comparator) == []

    def test_clean_solution_has_no_pairs(self, comparator):
        labels = {"a": "Adults", "b": "Children", "c": "Seniors"}
        assert find_homonym_pairs(labels, comparator) == []


class TestResolveHomonyms:
    def test_paper_example(self, comparator):
        relation, group = _job_relation()
        solution = GroupSolution(
            group=group,
            labels={
                "c_options": "Position Options",
                "c_type": "Job Type",
                "c_pref": "Type of Job",
                "c_company": "Company Name",
            },
            level=None,
            partition=None,
        )
        repairs = resolve_homonyms(solution, relation, comparator)
        assert len(repairs) == 1
        assert solution.labels["c_pref"] == "Employment Type"
        assert solution.labels["c_type"] == "Job Type"
        repair = repairs[0]
        assert repair.old_label_b == "Type of Job"
        assert repair.new_label_b == "Employment Type"
        assert repair.source_interface == "careers"

    def test_no_repair_row_leaves_solution_untouched(self, comparator):
        rows = {
            "only": {"c_type": "Job Type", "c_pref": "Type of Job"},
        }
        __, mapping = build_group_corpus(rows, ["c_type", "c_pref"])
        group = regular_group(["c_type", "c_pref"], "g")
        relation = GroupRelation.from_mapping(group, mapping)
        solution = GroupSolution(
            group=group,
            labels={"c_type": "Job Type", "c_pref": "Type of Job"},
            level=None,
            partition=None,
        )
        repairs = resolve_homonyms(solution, relation, comparator)
        assert repairs == []
        assert solution.labels["c_pref"] == "Type of Job"

    def test_repair_terminates_on_clean_solution(self, comparator):
        relation, group = _job_relation()
        solution = GroupSolution(
            group=group,
            labels={
                "c_options": "Position Options",
                "c_type": "Job Type",
                "c_pref": "Employment Type",
                "c_company": "Company Name",
            },
            level=None,
            partition=None,
        )
        assert resolve_homonyms(solution, relation, comparator) == []
