"""Definitions 2-4: consistency levels, Combine/Combine*, partitions."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.consistency import (
    ConsistencyLevel,
    combine,
    combine_closure,
    covering_partitions,
    find_partitions,
    solutions_of_partition,
    tuples_consistent,
)
from repro.core.group_relation import GroupRelation, GroupTuple

from .conftest import regular_group

CLUSTERS = ("c1", "c2", "c3")


def row(interface, *labels, clusters=CLUSTERS):
    return GroupTuple(interface=interface, labels=tuple(labels), clusters=clusters)


class TestTuplesConsistent:
    def test_string_level_needs_identical_labels(self, comparator):
        s = row("a", "Adults", "Children", None)
        t = row("b", "Adults", None, "Infants")
        assert tuples_consistent(s, t, ConsistencyLevel.STRING, comparator)

    def test_no_shared_non_null_cluster(self, comparator):
        s = row("a", "Adults", None, None)
        t = row("b", None, "Children", None)
        assert not tuples_consistent(s, t, ConsistencyLevel.SYNONYMY, comparator)

    def test_equality_level(self, comparator):
        # Table 4: Preferred Airline / Airline Preference.
        s = row("a", "Preferred Airline", None, None)
        t = row("b", "Airline Preference", None, None)
        assert not tuples_consistent(s, t, ConsistencyLevel.STRING, comparator)
        assert tuples_consistent(s, t, ConsistencyLevel.EQUALITY, comparator)

    def test_synonymy_level(self, comparator):
        s = row("a", "Area of Study", None, None)
        t = row("b", "Field of Work", None, None)
        assert not tuples_consistent(s, t, ConsistencyLevel.EQUALITY, comparator)
        assert tuples_consistent(s, t, ConsistencyLevel.SYNONYMY, comparator)

    def test_levels_are_cumulative(self, comparator):
        s = row("a", "Adults", None, None)
        t = row("b", "Adults", None, None)
        for level in ConsistencyLevel:
            assert tuples_consistent(s, t, level, comparator)

    def test_cluster_restriction(self, comparator):
        s = row("a", "Adults", "X", None)
        t = row("b", "Adults", "Y", None)
        assert not tuples_consistent(
            s, t, ConsistencyLevel.STRING, comparator, clusters=("c2",)
        )
        assert tuples_consistent(
            s, t, ConsistencyLevel.STRING, comparator, clusters=("c1",)
        )


class TestCombine:
    def test_definition_3(self):
        r = row("r", "A", None, "C")
        s = row("s", "A2", "B", None)
        merged = combine(r, s)
        # Non-null components of r win; s fills r's nulls.
        assert merged.labels == ("A", "B", "C")

    def test_requires_same_clusters(self):
        r = row("r", "A", None, "C")
        s = GroupTuple("s", ("A",), ("cX",))
        with pytest.raises(ValueError):
            combine(r, s)

    def test_arity_guard(self):
        with pytest.raises(ValueError):
            GroupTuple("x", ("A",), CLUSTERS)


class TestGroupTuple:
    def test_projection(self):
        t = row("x", "A", "B", None)
        projected = t.project(("c3", "c1"))
        assert projected.labels == (None, "A")
        assert projected.clusters == ("c3", "c1")

    def test_non_null_accounting(self):
        t = row("x", "A", None, "C")
        assert t.non_null_clusters() == {"c1", "c3"}
        assert t.non_null_count() == 2
        assert not t.is_complete()
        assert row("y", "A", "B", "C").is_complete()


class TestPartitions:
    def test_figure4_partition(self, comparator, table2_corpus):
        """Figure 4: {aa, british, economytravel, vacations} vs
        {airfareplanet, airtravel} at the string level."""
        interfaces, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        partitions = find_partitions(relation, ConsistencyLevel.STRING, comparator)
        members = sorted(
            tuple(sorted(t.interface for t in p.tuples)) for p in partitions
        )
        assert members == [
            ("aa", "british", "economytravel", "vacations"),
            ("airfareplanet", "airtravel"),
        ]

    def test_proposition_1_positive(self, comparator, table2_corpus):
        interfaces, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        partitions, covering = covering_partitions(
            relation, ConsistencyLevel.STRING, comparator
        )
        assert len(covering) == 1
        solutions = solutions_of_partition(
            covering[0], relation.clusters, comparator
        )
        expected = ("Seniors", "Adults", "Children", "Infants")
        assert any(t.labels == expected for t in solutions)

    def test_proposition_1_negative(self, comparator, table3_corpus):
        """Table 3: no partition links {State, City} with {Zip, Distance}."""
        interfaces, mapping, group = table3_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        __, covering = covering_partitions(
            relation, ConsistencyLevel.SYNONYMY, comparator
        )
        assert covering == []

    def test_partitions_form_a_partition(self, comparator, table4_corpus):
        interfaces, mapping, group = table4_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        for level in ConsistencyLevel:
            partitions = find_partitions(relation, level, comparator)
            seen = [t.interface for p in partitions for t in p.tuples]
            assert sorted(seen) == sorted(t.interface for t in relation.tuples)


class TestCombineClosure:
    def test_generates_complete_tuples(self, comparator):
        rows = [
            row("a", "X", "Y", None),
            row("b", "X", None, "Z"),
        ]
        closure = combine_closure(rows, ConsistencyLevel.STRING, comparator)
        complete = [t for t in closure if t.is_complete()]
        assert complete and complete[0].labels == ("X", "Y", "Z")

    def test_deduplicates_by_value(self, comparator):
        rows = [row("a", "X", None, None), row("b", "X", None, None)]
        closure = combine_closure(rows, ConsistencyLevel.STRING, comparator)
        assert len(closure) == 1

    def test_limit_respected(self, comparator):
        rows = [
            row(f"i{k}", "X", f"b{k}", None) for k in range(6)
        ]
        closure = combine_closure(
            rows, ConsistencyLevel.STRING, comparator, limit=10
        )
        assert len(closure) <= 10

    def test_inconsistent_rows_never_combined(self, comparator):
        rows = [row("a", "X", None, None), row("b", None, "Y", None)]
        closure = combine_closure(rows, ConsistencyLevel.SYNONYMY, comparator)
        assert all(t.non_null_count() == 1 for t in closure)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["A", "B", None]),
            st.sampled_from(["P", "Q", None]),
            st.sampled_from(["X", None]),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_closure_tuples_only_grow(comparator, label_rows):
    rows = [
        GroupTuple(f"i{k}", labels, CLUSTERS)
        for k, labels in enumerate(label_rows)
        if any(v is not None for v in labels)
    ]
    if not rows:
        return
    closure = combine_closure(rows, ConsistencyLevel.STRING, comparator)
    base = min(t.non_null_count() for t in rows)
    assert all(t.non_null_count() >= base for t in closure)
    # Every closure tuple's labels come from the original rows, column-wise.
    for t in closure:
        for i, value in enumerate(t.labels):
            if value is not None:
                assert value in {r.labels[i] for r in rows}


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["Adults", "Adult", "Number of Adults", None]),
            st.sampled_from(["Class", "Class of Ticket", "Flight Class", None]),
            st.sampled_from(
                ["Preferred Airline", "Airline Preference", "Airline", None]
            ),
        ),
        min_size=1,
        max_size=7,
    )
)
def test_stronger_levels_refine_weaker_partitions(comparator, label_rows):
    """Definition 2's ladder is cumulative, so the partition at a weaker
    (lower) level refines the partition at a stronger (higher) one: rows
    connected at STRING stay connected at SYNONYMY."""
    rows = [
        GroupTuple(f"i{k}", labels, CLUSTERS)
        for k, labels in enumerate(label_rows)
        if any(v is not None for v in labels)
    ]
    if len(rows) < 2:
        return
    relation = GroupRelation(regular_group(list(CLUSTERS)), rows)

    def components(level):
        partitions = find_partitions(relation, level, comparator)
        return [
            frozenset(t.interface for t in p.tuples) for p in partitions
        ]

    weaker = components(ConsistencyLevel.STRING)
    for stronger_level in (ConsistencyLevel.EQUALITY, ConsistencyLevel.SYNONYMY):
        stronger = components(stronger_level)
        # Every STRING-level component is contained in one component of the
        # more permissive level.
        for component in weaker:
            assert any(component <= bigger for bigger in stronger)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["A", "B", None]),
            st.sampled_from(["P", None]),
            st.sampled_from(["X", "Y", None]),
        ),
        min_size=1,
        max_size=6,
    )
)
def test_covering_partition_iff_complete_solution(comparator, label_rows):
    """Proposition 1, both directions, on random relations."""
    rows = [
        GroupTuple(f"i{k}", labels, CLUSTERS)
        for k, labels in enumerate(label_rows)
        if any(v is not None for v in labels)
    ]
    if not rows:
        return
    relation = GroupRelation(regular_group(list(CLUSTERS)), rows)
    partitions, covering = covering_partitions(
        relation, ConsistencyLevel.STRING, comparator
    )
    complete = []
    for partition in partitions:
        complete.extend(
            solutions_of_partition(partition, relation.clusters, comparator)
        )
    assert bool(covering) == bool(complete)
