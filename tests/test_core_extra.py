"""Deeper core coverage: semantics properties, pipeline options end to end,
result diagnostics, metric edge cases."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.consistency import ConsistencyLevel
from repro.core.inference import InferenceRule
from repro.core.metrics import (
    fields_consistency_accuracy,
    internal_nodes_accuracy,
    labeling_quality,
)
from repro.core.pipeline import NamingOptions, label_integrated_interface
from repro.core.result import LabelingResult
from repro.datasets import load_domain
from repro.schema.groups import GroupPartition
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode

_LABEL_POOL = [
    "Adults", "Adult", "Number of Adults", "Class", "Class of Ticket",
    "Preferred Airline", "Airline Preference", "From", "To", "Price",
    "Area of Study", "Field of Work", "Make", "Brand", "Zip Code",
]


class TestSemanticsProperties:
    @given(st.sampled_from(_LABEL_POOL), st.sampled_from(_LABEL_POOL))
    def test_similar_is_symmetric(self, comparator, a, b):
        assert comparator.similar(a, b) == comparator.similar(b, a)

    @given(st.sampled_from(_LABEL_POOL))
    def test_every_label_similar_to_itself(self, comparator, a):
        assert comparator.similar(a, a)
        assert comparator.at_least_as_general(a, a)

    @given(st.sampled_from(_LABEL_POOL), st.sampled_from(_LABEL_POOL))
    def test_hypernym_hyponym_duality(self, comparator, a, b):
        assert comparator.hypernym(a, b) == comparator.hyponym(b, a)

    @given(st.sampled_from(_LABEL_POOL), st.sampled_from(_LABEL_POOL))
    def test_string_equal_implies_equal_or_empty(self, comparator, a, b):
        if comparator.string_equal(a, b):
            assert comparator.equal(a, b) or not comparator.analyzer.label(a).stems

    @given(st.sampled_from(_LABEL_POOL), st.sampled_from(_LABEL_POOL))
    def test_hypernym_never_with_equal(self, comparator, a, b):
        # The relations of Definition 1 are mutually exclusive by strength.
        if comparator.equal(a, b):
            assert not comparator.hypernym(a, b)
            assert not comparator.synonym(a, b)


class TestPipelineOptionsEndToEnd:
    @pytest.fixture(scope="class")
    def dataset(self):
        ds = load_domain("airline", seed=0)
        ds.prepare()
        return ds

    def _run(self, dataset, **kwargs):
        from repro.core.semantics import SemanticComparator

        root = dataset.integrated().copy()
        # Re-resolve mapping onto the copied tree is unnecessary: naming
        # reads clusters from the copy's leaves and labels in the mapping.
        return label_integrated_interface(
            root,
            dataset.interfaces,
            dataset.mapping,
            SemanticComparator(),
            options=NamingOptions(**kwargs),
        )

    def test_max_level_string_weakens_results(self, dataset):
        full = self._run(dataset)
        truncated = self._run(dataset, max_level=ConsistencyLevel.STRING)
        full_consistent = sum(1 for r in full.group_results.values() if r.consistent)
        truncated_consistent = sum(
            1 for r in truncated.group_results.values() if r.consistent
        )
        assert truncated_consistent <= full_consistent

    def test_disable_all_rules_kills_candidates(self, dataset):
        result = self._run(dataset, enabled_rules=frozenset())
        # With every inference rule off, only single-source exact coverage
        # can label internal nodes; far fewer get labels.
        baseline = self._run(dataset)
        labeled = sum(1 for l in result.node_labels.values() if l)
        baseline_labeled = sum(1 for l in baseline.node_labels.values() if l)
        assert labeled <= baseline_labeled

    def test_use_instances_false_disables_li6_li7(self, dataset):
        result = self._run(dataset, use_instances=False)
        assert result.inference_log.counts.get(InferenceRule.LI6, 0) == 0
        assert result.inference_log.counts.get(InferenceRule.LI7, 0) == 0


class TestMetricsEdgeCases:
    def test_empty_tree_metrics(self):
        root = SchemaNode(None, name="r")
        result = LabelingResult(root=root, partition=GroupPartition([], None, []))
        assert fields_consistency_accuracy(result) == 1.0
        assert internal_nodes_accuracy(result) == 1.0

    def test_labeling_quality_empty_interface_list(self):
        assert labeling_quality([]) == 1.0

    def test_labeling_quality_single_unlabeled_field(self):
        qi = QueryInterface(
            "q", SchemaNode(None, [make_field(None, name="f")], name="r")
        )
        assert qi.labeling_quality() == 0.0

    def test_unlabeled_field_with_instances_excused(self, comparator):
        interfaces = []
        from repro.schema.clusters import Mapping

        mapping = Mapping()
        field = make_field(None, instances=("a", "b"), name="s:f")
        mapping.assign("c_x", "s", field)
        interfaces.append(
            QueryInterface(
                "s",
                SchemaNode(None, [make_group(None, [field], name="s:g")], name="s:r"),
            )
        )
        leaf = SchemaNode(None, cluster="c_x", instances=("a", "b"), name="leaf")
        root = SchemaNode(None, [SchemaNode(None, [leaf], name="g")], name="r")
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        assert result.field_labels["c_x"] is None
        assert fields_consistency_accuracy(result) == 1.0


class TestResultDiagnostics:
    @pytest.fixture(scope="class")
    def result(self):
        from repro import run_domain

        return run_domain("realestate", seed=0).labeling

    def test_summary_mentions_counts(self, result):
        summary = result.summary()
        assert "fields labeled" in summary
        assert "inference applications" in summary

    def test_label_accessors(self, result):
        for cluster, label in result.field_labels.items():
            assert result.label_of_cluster(cluster) == label
        for node_name, label in result.node_labels.items():
            assert result.label_of_node(node_name) == label

    def test_internal_nodes_excludes_root(self, result):
        assert result.root not in result.internal_nodes()

    def test_statuses_cover_all_internal_nodes(self, result):
        names = {n.name for n in result.internal_nodes()}
        assert names == set(result.node_status)
