"""Mapping corruption: the matcher-error injector (repro.datasets.corruption)."""

from __future__ import annotations

import pytest

from repro.datasets import load_domain
from repro.datasets.corruption import corrupt_mapping


@pytest.fixture()
def prepared():
    dataset = load_domain("auto", seed=0)
    dataset.prepare()
    return dataset


class TestCorruptMapping:
    def test_zero_rates_preserve_structure(self, prepared):
        corrupted = corrupt_mapping(prepared.mapping, 0.0, 0.0, seed=1)
        original = {
            c.name: set(c.members) for c in prepared.mapping.clusters
        }
        copied = {c.name: set(c.members) for c in corrupted.clusters}
        assert copied == original

    def test_split_increases_cluster_count(self, prepared):
        corrupted = corrupt_mapping(prepared.mapping, split_rate=0.3, seed=1)
        assert len(corrupted) > len(prepared.mapping)
        corrupted.validate_one_to_one()

    def test_merge_decreases_cluster_count(self, prepared):
        corrupted = corrupt_mapping(prepared.mapping, merge_rate=0.4, seed=1)
        assert len(corrupted) <= len(prepared.mapping)
        corrupted.validate_one_to_one()

    def test_no_member_lost(self, prepared):
        corrupted = corrupt_mapping(prepared.mapping, 0.25, 0.25, seed=2)
        before = {
            id(node)
            for c in prepared.mapping.clusters
            for node in c.members.values()
        }
        after = {
            id(node) for c in corrupted.clusters for node in c.members.values()
        }
        assert after == before

    def test_deterministic(self, prepared):
        def snapshot(mapping):
            return {
                c.name: sorted(c.members) for c in mapping.clusters
            }

        a = corrupt_mapping(prepared.mapping, 0.2, 0.2, seed=7)
        # Re-prepare a fresh dataset: corruption re-points node.cluster.
        fresh = load_domain("auto", seed=0)
        fresh.prepare()
        b = corrupt_mapping(fresh.mapping, 0.2, 0.2, seed=7)
        assert snapshot(a) == snapshot(b)

    def test_nodes_repointed_to_corrupted_clusters(self, prepared):
        corrupted = corrupt_mapping(prepared.mapping, split_rate=0.3, seed=3)
        for cluster in corrupted.clusters:
            for node in cluster.members.values():
                assert node.cluster == cluster.name
