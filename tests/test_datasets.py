"""Synthetic corpus: determinism, catalog validation, structural sanity."""

from __future__ import annotations

import pytest

from repro.datasets import DOMAINS, domain_spec, load_all_domains, load_domain
from repro.datasets.catalog import (
    Concept,
    DomainSpec,
    GroupSpec,
    SuperGroupSpec,
    variants,
)
from repro.datasets.generator import generate_domain
from repro.schema.serialize import interface_to_dict, mapping_to_dict


class TestRegistry:
    def test_seven_domains_in_paper_order(self):
        assert list(DOMAINS) == [
            "airline", "auto", "book", "job", "realestate", "carrental", "hotels"
        ]

    def test_unknown_domain_raises_with_hint(self):
        with pytest.raises(KeyError, match="known domains"):
            domain_spec("warehouse")

    def test_interface_counts_match_table6(self):
        counts = {name: domain_spec(name).interface_count for name in DOMAINS}
        assert counts["hotels"] == 30
        assert all(v == 20 for k, v in counts.items() if k != "hotels")

    def test_all_specs_validate(self):
        for name in DOMAINS:
            domain_spec(name).validate()


class TestDeterminism:
    def test_same_seed_identical_corpus(self):
        a = load_domain("airline", seed=3)
        b = load_domain("airline", seed=3)
        assert [interface_to_dict(q) for q in a.interfaces] == [
            interface_to_dict(q) for q in b.interfaces
        ]
        assert mapping_to_dict(a.mapping) == mapping_to_dict(b.mapping)

    def test_seed_changes_corpus(self):
        a = load_domain("airline", seed=3)
        b = load_domain("airline", seed=4)
        assert [interface_to_dict(q) for q in a.interfaces] != [
            interface_to_dict(q) for q in b.interfaces
        ]


class TestGeneratedShape:
    @pytest.fixture(scope="class")
    def corpus(self):
        return load_all_domains(seed=0)

    def test_interface_counts(self, corpus):
        for name, dataset in corpus.items():
            expected = 30 if name == "hotels" else 20
            assert len(dataset.interfaces) == expected

    def test_every_interface_has_fields_and_validates(self, corpus):
        for dataset in corpus.values():
            for interface in dataset.interfaces:
                assert interface.leaf_count() >= 1
                interface.root.validate()

    def test_mapping_members_are_tree_nodes(self, corpus):
        for dataset in corpus.values():
            by_name = {qi.name: qi for qi in dataset.interfaces}
            for cluster in dataset.mapping.clusters:
                for interface_name, node in cluster.members.items():
                    found = by_name[interface_name].root.find_by_name(node.name)
                    assert found is node

    def test_airline_contains_collapsed_passengers(self, corpus):
        """The 1:m granularity mismatch of Figure 2 is exercised."""
        dataset = corpus["airline"]
        dataset.prepare()
        assert any(
            record.field_label == "Passengers" for record in dataset.mapping.expansions
        )

    def test_prepare_is_idempotent(self, corpus):
        dataset = corpus["auto"]
        dataset.prepare()
        before = len(dataset.mapping.expansions)
        dataset.prepare()
        assert len(dataset.mapping.expansions) == before

    def test_integrated_cached(self, corpus):
        dataset = corpus["job"]
        assert dataset.integrated() is dataset.integrated()

    def test_source_stats_near_table6(self, corpus):
        """Loose bands around Table 6 columns 2 and 5."""
        expectations = {
            "airline": (8, 14, 0.45, 0.75),
            "auto": (4, 8, 0.70, 0.95),
            "book": (4, 8, 0.70, 0.95),
            "job": (3, 7, 0.70, 0.97),
            "realestate": (4, 9, 0.70, 0.95),
            "carrental": (7, 14, 0.40, 0.70),
            "hotels": (5, 11, 0.55, 0.85),
        }
        for name, (lo, hi, lq_lo, lq_hi) in expectations.items():
            dataset = corpus[name]
            avg = sum(q.leaf_count() for q in dataset.interfaces) / len(
                dataset.interfaces
            )
            lq = sum(q.labeling_quality() for q in dataset.interfaces) / len(
                dataset.interfaces
            )
            assert lo <= avg <= hi, (name, avg)
            assert lq_lo <= lq <= lq_hi, (name, lq)


class TestCatalogValidation:
    def test_duplicate_concepts_rejected(self):
        concept = Concept("c_x", variants("X"))
        spec = DomainSpec(
            name="dup",
            interface_count=1,
            groups=(GroupSpec("g1", (concept,)), GroupSpec("g2", (concept,))),
        )
        with pytest.raises(ValueError, match="duplicate"):
            spec.validate()

    def test_supergroup_unknown_member_rejected(self):
        spec = DomainSpec(
            name="bad",
            interface_count=1,
            groups=(GroupSpec("g1", (Concept("c_x", variants("X")),)),),
            supergroups=(SuperGroupSpec("sg", ("ghost",)),),
        )
        with pytest.raises(ValueError, match="unknown groups"):
            spec.validate()

    def test_concept_requires_variants(self):
        with pytest.raises(ValueError):
            Concept("c_x", ())

    def test_generation_validates_spec(self):
        concept = Concept("c_x", variants("X"))
        spec = DomainSpec(
            name="dup2",
            interface_count=1,
            groups=(GroupSpec("g1", (concept,)), GroupSpec("g2", (concept,))),
        )
        with pytest.raises(ValueError):
            generate_domain(spec)

    def test_group_helpers(self):
        group = GroupSpec(
            "g", (Concept("c_a", variants("A")), Concept("c_b", variants("B")))
        )
        assert group.cluster_names() == ("c_a", "c_b")
        spec = DomainSpec(name="s", interface_count=1, groups=(group,))
        assert spec.group_by_key("g") is group
        with pytest.raises(KeyError):
            spec.group_by_key("missing")
        assert len(spec.all_concepts()) == 2
