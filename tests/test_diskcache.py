"""The persistent warm-start layer: DiskCache + engine/server integration.

Contract under test: a restart against the same cache directory serves
every previously computed corpus with **zero recomputation**; a corrupt
record is skipped (and counted), never served; compaction keeps one
latest record per key without losing entries of other engine configs.
"""

from __future__ import annotations

import json

import pytest

from repro.service.diskcache import DiskCache
from repro.service.engine import LabelingEngine
from repro.service.server import LabelingServer


def _segment_lines(directory):
    lines = []
    for segment in sorted(directory.glob("segment-*.jsonl")):
        lines.extend(segment.read_text().splitlines())
    return lines


# ----------------------------------------------------------------------
# DiskCache in isolation.
# ----------------------------------------------------------------------


def test_put_get_roundtrip_and_counters(tmp_path):
    cache = DiskCache(tmp_path, "engine-a")
    assert cache.get("k1") is None
    cache.put("k1", {"answer": 42})
    assert cache.get("k1") == {"answer": 42}
    assert "k1" in cache and len(cache) == 1
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["entries"] == 1 and stats["segments"] == 1


def test_reload_survives_restart(tmp_path):
    first = DiskCache(tmp_path, "engine-a")
    for index in range(5):
        first.put(f"k{index}", {"value": index})
    second = DiskCache(tmp_path, "engine-a")
    assert len(second) == 5
    assert second.get("k3") == {"value": 3}
    assert second.stats()["load_ms"] >= 0


def test_last_write_wins_on_reload(tmp_path):
    cache = DiskCache(tmp_path, "engine-a")
    cache.put("k", {"value": "old"})
    cache.put("k", {"value": "new"})
    assert DiskCache(tmp_path, "engine-a").get("k") == {"value": "new"}


def test_engine_fingerprint_partitions_entries(tmp_path):
    DiskCache(tmp_path, "engine-a").put("k", {"from": "a"})
    cache_b = DiskCache(tmp_path, "engine-b")
    assert cache_b.get("k") is None  # other config's entry is invisible...
    assert cache_b.stats()["foreign_entries"] == 1  # ...but not lost
    cache_b.put("k", {"from": "b"})
    # Each config reads back its own value from the shared directory.
    assert DiskCache(tmp_path, "engine-a").get("k") == {"from": "a"}
    assert DiskCache(tmp_path, "engine-b").get("k") == {"from": "b"}


def test_corrupt_records_skipped_and_counted(tmp_path, caplog):
    cache = DiskCache(tmp_path, "engine-a")
    cache.put("good", {"value": 1})
    cache.put("bad", {"value": 2})
    segment = sorted(tmp_path.glob("segment-*.jsonl"))[0]
    lines = segment.read_text().splitlines()
    tampered = json.loads(lines[1])
    tampered["v"]["value"] = 999  # flip the payload, keep the stale CRC
    lines[1] = json.dumps(tampered, sort_keys=True, separators=(",", ":"))
    lines.append("{truncated mid-wri")  # crash-torn final line
    segment.write_text("\n".join(lines) + "\n")

    with caplog.at_level("WARNING", logger="repro.service.diskcache"):
        reloaded = DiskCache(tmp_path, "engine-a")
    assert reloaded.get("good") == {"value": 1}
    assert reloaded.get("bad") is None  # never served corrupt
    assert reloaded.stats()["corrupt_records"] == 2
    assert sum("corrupt record" in r.message for r in caplog.records) == 2


def test_compaction_rewrites_one_record_per_key(tmp_path):
    cache = DiskCache(tmp_path, "engine-a", max_bytes=512)
    DiskCache(tmp_path, "engine-b").put("foreign", {"keep": "me"})
    cache_a = DiskCache(tmp_path, "engine-a", max_bytes=512)
    for round_index in range(30):
        cache_a.put("hot-key", {"round": round_index})
        cache_a.put(f"key-{round_index % 3}", {"round": round_index})
    stats = cache_a.stats()
    assert stats["compactions"] >= 1
    assert stats["segments"] == 1
    # One latest record per (engine, key) pair survives.
    lines = _segment_lines(tmp_path)
    keys = [(json.loads(l)["e"], json.loads(l)["k"]) for l in lines]
    assert len(keys) == len(set(keys))
    reloaded = DiskCache(tmp_path, "engine-a")
    assert reloaded.get("hot-key") == {"round": 29}
    assert DiskCache(tmp_path, "engine-b").get("foreign") == {"keep": "me"}


# ----------------------------------------------------------------------
# Engine integration: warm restarts recompute nothing.
# ----------------------------------------------------------------------


PAYLOADS = [{"domain": name, "seed": 0} for name in ("airline", "book")]


def test_warm_restart_serves_from_disk_with_zero_recomputation(tmp_path):
    cold = LabelingEngine(disk_cache=tmp_path)
    cold_results = cold.label_batch(PAYLOADS, jobs=1)
    assert all(r["ok"] and r["cached"] is False for r in cold_results)
    assert cold.stats()["computations"] == len(PAYLOADS)

    warm = LabelingEngine(disk_cache=tmp_path)
    warm_results = warm.label_batch(PAYLOADS, jobs=1)
    assert all(r["cached"] is True for r in warm_results)
    stats = warm.stats()
    assert stats["computations"] == 0
    assert stats["disk"]["hits"] == len(PAYLOADS)
    for cold_response, warm_response in zip(cold_results, warm_results):
        a = {k: v for k, v in cold_response.items() if k != "cached"}
        b = {k: v for k, v in warm_response.items() if k != "cached"}
        assert a == b


def test_warm_restart_with_process_backend(tmp_path):
    cold = LabelingEngine(disk_cache=tmp_path)
    cold.label_batch(PAYLOADS, jobs=2, executor="process")
    assert cold.stats()["computations"] == len(PAYLOADS)

    warm = LabelingEngine(disk_cache=tmp_path)
    results = warm.label_batch(PAYLOADS, jobs=2, executor="process")
    assert all(r["cached"] is True for r in results)
    assert warm.stats()["computations"] == 0


def test_engine_fingerprint_depends_on_verify_mode(tmp_path):
    relaxed = LabelingEngine(disk_cache=tmp_path)
    strict = LabelingEngine(disk_cache=tmp_path, verify="strict")
    assert relaxed.engine_fingerprint() != strict.engine_fingerprint()
    relaxed.label({"domain": "job", "seed": 0})
    # A strict engine must not trust results computed without verification.
    assert strict.disk.get(
        relaxed.label({"domain": "job", "seed": 0})["fingerprint"]
    ) is None


def test_engine_accepts_prebuilt_disk_cache(tmp_path):
    disk = DiskCache(tmp_path, "custom-fp")
    engine = LabelingEngine(disk_cache=disk)
    assert engine.disk is disk


def test_disk_corruption_triggers_recomputation_not_errors(tmp_path):
    cold = LabelingEngine(disk_cache=tmp_path)
    response = cold.label({"domain": "job", "seed": 0})
    segment = sorted(tmp_path.glob("segment-*.jsonl"))[0]
    segment.write_text(segment.read_text()[:100])  # truncate mid-record

    warm = LabelingEngine(disk_cache=tmp_path)
    assert warm.disk.stats()["corrupt_records"] == 1
    recomputed = warm.label({"domain": "job", "seed": 0})
    assert recomputed["cached"] is False
    assert recomputed["classification"] == response["classification"]
    assert warm.stats()["computations"] == 1


# ----------------------------------------------------------------------
# Server surface.
# ----------------------------------------------------------------------


def test_metrics_reports_disk_section(tmp_path):
    from repro.service.client import ServiceClient

    with LabelingServer(port=0, disk_cache=tmp_path) as server:
        client = ServiceClient(server.url, timeout=60)
        client.label(domain="job", seed=0)
        disk = client.metrics()["engine"]["disk"]
    assert disk["entries"] == 1
    assert disk["misses"] >= 1
    assert {"hits", "corrupt_records", "load_ms", "segments"} <= set(disk)

    # Warm restart of the whole server: served from disk, no recompute.
    with LabelingServer(port=0, disk_cache=tmp_path) as server:
        client = ServiceClient(server.url, timeout=60)
        assert client.label(domain="job", seed=0)["cached"] is True
        metrics = client.metrics()["engine"]
    assert metrics["computations"] == 0
    assert metrics["disk"]["hits"] == 1


def test_engine_without_disk_cache_has_no_disk_section():
    assert "disk" not in LabelingEngine().stats()
