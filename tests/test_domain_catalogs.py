"""Per-domain catalog contracts: each planted paper construct is present.

The evaluation story of EXPERIMENTS.md depends on specific constructs being
part of each domain's catalog; these tests keep catalog edits honest.
"""

from __future__ import annotations

import pytest

from repro.datasets import domain_spec


def _concept(spec, key):
    for concept in spec.all_concepts():
        if concept.key == key:
            return concept
    raise AssertionError(f"{spec.name}: concept {key} missing")


def _group(spec, key):
    return spec.group_by_key(key)


class TestAirline:
    spec = staticmethod(lambda: domain_spec("airline"))

    def test_passengers_collapse(self):
        """The 1:m Passengers field of Figure 2."""
        group = _group(self.spec(), "g_passengers")
        assert group.collapse_label == "Passengers"
        assert group.collapse_prob > 0

    def test_table4_service_vocabulary(self):
        spec = self.spec()
        stops = _concept(spec, "c_stops")
        texts = {v.text for v in stops.variants}
        assert {"Number of Connections", "Max. Number of Stops"} <= texts
        airline = _concept(spec, "c_airline")
        texts = {v.text for v in airline.variants}
        assert {"Airline Preference", "Preferred Airline"} <= texts

    def test_figure9_class_vocabulary(self):
        ticket = _concept(self.spec(), "c_ticket_class")
        assert ticket.instances  # carries the cabin domain for LI6

    def test_frequency_one_award_group(self):
        """The paper's airline blemish: a once-occurring unlabeled group
        whose fields carry instances."""
        group = _group(self.spec(), "g_award")
        assert group.prevalence < 0.15
        for concept in group.concepts:
            assert concept.unlabeled_prob == 1.0
            assert concept.instances and concept.instance_prob == 1.0

    def test_confusing_return_group(self):
        group = _group(self.spec(), "g_return_route")
        assert group.prevalence <= 0.25  # low-frequency, per the survey


class TestAuto:
    def test_table3_location_styles_disjoint(self):
        """State/City and Zip/Distance populations never mix."""
        spec = domain_spec("auto")
        state = _concept(spec, "c_state")
        zip_code = _concept(spec, "c_zip")
        assert state.styles and zip_code.styles
        assert not set(state.styles) & set(zip_code.styles)

    def test_car_information_supergroup(self):
        spec = domain_spec("auto")
        supergroup = next(s for s in spec.supergroups if s.key == "sg_car")
        assert {"g_car_model", "g_year"} <= set(supergroup.members)
        assert any("Car Information" == v.text for v in supergroup.labels)

    def test_keyword_concept_for_li5(self):
        _concept(domain_spec("auto"), "c_keyword")


class TestBook:
    def test_value_as_label_trap(self):
        """'Hardcover' leaks into c_format's label variants (LI7)."""
        concept = _concept(domain_spec("book"), "c_format")
        texts = {v.text for v in concept.variants}
        assert "Hardcover" in texts
        assert "Hardcover" in concept.instances


class TestJob:
    def test_flat_domain(self):
        spec = domain_spec("job")
        assert len(spec.groups) == 1
        assert len(spec.root_concepts) >= 12

    def test_homonym_seed(self):
        """c_job_category can be spelled 'Job Type' — the 4.2.3 conflict."""
        category = _concept(domain_spec("job"), "c_job_category")
        assert any(v.text == "Job Type" for v in category.variants)
        job_type = _concept(domain_spec("job"), "c_job_type")
        assert any(v.text == "Employment Type" for v in job_type.variants)

    def test_most_general_candidates_present(self):
        """Section 3.2.1's {Category, Job Category, Area of Work, Function}."""
        category = _concept(domain_spec("job"), "c_job_category")
        texts = {v.text for v in category.variants}
        assert {"Category", "Job Category", "Area of Work", "Function"} <= texts


class TestRealEstate:
    def test_lease_rate_unlabelable_field(self):
        group = _group(domain_spec("realestate"), "g_lease")
        lease_from = group.concepts[0]
        assert lease_from.unlabeled_prob == 1.0

    def test_isolated_garage(self):
        group = _group(domain_spec("realestate"), "g_garage")
        assert len(group.concepts) == 1
        assert group.concepts[0].instances  # LI6 material

    def test_features_supergroup(self):
        spec = domain_spec("realestate")
        features = next(s for s in spec.supergroups if s.key == "sg_features")
        assert {"g_units", "g_acreage"} <= set(features.members)


class TestCarRental:
    def test_synonymy_level_rate_group(self):
        spec = domain_spec("carrental")
        rate_max = _concept(spec, "c_rate_max")
        texts = {v.text for v in rate_max.variants}
        assert {"Max Rate", "Maximum Price"} <= texts
        rate_min = _concept(spec, "c_rate_min")
        currency = _concept(spec, "c_currency")
        assert rate_min.styles and currency.styles
        assert not set(rate_min.styles) & set(currency.styles)

    def test_chain_jargon_fields(self):
        spec = domain_spec("carrental")
        for key in ("c_hertz_gold_no", "c_avis_wizard_no"):
            concept = _concept(spec, key)
            assert concept.prevalence < 0.1


class TestHotels:
    def test_wyndham_field(self):
        concept = _concept(domain_spec("hotels"), "c_wyndham_byrequest")
        assert concept.prevalence <= 0.15
        assert concept.variants[0].text == "Wyndham ByRequest No"

    def test_redundant_nights_field(self):
        """check-in/check-out + nights: the survey's redundancy comment."""
        spec = domain_spec("hotels")
        dates = _group(spec, "g_dates")
        keys = {c.key for c in dates.concepts}
        assert {"c_checkin", "c_checkout", "c_nights"} <= keys

    def test_thirty_interfaces(self):
        assert domain_spec("hotels").interface_count == 30
