"""Domain clustering — interfaces sorted into classes (the [18] substrate)."""

from __future__ import annotations

import pytest

from repro.datasets import load_domain
from repro.matching import cluster_interfaces, interface_vocabulary
from repro.core.label import LabelAnalyzer
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode


def _qi(name, labels):
    nodes = [make_field(l, name=f"{name}:{i}") for i, l in enumerate(labels)]
    return QueryInterface(
        name, SchemaNode(None, [make_group(None, nodes, name=f"{name}:g")],
                         name=f"{name}:r")
    )


class TestVocabulary:
    def test_counts_labels_and_instances(self, analyzer):
        qi = _qi("a", ["Departure City", "Arrival City"])
        qi.fields()[0].instances = ("New York", "Paris")
        vocabulary = interface_vocabulary(qi, analyzer)
        assert vocabulary["citi"] == 2
        assert vocabulary["pari"] == 1 or "pari" in vocabulary or "paris" in vocabulary

    def test_unlabeled_nodes_skipped(self, analyzer):
        qi = _qi("a", [None, "Price"])
        vocabulary = interface_vocabulary(qi, analyzer)
        assert set(vocabulary) == {"price"}


class TestClusterInterfaces:
    def test_two_obvious_domains(self):
        airline = [
            _qi("air1", ["Departure City", "Arrival City", "Airline", "Flight Class"]),
            _qi("air2", ["Departing from", "Going to", "Airline Preference",
                         "Class of Ticket"]),
            _qi("air3", ["Departure City", "Destination", "Preferred Airline"]),
        ]
        books = [
            _qi("book1", ["Author", "Book Title", "ISBN", "Publisher"]),
            _qi("book2", ["Author Name", "Title", "ISBN Number", "Format"]),
        ]
        clusters = cluster_interfaces([*airline, *books])
        assert len(clusters) == 2
        groups = sorted(sorted(c.names()) for c in clusters)
        assert groups == [["air1", "air2", "air3"], ["book1", "book2"]]

    def test_singleton_for_the_odd_one_out(self):
        clusters = cluster_interfaces([
            _qi("a", ["Author", "Title", "Publisher"]),
            _qi("b", ["Author", "Book Title", "ISBN"]),
            _qi("weird", ["Quantum Flux", "Warp Factor"]),
        ])
        sizes = sorted(len(c) for c in clusters)
        assert sizes == [1, 2]

    def test_top_terms_characterize_domain(self):
        clusters = cluster_interfaces([
            _qi("a", ["Author", "Title", "Publisher"]),
            _qi("b", ["Author", "Title", "ISBN"]),
        ])
        assert any(
            stem.startswith(("author", "titl")) for stem in clusters[0].top_terms()
        )

    def test_empty_input(self):
        assert cluster_interfaces([]) == []

    def test_generated_domains_stay_separate(self):
        """Interfaces sampled from two catalog domains re-separate."""
        auto = load_domain("auto", seed=0).interfaces[:6]
        job = load_domain("job", seed=0).interfaces[:6]
        clusters = cluster_interfaces([*auto, *job])
        # The two largest clusters must be domain-pure.
        for cluster in clusters[:2]:
            prefixes = {name.split("-")[0] for name in cluster.names()}
            assert len(prefixes) == 1

    def test_threshold_one_splits_everything(self):
        interfaces = [
            _qi("a", ["Author", "Title"]),
            _qi("b", ["Author", "Title"]),
        ]
        clusters = cluster_interfaces(interfaces, threshold=1.01)
        assert len(clusters) == 2
