"""End-to-end without ground truth: matcher-recovered mappings.

The paper assumes the mapping as input; a deployed system would use a
matcher.  These tests run the generated corpora through
``match_interfaces`` instead of the ground truth and check the pipeline
still produces sane, mostly-correct integrated interfaces — plus measure
how close the recovered mapping is to the truth.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import label_integrated_interface
from repro.core.semantics import SemanticComparator
from repro.datasets import load_domain
from repro.matching import match_interfaces
from repro.merge import merge_interfaces


def _matcher_run(domain: str):
    # Fresh corpus: the matcher writes cluster names onto the field nodes.
    dataset = load_domain(domain, seed=0)
    truth = {
        cluster.name: {
            (interface, node.name) for interface, node in cluster.members.items()
        }
        for cluster in load_domain(domain, seed=0).mapping.clusters
    }
    comparator = SemanticComparator()
    mapping = match_interfaces(dataset.interfaces, comparator)
    mapping.expand_one_to_many(dataset.interfaces)
    root = merge_interfaces(dataset.interfaces, mapping)
    result = label_integrated_interface(
        root, dataset.interfaces, mapping, comparator
    )
    return dataset, truth, mapping, root, result


@pytest.fixture(scope="module")
def job_run():
    return _matcher_run("job")


class TestMatcherEndToEnd:
    def test_pipeline_labels_every_matchable_field(self, job_run):
        """Fields the matcher could see (labeled somewhere) all get named;
        unlabeled instance-less fields are unmatchable by construction and
        come through as unnamed singletons — a real matcher limitation the
        paper sidesteps by assuming the mapping."""
        __, __, mapping, root, result = job_run
        for cluster_name, label in result.field_labels.items():
            if cluster_name in mapping and mapping[cluster_name].labels():
                assert label is not None, cluster_name

    def test_recovered_clusters_not_wildly_off(self, job_run):
        """Labeled-cluster count lands near the truth's (variants that share
        no lexical relation split — Category vs Function — so some excess
        over the truth is expected)."""
        dataset, truth, mapping, __, __ = job_run
        labeled_clusters = sum(1 for c in mapping.clusters if c.labels())
        truth_count = len(truth)
        assert 0.6 * truth_count <= labeled_clusters <= 1.8 * truth_count

    def test_pairwise_precision(self, job_run):
        """Pairs the matcher puts together are mostly truly equivalent."""
        dataset, truth, mapping, __, __ = job_run
        item_to_truth = {}
        for cluster_name, items in truth.items():
            for item in items:
                item_to_truth[item] = cluster_name
        correct = 0
        total = 0
        for cluster in mapping.clusters:
            members = [
                (interface, node.name)
                for interface, node in cluster.members.items()
            ]
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    # Expanded 1:m children may not exist in the
                    # truth snapshot; skip unknowns.
                    if a not in item_to_truth or b not in item_to_truth:
                        continue
                    total += 1
                    if item_to_truth[a] == item_to_truth[b]:
                        correct += 1
        if total:
            assert correct / total >= 0.9

    def test_tree_is_wellformed(self, job_run):
        __, __, __, root, __ = job_run
        root.validate()
        clusters = [leaf.cluster for leaf in root.leaves()]
        assert len(clusters) == len(set(clusters))
