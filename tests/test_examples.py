"""Every example script runs cleanly — they are documentation that executes."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples must narrate what they do"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "airline_walkthrough.py",
        "realestate_walkthrough.py",
        "custom_domain.py",
        "html_to_integrated.py",
        "hierarchy_integration.py",
        "deep_web_pipeline.py",
    } <= names
