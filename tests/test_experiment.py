"""End-to-end experiment driver and the Table 6 headline shapes (seed 0)."""

from __future__ import annotations

import pytest

from repro.core.inference import InferenceRule
from repro.core.result import TreeConsistency
from repro.experiment import run_all_domains, run_domain


@pytest.fixture(scope="module")
def runs():
    """One full evaluation sweep (the reference seed-0 corpus)."""
    return run_all_domains(seed=0)


class TestRunDomain:
    def test_single_domain_smoke(self):
        run = run_domain("job", seed=0, respondent_count=3)
        assert run.domain == "job"
        assert run.integrated is not None
        assert 0.0 <= run.fld_acc <= 1.0
        assert 0.0 <= run.int_acc <= 1.0
        assert run.study.respondent_count == 3

    def test_deterministic(self):
        a = run_domain("auto", seed=0)
        b = run_domain("auto", seed=0)
        assert a.labeling.field_labels == b.labeling.field_labels
        assert a.ha == b.ha


class TestTable6Shapes:
    """The reproduction claims of DESIGN.md section 5."""

    def test_seven_domains(self, runs):
        assert len(runs) == 7

    def test_fldacc_near_perfect(self, runs):
        for name, run in runs.items():
            assert run.fld_acc >= 0.9, (name, run.fld_acc)

    def test_intacc_shape(self, runs):
        """IntAcc is 100% for the clean domains, below for airline/carrental."""
        for name in ("auto", "book", "job", "realestate", "hotels"):
            assert runs[name].int_acc == 1.0, name
        assert runs["airline"].int_acc < 1.0
        assert runs["carrental"].int_acc < 1.0

    def test_classification_pattern(self, runs):
        """Paper: airline and car rental inconsistent, the rest not."""
        assert runs["airline"].classification == "inconsistent"
        assert runs["carrental"].classification == "inconsistent"
        for name in ("auto", "book", "job", "realestate", "hotels"):
            assert runs[name].classification in (
                TreeConsistency.CONSISTENT.value,
                TreeConsistency.WEAKLY_CONSISTENT.value,
            ), name

    def test_ha_star_at_least_ha(self, runs):
        for name, run in runs.items():
            assert run.ha_star >= run.ha, name

    def test_auto_and_job_fully_accepted(self, runs):
        """Paper: 'nobody identified any problem in the Auto and Job
        unified interfaces.'"""
        assert runs["auto"].ha == 1.0
        assert runs["job"].ha == 1.0

    def test_flat_job_domain(self, runs):
        """Job is the flat domain: one regular group, root-dominated."""
        stats = runs["job"].integrated
        assert stats.groups == 1
        assert stats.root_leaves >= 10

    def test_flagged_fields_are_rare_jargon_or_homonyms(self, runs):
        """Survey-flagged fields are low-frequency/unlabeled (the paper's
        'they all have a frequency of 1' analysis) or residual homonym
        pairs (the paper's Return From / Return To confusion)."""
        from repro.core.semantics import SemanticComparator

        comparator = SemanticComparator()
        for name, run in runs.items():
            labels = run.labeling.field_labels
            for cluster in run.study.flagged_clusters():
                if cluster not in run.dataset.mapping:
                    continue
                cluster_obj = run.dataset.mapping[cluster]
                label = labels.get(cluster)
                is_homonym = label is not None and any(
                    other_cluster != cluster
                    and other_label is not None
                    and comparator.similar(label, other_label)
                    for other_cluster, other_label in labels.items()
                )
                is_generic = (
                    label is not None
                    and comparator.analyzer.label(label).content_word_count == 1
                )
                assert (
                    cluster_obj.frequency() <= 4
                    or label is None
                    or is_homonym
                    or is_generic
                ), (name, cluster)


class TestFigure10Shapes:
    def test_all_logs_nonempty(self, runs):
        merged_total = sum(run.inference_log.total() for run in runs.values())
        assert merged_total > 20

    def test_li2_li3_dominate(self, runs):
        """Figure 10: LI2 and LI3 are the most frequently employed rules."""
        from collections import Counter

        combined: Counter = Counter()
        for run in runs.values():
            combined.update(run.inference_log.counts)
        top_two = {rule for rule, __ in combined.most_common(2)}
        assert InferenceRule.LI2 in top_two

    def test_shares_sum_to_one(self, runs):
        for run in runs.values():
            shares = run.inference_log.shares()
            if run.inference_log.total():
                assert sum(shares.values()) == pytest.approx(1.0)
