"""Concept-hierarchy integration (the Section-9 extension)."""

from __future__ import annotations

import pytest

from repro.extensions import ConceptHierarchy, integrate_hierarchies
from repro.schema.interface import make_field, make_group
from repro.schema.tree import SchemaNode


def _taxonomy(name, sections):
    """sections: list of (category label, [concept labels])."""
    top = []
    for i, (category, concepts) in enumerate(sections):
        leaves = [
            make_field(c, name=f"{name}:{i}:{j}") for j, c in enumerate(concepts)
        ]
        top.append(make_group(category, leaves, name=f"{name}:{i}"))
    return ConceptHierarchy(name, SchemaNode(None, top, name=f"{name}:root"))


@pytest.fixture()
def store_taxonomies(comparator):
    """Three electronics-store taxonomies with heterogeneous names."""
    return [
        _taxonomy("store-a", [
            ("Computers", ["Laptops", "Desktops"]),
            ("Phones", ["Smartphones", "Cell Phone Accessories"]),
        ]),
        _taxonomy("store-b", [
            ("Computers", ["Laptops", "Desktops", "Tablets"]),
            ("Mobile Phones", ["Smartphones"]),
        ]),
        _taxonomy("store-c", [
            ("Computer Equipment", ["Laptops", "Desktop Computers"]),
            ("Phones", ["Smartphones", "Phone Accessories"]),
        ]),
    ]


class TestConceptHierarchy:
    def test_concepts_listing(self, store_taxonomies):
        assert store_taxonomies[0].concepts() == [
            "Laptops", "Desktops", "Smartphones", "Cell Phone Accessories"
        ]

    def test_unlabeled_node_rejected(self):
        bad = ConceptHierarchy(
            "bad",
            SchemaNode(None, [make_field(None, name="x")], name="r"),
        )
        with pytest.raises(ValueError, match="unlabeled"):
            bad.validate_labels()

    def test_as_interface(self, store_taxonomies):
        qi = store_taxonomies[0].as_interface()
        assert qi.domain == "hierarchy"
        assert qi.leaf_count() == 4


class TestIntegrateHierarchies:
    def test_integration_produces_labeled_taxonomy(self, store_taxonomies, comparator):
        integrated = integrate_hierarchies(store_taxonomies, comparator=comparator)
        leaves = [l.label for l in integrated.root.leaves()]
        # Equivalent concepts merged: one laptops leaf, one desktops leaf...
        assert leaves.count("Laptops") == 1
        assert "Smartphones" in leaves
        # Categories got labels.
        internal = [
            n.label for n in integrated.root.internal_nodes()
            if n is not integrated.root
        ]
        assert any(l for l in internal)

    def test_computers_category_named(self, store_taxonomies, comparator):
        integrated = integrate_hierarchies(store_taxonomies, comparator=comparator)
        laptops = integrated.root.find(
            lambda n: n.is_leaf and n.label == "Laptops"
        )
        assert laptops is not None
        parent_labels = [a.label for a in laptops.ancestors() if a.is_labeled]
        assert any(
            label in ("Computers", "Computer Equipment") for label in parent_labels
        )

    def test_horizontal_consistency_in_categories(self, store_taxonomies, comparator):
        integrated = integrate_hierarchies(store_taxonomies, comparator=comparator)
        # Desktops/Desktop Computers resolve to ONE consistent spelling.
        desktop_leaves = [
            l.label for l in integrated.root.leaves()
            if l.label and "Desktop" in l.label
        ]
        assert len(desktop_leaves) == 1

    def test_explicit_mapping_respected(self, store_taxonomies, comparator):
        from repro.schema.clusters import Mapping

        interfaces = [h.as_interface() for h in store_taxonomies]
        mapping = Mapping()
        for qi in interfaces:
            for leaf in qi.fields():
                key = "c_" + leaf.label.split()[0].lower().rstrip("s")
                if qi.name in mapping.get_or_create(key):
                    key = key + "_2"
                mapping.assign(key, qi.name, leaf)
        integrated = integrate_hierarchies(
            store_taxonomies, mapping=mapping, comparator=comparator
        )
        assert integrated.root.leaves()

    def test_classification_reported(self, store_taxonomies, comparator):
        integrated = integrate_hierarchies(store_taxonomies, comparator=comparator)
        assert integrated.classification in (
            "consistent", "weakly_consistent", "inconsistent"
        )
        assert isinstance(integrated.pretty(), str)
