"""Corpus fingerprints: stability, canonicalization, round-trip determinism."""

from __future__ import annotations

import json

import pytest

from repro.core.pipeline import NamingOptions
from repro.datasets.registry import load_domain
from repro.schema.serialize import corpus_to_dict, load_corpus, save_corpus
from repro.service.fingerprint import (
    corpus_fingerprint,
    fingerprint_document,
    options_from_dict,
    options_to_dict,
)


@pytest.fixture(scope="module")
def job_dataset():
    return load_domain("job", seed=0)


class TestFingerprintStability:
    def test_same_corpus_same_digest(self, job_dataset):
        a = corpus_fingerprint(job_dataset.interfaces, job_dataset.mapping)
        b = corpus_fingerprint(job_dataset.interfaces, job_dataset.mapping)
        assert a == b
        assert len(a) == 64  # sha256 hex

    def test_regenerated_corpus_same_digest(self, job_dataset):
        regenerated = load_domain("job", seed=0)
        assert corpus_fingerprint(
            job_dataset.interfaces, job_dataset.mapping
        ) == corpus_fingerprint(regenerated.interfaces, regenerated.mapping)

    def test_different_seed_different_digest(self, job_dataset):
        other = load_domain("job", seed=1)
        assert corpus_fingerprint(
            job_dataset.interfaces, job_dataset.mapping
        ) != corpus_fingerprint(other.interfaces, other.mapping)

    def test_options_change_digest(self, job_dataset):
        base = corpus_fingerprint(job_dataset.interfaces, job_dataset.mapping)
        ablated = corpus_fingerprint(
            job_dataset.interfaces,
            job_dataset.mapping,
            options=NamingOptions(use_instances=False),
        )
        assert base != ablated

    def test_lexicon_overlay_changes_digest(self, job_dataset):
        base = corpus_fingerprint(job_dataset.interfaces, job_dataset.mapping)
        overlaid = corpus_fingerprint(
            job_dataset.interfaces,
            job_dataset.mapping,
            lexicon={"synsets": [["position", "role"]]},
        )
        assert base != overlaid

    def test_lexicon_order_does_not_change_digest(self, job_dataset):
        args = (job_dataset.interfaces, job_dataset.mapping)
        a = corpus_fingerprint(
            *args,
            lexicon={"synsets": [["a", "b"], ["c", "d"]], "hypernyms": [["x", "y"]]},
        )
        b = corpus_fingerprint(
            *args,
            lexicon={"synsets": [["d", "c"], ["b", "a"]], "hypernyms": [["x", "y"]]},
        )
        assert a == b


class TestDocumentCanonicalization:
    def test_mapping_key_order_irrelevant(self):
        doc_a = {
            "interfaces": [{"name": "i", "root": {"name": "r", "children": [
                {"name": "f1", "label": "Adults", "cluster": "c_a"},
                {"name": "f2", "label": "Children", "cluster": "c_c"},
            ]}}],
            "mapping": {"c_a": {"i": "f1"}, "c_c": {"i": "f2"}},
        }
        doc_b = json.loads(json.dumps(doc_a))
        doc_b["mapping"] = {"c_c": {"i": "f2"}, "c_a": {"i": "f1"}}
        assert fingerprint_document(doc_a) == fingerprint_document(doc_b)

    def test_document_matches_object_fingerprint(self):
        dataset = load_domain("auto", seed=0)
        doc = corpus_to_dict(dataset.interfaces, dataset.mapping)
        assert fingerprint_document(doc) == corpus_fingerprint(
            dataset.interfaces, dataset.mapping
        )


class TestRoundTripDeterminism:
    def test_save_load_save_is_byte_identical(self, tmp_path):
        dataset = load_domain("auto", seed=2)
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        save_corpus(first, dataset.interfaces, dataset.mapping)
        interfaces, mapping = load_corpus(first)
        save_corpus(second, interfaces, mapping)
        assert first.read_text() == second.read_text()

    def test_round_trip_preserves_fingerprint(self, tmp_path):
        dataset = load_domain("book", seed=0)
        digest = corpus_fingerprint(dataset.interfaces, dataset.mapping)
        path = tmp_path / "book.json"
        save_corpus(path, dataset.interfaces, dataset.mapping)
        interfaces, mapping = load_corpus(path)
        assert corpus_fingerprint(interfaces, mapping) == digest

    def test_mapping_registration_order_irrelevant(self, tmp_path):
        dataset = load_domain("hotels", seed=0)
        digest = corpus_fingerprint(dataset.interfaces, dataset.mapping)
        path = tmp_path / "hotels.json"
        save_corpus(path, dataset.interfaces, dataset.mapping)
        document = json.loads(path.read_text())
        document["mapping"] = dict(reversed(list(document["mapping"].items())))
        shuffled = tmp_path / "shuffled.json"
        shuffled.write_text(json.dumps(document))
        interfaces, mapping = load_corpus(shuffled)
        assert corpus_fingerprint(interfaces, mapping) == digest


class TestOptionsDictRoundTrip:
    def test_defaults_round_trip(self):
        assert options_from_dict(options_to_dict(None)) == NamingOptions()

    def test_custom_round_trip(self):
        options = NamingOptions(use_instances=False, repair_homonyms=False)
        assert options_from_dict(options_to_dict(options)) == options

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown naming option"):
            options_from_dict({"speed": "ludicrous"})

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError, match="max_level"):
            options_from_dict({"max_level": "telepathy"})

    def test_bad_rule_rejected(self):
        with pytest.raises(ValueError, match="enabled_rules"):
            options_from_dict({"enabled_rules": ["LI9"]})
