"""Golden-file regression: the labeled seed-0 trees, pinned.

The reference corpus (seed 0) is the repository's analog of the paper's
fixed crawl; EXPERIMENTS.md reports its numbers.  These tests pin the
complete labeled integrated interface of every domain to a golden JSON
file so any change to the lexicon, the merge, or the naming machinery that
shifts an actual label shows up as a reviewable diff.

Regenerate after an intentional change with:

    python tests/test_golden.py --regenerate
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.datasets import DOMAINS
from repro.experiment import run_domain

GOLDEN_DIR = Path(__file__).parent / "golden"


def _snapshot(domain: str) -> dict:
    run = run_domain(domain, seed=0, respondent_count=1)
    labeling = run.labeling

    def tree(node):
        entry = {"label": node.label}
        if node.cluster:
            entry["cluster"] = node.cluster
        if node.children:
            entry["children"] = [tree(child) for child in node.children]
        return entry

    return {
        "domain": domain,
        "classification": run.classification,
        "field_labels": dict(sorted(labeling.field_labels.items())),
        "node_labels": {
            name: label for name, label in sorted(labeling.node_labels.items())
        },
        "tree": tree(labeling.root),
    }


@pytest.mark.parametrize("domain", list(DOMAINS))
def test_labeled_tree_matches_golden(domain):
    golden_path = GOLDEN_DIR / f"{domain}.json"
    if not golden_path.exists():
        pytest.skip(f"golden file missing — run `python {__file__} --regenerate`")
    expected = json.loads(golden_path.read_text())
    actual = _snapshot(domain)
    assert actual == expected, (
        f"{domain}: labeled interface drifted from the golden snapshot; "
        f"if intentional, regenerate with `python {__file__} --regenerate`"
    )


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for domain in DOMAINS:
        path = GOLDEN_DIR / f"{domain}.json"
        path.write_text(json.dumps(_snapshot(domain), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
