"""HTML form extraction and rendering (the Section-2/Section-9 adapter)."""

from __future__ import annotations

import pytest

from repro.html import FormParseError, parse_form, parse_forms, render_form
from repro.schema.interface import FieldKind, make_field, make_group
from repro.schema.tree import SchemaNode

AIRLINE_FORM = """
<html><body>
<form action="/search">
  Departing from <input type="text" name="from">
  Going to <input type="text" name="to">
  <fieldset>
    <legend>How many people are going?</legend>
    <label for="a">Adults</label><input type="text" id="a" name="adults">
    <label for="c">Children</label><input type="text" id="c" name="children">
  </fieldset>
  <label for="cls">Class</label>
  <select id="cls" name="class">
    <option>Economy</option><option>Business</option><option>First</option>
  </select>
  <label><input type="checkbox" name="nonstop"> Nonstop only</label>
  <input type="radio" name="trip" value="Round Trip">
  <input type="radio" name="trip" value="One Way">
  <input type="hidden" name="csrf" value="x">
  <input type="submit" value="Search">
</form>
</body></html>
"""


class TestParseForm:
    @pytest.fixture()
    def qi(self):
        return parse_form(AIRLINE_FORM, "airline-demo")

    def test_field_count_ignores_buttons_and_hidden(self, qi):
        # from, to, adults, children, class, nonstop, trip -> 7 fields
        assert qi.leaf_count() == 7

    def test_preceding_text_labels(self, qi):
        labels = [f.label for f in qi.fields()]
        assert "Departing from" in labels and "Going to" in labels

    def test_label_for_resolution(self, qi):
        adults = next(f for f in qi.fields() if f.label == "Adults")
        assert adults.kind is FieldKind.TEXT_BOX

    def test_fieldset_becomes_group(self, qi):
        group = next(
            n for n in qi.internal_nodes()
            if n.label == "How many people are going?"
        )
        assert [c.label for c in group.children] == ["Adults", "Children"]

    def test_select_instances(self, qi):
        select = next(f for f in qi.fields() if f.kind is FieldKind.SELECTION_LIST)
        assert select.label == "Class"
        assert select.instances == ("Economy", "Business", "First")

    def test_wrapped_label_checkbox(self, qi):
        checkbox = next(f for f in qi.fields() if f.kind is FieldKind.CHECKBOX)
        assert checkbox.label == "Nonstop only"

    def test_radio_group_collapses_to_one_field(self, qi):
        radios = [f for f in qi.fields() if f.kind is FieldKind.RADIO_BUTTON]
        assert len(radios) == 1
        assert radios[0].instances == ("Round Trip", "One Way")

    def test_tree_validates(self, qi):
        qi.root.validate()


class TestParseEdgeCases:
    def test_no_form_raises(self):
        with pytest.raises(FormParseError):
            parse_form("<html><body><p>nothing here</p></body></html>")

    def test_empty_form_raises(self):
        with pytest.raises(FormParseError):
            parse_form("<form><input type='submit'></form>")

    def test_multiple_forms(self):
        html = """
        <form><input type="text" name="q1"></form>
        <form><input type="text" name="q2"></form>
        """
        interfaces = parse_forms(html)
        assert len(interfaces) == 2

    def test_nested_fieldsets(self):
        html = """
        <form>
          <fieldset><legend>Trip</legend>
            <fieldset><legend>Route</legend>
              From <input type="text" name="f">
              To <input type="text" name="t">
            </fieldset>
            <fieldset><legend>Dates</legend>
              Depart <input type="text" name="d">
            </fieldset>
          </fieldset>
        </form>
        """
        qi = parse_form(html)
        trip = next(n for n in qi.internal_nodes() if n.label == "Trip")
        assert {c.label for c in trip.children} == {"Route", "Dates"}
        assert qi.depth() == 4

    def test_textarea(self):
        qi = parse_form(
            "<form>Comments <textarea name='c'></textarea></form>"
        )
        assert qi.fields()[0].label == "Comments"

    def test_unlabeled_field(self):
        qi = parse_form("<form><input type='text' name='q'></form>")
        assert qi.fields()[0].label is None

    def test_self_closing_inputs(self):
        qi = parse_form("<form>City <input type='text' name='c'/></form>")
        assert qi.fields()[0].label == "City"


class TestRenderRoundTrip:
    def _tree(self):
        return SchemaNode(None, [
            make_group("Passengers", [
                make_field("Adults", name="a"),
                make_field("Children", name="c"),
            ], name="g"),
            make_field(
                "Class",
                kind=FieldKind.SELECTION_LIST,
                instances=("Economy", "First"),
                name="cls",
            ),
            make_field("Nonstop", kind=FieldKind.CHECKBOX, name="ns"),
            make_field(
                "Trip Type",
                kind=FieldKind.RADIO_BUTTON,
                instances=("Round Trip", "One Way"),
                name="tt",
            ),
        ], name="root")

    def test_round_trip_structure_and_labels(self):
        original = self._tree()
        html = render_form(original, title="Demo")
        parsed = parse_form(html).root

        def shape(node):
            return (node.label, [shape(c) for c in node.children])

        assert shape(parsed) == shape(original)

    def test_round_trip_instances(self):
        html = render_form(self._tree())
        parsed = parse_form(html)
        select = next(
            f for f in parsed.fields() if f.kind is FieldKind.SELECTION_LIST
        )
        assert select.instances == ("Economy", "First")
        radio = next(
            f for f in parsed.fields() if f.kind is FieldKind.RADIO_BUTTON
        )
        assert radio.instances == ("Round Trip", "One Way")

    def test_escapes_html_in_labels(self):
        root = SchemaNode(None, [make_field("Beds & <Baths>", name="x")],
                          name="r")
        html = render_form(root)
        assert "Beds &amp; &lt;Baths&gt;" in html

    def test_renders_generated_domain(self):
        """The headline deliverable: the labeled integrated interface of a
        full domain renders to valid, re-parsable HTML."""
        from repro import run_domain

        run = run_domain("auto", seed=0)
        html = render_form(run.labeling.root, title="Auto")
        parsed = parse_form(html)
        assert parsed.leaf_count() == len(run.labeling.root.leaves())


class TestMalformedHtml:
    """Best-effort behavior on the markup real crawls produce."""

    def test_unclosed_tags(self):
        html = "<form>City <input type='text' name='c'>State <input name='s'>"
        qi = parse_form(html)
        assert [f.label for f in qi.fields()] == ["City", "State"]

    def test_fieldset_without_legend(self):
        qi = parse_form(
            "<form><fieldset>Q <input type='text' name='q'></fieldset></form>"
        )
        section = qi.internal_nodes(include_root=False)[0]
        assert section.label is None
        assert qi.fields()[0].label == "Q"

    def test_unknown_input_types_treated_as_text(self):
        qi = parse_form("<form>R <input type='range' name='r'></form>")
        assert qi.fields()[0].kind is FieldKind.TEXT_BOX

    def test_entities_decoded(self):
        qi = parse_form("<form>Beds &amp; Baths <input type='text' name='b'></form>")
        assert qi.fields()[0].label == "Beds & Baths"

    def test_stray_fieldset_close_ignored(self):
        qi = parse_form(
            "<form></fieldset>City <input type='text' name='c'></form>"
        )
        assert qi.leaf_count() == 1

    def test_content_outside_form_ignored(self):
        html = """
        Ignore <input type="text" name="outside">
        <form>Inside <input type="text" name="inside"></form>
        """
        qi = parse_form(html)
        assert qi.leaf_count() == 1
        assert qi.fields()[0].label == "Inside"

    def test_select_without_name(self):
        qi = parse_form(
            "<form>Pick <select><option>A</option><option>B</option></select></form>"
        )
        field = qi.fields()[0]
        assert field.instances == ("A", "B")
