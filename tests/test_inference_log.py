"""Inference-rule accounting (Figure 10 infrastructure)."""

from __future__ import annotations

import pytest

from repro.core.inference import InferenceLog, InferenceRule


class TestInferenceLog:
    def test_record_and_total(self):
        log = InferenceLog()
        log.record(InferenceRule.LI2, domain="auto", node="n1", label="X")
        log.record(InferenceRule.LI2)
        log.record(InferenceRule.LI5)
        assert log.total() == 3
        assert log.counts[InferenceRule.LI2] == 2
        assert len(log.events) == 3

    def test_shares_sum_to_one(self):
        log = InferenceLog()
        for rule in (InferenceRule.LI2, InferenceRule.LI2, InferenceRule.LI3,
                     InferenceRule.LI6):
            log.record(rule)
        shares = log.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares[InferenceRule.LI2] == pytest.approx(0.5)
        assert shares[InferenceRule.LI1] == 0.0

    def test_empty_shares_all_zero(self):
        shares = InferenceLog().shares()
        assert set(shares) == set(InferenceRule)
        assert all(v == 0.0 for v in shares.values())

    def test_keep_events_false_counts_only(self):
        log = InferenceLog(keep_events=False)
        log.record(InferenceRule.LI1)
        assert log.total() == 1
        assert log.events == []

    def test_merged_with(self):
        a = InferenceLog()
        a.record(InferenceRule.LI2)
        b = InferenceLog()
        b.record(InferenceRule.LI2)
        b.record(InferenceRule.LI7)
        merged = a.merged_with(b)
        assert merged.total() == 3
        assert merged.counts[InferenceRule.LI2] == 2
        # Originals untouched.
        assert a.total() == 1 and b.total() == 2
