"""Instance-based rules LI6 and LI7 (Section 6.1)."""

from __future__ import annotations

from repro.core.instances import (
    domain_of_label,
    li6_semantically_equivalent,
    li7_at_least_as_general,
    li7_value_labels,
)
from repro.schema.clusters import Cluster
from repro.schema.interface import make_field


def _cluster(members):
    cluster = Cluster("c")
    for interface, label, instances in members:
        cluster.add(interface, make_field(label, instances=tuple(instances)))
    return cluster


class TestDomainOfLabel:
    def test_union_over_same_label_fields(self):
        cluster = _cluster([
            ("a", "Class", ("First", "Economy")),
            ("b", "Class", ("Business",)),
            ("c", "Flight Class", ("First",)),
        ])
        assert domain_of_label(cluster, "Class") == {
            "first", "economy", "business"
        }

    def test_values_normalized(self):
        cluster = _cluster([("a", "Class", ("  First   Class ",))])
        assert domain_of_label(cluster, "Class") == {"first class"}


class TestLI6:
    def test_figure9(self, comparator):
        """Flight Class and Class have the same domain, so the generic
        Class is bounded to Flight Class's meaning in this domain."""
        values = ("Economy", "Business", "First")
        cluster = _cluster([
            ("a", "Class", values),
            ("b", "Flight Class", values),
        ])
        assert li6_semantically_equivalent(
            cluster, "Class", "Flight Class", comparator
        )

    def test_requires_hypernymy(self, comparator):
        cluster = _cluster([
            ("a", "Airline", ("Any",)),
            ("b", "Flight Class", ("Any",)),
        ])
        assert not li6_semantically_equivalent(
            cluster, "Airline", "Flight Class", comparator
        )

    def test_requires_domain_containment(self, comparator):
        cluster = _cluster([
            ("a", "Class", ("Economy", "Business", "Charter")),
            ("b", "Flight Class", ("Economy", "Business")),
        ])
        # domain(Class) ⊄ domain(Flight Class): Charter is extra.
        assert not li6_semantically_equivalent(
            cluster, "Class", "Flight Class", comparator
        )

    def test_requires_non_empty_domains(self, comparator):
        cluster = _cluster([
            ("a", "Class", ()),
            ("b", "Flight Class", ("Economy",)),
        ])
        assert not li6_semantically_equivalent(
            cluster, "Class", "Flight Class", comparator
        )


class TestLI7:
    def test_value_label_detected(self):
        cluster = _cluster([
            ("a", "Format", ("Hardcover", "Paperback")),
            ("b", "Hardcover", ()),
        ])
        findings = li7_value_labels(cluster)
        assert findings == {"Format": ["Hardcover"]}

    def test_predicate_form(self):
        cluster = _cluster([
            ("a", "Format", ("Hardcover", "Paperback")),
            ("b", "Hardcover", ()),
        ])
        assert li7_at_least_as_general(cluster, "Format", "Hardcover")
        assert not li7_at_least_as_general(cluster, "Hardcover", "Format")

    def test_case_insensitive_match(self):
        cluster = _cluster([
            ("a", "Binding", ("hardcover",)),
            ("b", "HardCover", ()),
        ])
        assert li7_at_least_as_general(cluster, "Binding", "HardCover")

    def test_no_findings_without_instances(self):
        cluster = _cluster([
            ("a", "Format", ()),
            ("b", "Hardcover", ()),
        ])
        assert li7_value_labels(cluster) == {}
