"""Internal-node candidate labels: LI1-LI5 and Definition 6 (Section 5)."""

from __future__ import annotations

import pytest

from repro.core.group_relation import GroupRelation
from repro.core.inference import InferenceRule
from repro.core.internal_nodes import CandidateFinder, collect_source_internal_nodes
from repro.core.solutions import name_group
from repro.schema.clusters import Mapping
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode

from .conftest import regular_group


def _interface(name, sections):
    """sections: list of (section_label | None, [(cluster, field_label)])."""
    mapping_entries = []
    top = []
    for section_label, fields in sections:
        nodes = []
        for cluster, field_label in fields:
            node = make_field(
                field_label, cluster=cluster, name=f"{name}:{cluster}"
            )
            nodes.append(node)
            mapping_entries.append((cluster, node))
        if section_label is None and len(nodes) == 1:
            top.extend(nodes)
        else:
            top.append(make_group(section_label, nodes, name=f"{name}:{section_label}"))
    qi = QueryInterface(name, SchemaNode(None, top, name=f"{name}:root"))
    return qi, mapping_entries


def _corpus(*specs):
    interfaces = []
    mapping = Mapping()
    for name, sections in specs:
        qi, entries = _interface(name, sections)
        interfaces.append(qi)
        for cluster, node in entries:
            mapping.assign(cluster, name, node)
    return interfaces, mapping


def _global_node(clusters):
    leaves = [SchemaNode(None, cluster=c, name=f"leaf:{c}") for c in clusters]
    return SchemaNode(None, leaves, name="gn")


class TestCollect:
    def test_collects_labeled_internal_nodes_with_clusters(self, comparator):
        interfaces, __ = _corpus(
            ("a", [("Location", [("c_city", "City"), ("c_state", "State")])]),
            ("b", [(None, [("c_zip", "Zip")])]),
        )
        nodes = collect_source_internal_nodes(interfaces)
        assert len(nodes) == 1
        assert nodes[0].label == "Location"
        assert nodes[0].leaf_clusters == {"c_city", "c_state"}


class TestLI2:
    """Figure 8 (left): the same label's coverage unions across sources."""

    def _finder(self, comparator):
        interfaces, mapping = _corpus(
            ("a", [("Location", [("c_city", "City"), ("c_state", "State")])]),
            ("b", [("Location", [("c_state", "State"), ("c_zip", "Zip Code")])]),
            ("c", [("Location", [("c_city", "City"), ("c_zip", "Zip")])]),
        )
        return CandidateFinder(interfaces, mapping, comparator)

    def test_union_covers_target(self, comparator):
        finder = self._finder(comparator)
        node = _global_node(["c_city", "c_state", "c_zip"])
        candidates = finder.candidates_for(node)
        assert [c.text for c in candidates] == ["Location"]
        assert candidates[0].coverage == {"c_city", "c_state", "c_zip"}
        assert candidates[0].origins == {"a", "b", "c"}
        assert finder.log.counts[InferenceRule.LI2] >= 1

    def test_no_candidate_when_coverage_partial(self, comparator):
        finder = self._finder(comparator)
        node = _global_node(["c_city", "c_state", "c_zip", "c_country"])
        assert finder.candidates_for(node) == []
        # ... but Location is still a *potential* label.
        assert "Location" in finder.potential_labels_for(node)


class TestLI3LI4:
    """Figure 8 (middle): the hypernymy hierarchy's root covers the union."""

    def test_question_root_covers_all(self, comparator):
        interfaces, mapping = _corpus(
            ("a", [("Do you have any preferences?",
                    [("c_airline", "Airline"), ("c_class", "Class")])]),
            ("b", [("Airline Preferences", [("c_airline", "Preferred Airline")])]),
            ("c", [("What are your service preferences?",
                    [("c_class", "Class of Ticket"), ("c_meal", "Meal")])]),
        )
        finder = CandidateFinder(interfaces, mapping, comparator)
        node = _global_node(["c_airline", "c_class", "c_meal"])
        candidates = finder.candidates_for(node)
        texts = [c.text for c in candidates]
        assert "Do you have any preferences?" in texts
        assert finder.log.counts[InferenceRule.LI3] + finder.log.counts[
            InferenceRule.LI4
        ] >= 1

    def test_hyponym_does_not_absorb_upward(self, comparator):
        interfaces, mapping = _corpus(
            ("a", [("Airline Preferences", [("c_airline", "Airline")])]),
            ("b", [("Do you have any preferences?", [("c_meal", "Meal")])]),
        )
        finder = CandidateFinder(interfaces, mapping, comparator)
        node = _global_node(["c_airline", "c_meal"])
        candidates = finder.candidates_for(node)
        # Only the general label can cover both.
        assert [c.text for c in candidates] == ["Do you have any preferences?"]


class TestLI5:
    """Figure 8 (right): Car Information extends over the dependent Keywords."""

    def _corpus(self):
        return _corpus(
            # Car Information covers make+model(+year) but not keywords.
            ("a", [("Car Information",
                    [("c_make", "Make"), ("c_model", "Model"),
                     ("c_from", "From"), ("c_to", "To")])]),
            # A source section whose label's content words come from its
            # make/model fields, with keywords as the dependent extra.
            ("b", [("Make/Model",
                    [("c_make", "Make"), ("c_model", "Model"),
                     ("c_keyword", "Keywords")])]),
        )

    def test_extends_over_characterized_subset(self, comparator):
        interfaces, mapping = self._corpus()
        finder = CandidateFinder(interfaces, mapping, comparator)
        node = _global_node(["c_make", "c_model", "c_from", "c_to", "c_keyword"])
        candidates = finder.candidates_for(node)
        assert [c.text for c in candidates] == ["Car Information"]
        assert candidates[0].rule is InferenceRule.LI5
        assert finder.log.counts[InferenceRule.LI5] == 1

    def test_li5_disabled(self, comparator):
        interfaces, mapping = self._corpus()
        finder = CandidateFinder(
            interfaces,
            mapping,
            comparator,
            enabled_rules=frozenset(InferenceRule) - {InferenceRule.LI5},
        )
        node = _global_node(["c_make", "c_model", "c_from", "c_to", "c_keyword"])
        assert finder.candidates_for(node) == []

    def test_instance_containment_condition(self, comparator):
        """LI5 condition 1: Z's instances inside Y's instances."""
        interfaces, mapping = _corpus(
            ("a", [("Trip", [("c_class", "Class"), ("c_fare", "Fare Type")])]),
        )
        # Give the fields instances such that c_extra ⊂ c_class's domain.
        qi2, entries = _interface(
            "b", [(None, [("c_extra", "Cabin Choice")])]
        )
        entries[0][1].instances = ("First", "Economy")
        mapping.assign("c_extra", "b", entries[0][1])
        interfaces.append(qi2)
        class_field = mapping["c_class"].members["a"]
        class_field.instances = ("First", "Economy", "Business")
        finder = CandidateFinder(interfaces, mapping, comparator)
        node = _global_node(["c_class", "c_fare", "c_extra"])
        candidates = finder.candidates_for(node)
        assert [c.text for c in candidates] == ["Trip"]


class TestLI1:
    def test_subset_plus_hypernym_label_equivalence(self, comparator):
        """Section 5's Location / Property Location example."""
        interfaces, mapping = _corpus(
            ("a", [("Location", [("c_state", "State"), ("c_county", "County")])]),
            ("b", [("Property Location",
                    [("c_state", "State"), ("c_county", "County"),
                     ("c_city", "City")])]),
        )
        finder = CandidateFinder(interfaces, mapping, comparator)
        pairs = finder.li1_equivalences()
        assert ("Location", "Property Location") in pairs

    def test_li1_shares_coverage(self, comparator):
        interfaces, mapping = _corpus(
            ("a", [("Location", [("c_state", "State"), ("c_county", "County")])]),
            ("b", [("Property Location",
                    [("c_state", "State"), ("c_county", "County"),
                     ("c_city", "City")])]),
        )
        finder = CandidateFinder(interfaces, mapping, comparator)
        node = _global_node(["c_state", "c_county", "c_city"])
        texts = {c.text for c in finder.candidates_for(node)}
        # Property Location covers directly; Location via LI1 equivalence.
        assert texts == {"Location", "Property Location"}


class TestDefinition6:
    def test_candidate_consistency_with_solution(self, comparator, table2_corpus):
        interfaces, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        solution = result.best
        finder = CandidateFinder(interfaces, mapping, comparator)

        from repro.core.internal_nodes import CandidateLabel

        in_partition = CandidateLabel(
            text="Passengers", rule=InferenceRule.LI2,
            origins=frozenset({"british"}), coverage=frozenset(group.clusters),
        )
        outside = CandidateLabel(
            text="Travelers", rule=InferenceRule.LI2,
            origins=frozenset({"airtravel"}), coverage=frozenset(group.clusters),
        )
        unconstrained = CandidateLabel(
            text="People", rule=InferenceRule.LI2,
            origins=frozenset({"unrelated-interface"}),
            coverage=frozenset(group.clusters),
        )
        assert finder.candidate_consistent_with_solution(
            in_partition, result, solution
        )
        assert not finder.candidate_consistent_with_solution(
            outside, result, solution
        )
        assert finder.candidate_consistent_with_solution(
            unconstrained, result, solution
        )


class TestDefinition7:
    """Ancestor/descendant candidate-label consistency (the Table 5 logic)."""

    def _setup(self, comparator):
        from repro.core.internal_nodes import CandidateLabel
        from repro.core.solutions import name_group

        interfaces, mapping = _corpus(
            ("i1", [("Year Range", [("c_from", "Min"), ("c_to", "Max")]),
                    ("Make/Model", [("c_make", "Make"), ("c_model", "Model")])]),
            ("i2", [("Year Range", [("c_from", "Min"), ("c_to", "Max")]),
                    ("Make/Model", [("c_make", "Make"), ("c_model", "Model")])]),
            ("i3", [("Car Information",
                     [("c_from", "Min"), ("c_to", "Max"),
                      ("c_make", "Make"), ("c_model", "Model")])]),
        )
        finder = CandidateFinder(interfaces, mapping, comparator)
        from .conftest import regular_group
        from repro.core.group_relation import GroupRelation

        year_group = regular_group(["c_from", "c_to"], "year")
        year_result = name_group(
            GroupRelation.from_mapping(year_group, mapping), comparator
        )
        car_info = CandidateLabel(
            text="Car Information", rule=InferenceRule.LI2,
            origins=frozenset({"i3"}),
            coverage=frozenset({"c_from", "c_to", "c_make", "c_model"}),
        )
        year_range = CandidateLabel(
            text="Year Range", rule=InferenceRule.LI2,
            origins=frozenset({"i1", "i2"}),
            coverage=frozenset({"c_from", "c_to"}),
        )
        return finder, year_result, car_info, year_range

    def test_consistent_pair(self, comparator):
        finder, year_result, car_info, year_range = self._setup(comparator)
        assert finder.definition7_consistent(
            car_info, year_range, [year_result]
        )

    def test_generality_violation_fails(self, comparator):
        finder, year_result, car_info, year_range = self._setup(comparator)
        # Swapped roles: the year label cannot sit above Car Information.
        assert not finder.definition7_consistent(
            year_range, car_info, [year_result]
        )

    def test_weak_form(self, comparator):
        finder, __, car_info, year_range = self._setup(comparator)
        assert finder.weakly_consistent_pair(car_info, year_range)
        assert not finder.weakly_consistent_pair(year_range, car_info)

    def test_condition2_fails_outside_partition(self, comparator):
        from repro.core.internal_nodes import CandidateLabel

        finder, year_result, car_info, __ = self._setup(comparator)
        # A descendant label originating from a row outside every solution's
        # partition cannot satisfy condition 2.  Fabricate such an origin by
        # pointing at an interface with a conflicting row: none exists here,
        # so instead check that a partition-less (partial) result fails.
        from repro.core.solutions import GroupNamingResult, GroupSolution

        partial = GroupNamingResult(
            group=year_result.group, relation=year_result.relation
        )
        partial.solutions = [
            GroupSolution(
                group=year_result.group,
                labels={"c_from": "Min", "c_to": "Max"},
                level=None,
                partition=None,
            )
        ]
        assert not finder.definition7_consistent(
            car_info, car_info, [partial]
        )
