"""Isolated-cluster naming: the RAN variant of Section 4.4 (+ LI6/LI7)."""

from __future__ import annotations

from repro.core.isolated import build_hierarchies, name_isolated_cluster
from repro.schema.clusters import Cluster
from repro.schema.interface import make_field


def _cluster(members):
    """members: list of (interface, label, instances)."""
    cluster = Cluster("c")
    for interface, label, instances in members:
        cluster.add(interface, make_field(label, instances=tuple(instances)))
    return cluster


class TestHierarchies:
    def test_paper_example(self, comparator):
        """Section 4.4: Class is the parent of Class of Ticket and Flight
        Class; Preferred Cabin stands alone."""
        labels = ["Class", "Class of Ticket", "Preferred Cabin", "Flight Class"]
        hierarchy = build_hierarchies(labels, comparator)
        assert set(hierarchy.roots) == {"Class", "Preferred Cabin"}
        assert hierarchy.parents["Class of Ticket"] == ["Class"]
        assert hierarchy.parents["Flight Class"] == ["Class"]

    def test_hyponyms_of(self, comparator):
        labels = ["Class", "Class of Ticket", "Flight Class"]
        hierarchy = build_hierarchies(labels, comparator)
        assert set(hierarchy.hyponyms_of("Class")) == {
            "Class of Ticket", "Flight Class"
        }

    def test_duplicates_collapsed(self, comparator):
        hierarchy = build_hierarchies(["X", "X", "Y"], comparator)
        assert hierarchy.labels == ["X", "Y"]


class TestNameIsolatedCluster:
    def test_most_descriptive_root_wins(self, comparator):
        """Section 4.4's outcome: Preferred Cabin beats the generic Class."""
        cluster = _cluster([
            ("a", "Class", ()),
            ("b", "Class of Ticket", ()),
            ("c", "Preferred Cabin", ()),
            ("d", "Flight Class", ()),
        ])
        outcome = name_isolated_cluster(cluster, comparator)
        assert outcome.label == "Preferred Cabin"
        assert set(outcome.roots) == {"Class", "Preferred Cabin"}

    def test_frequency_breaks_ties(self, comparator):
        cluster = _cluster([
            ("a", "Garage Spaces", ()),
            ("b", "Garage Spaces", ()),
            ("c", "Parking Spots", ()),
        ])
        outcome = name_isolated_cluster(cluster, comparator)
        assert outcome.label == "Garage Spaces"

    def test_empty_cluster(self, comparator):
        outcome = name_isolated_cluster(_cluster([]), comparator)
        assert outcome.label is None

    def test_unlabeled_members_ignored(self, comparator):
        cluster = _cluster([("a", None, ()), ("b", "Garage", ())])
        outcome = name_isolated_cluster(cluster, comparator)
        assert outcome.label == "Garage"


class TestLI6Figure9:
    def test_domain_bound_generic_yields_to_descriptive(self, comparator):
        """Figure 9: Class and Flight Class share a domain, so the more
        descriptive Flight Class is elected over the generic root."""
        values = ("Economy", "Business", "First")
        cluster = _cluster([
            ("a", "Class", values),
            ("b", "Flight Class", values),
            ("c", "Class of Tickets", ("Economy", "Business")),
        ])
        outcome = name_isolated_cluster(cluster, comparator)
        assert outcome.label == "Flight Class"
        assert ("Class", "Flight Class") in outcome.li6_replacements

    def test_without_instances_generic_root_stays(self, comparator):
        cluster = _cluster([
            ("a", "Class", ()),
            ("b", "Flight Class", ()),
        ])
        outcome = name_isolated_cluster(cluster, comparator)
        # Only root is Class (hypernym of Flight Class); no LI6 evidence.
        assert outcome.label == "Class"
        assert outcome.li6_replacements == []

    def test_use_instances_false_disables_li6(self, comparator):
        values = ("Economy", "Business")
        cluster = _cluster([
            ("a", "Class", values),
            ("b", "Flight Class", values),
        ])
        outcome = name_isolated_cluster(cluster, comparator, use_instances=False)
        assert outcome.label == "Class"


class TestLI7:
    def test_value_label_discarded(self, comparator):
        """Section 6.1.2: 'Hardcover' occurs among Format's instances, so it
        must not be elected as the cluster label."""
        cluster = _cluster([
            ("a", "Format", ("Hardcover", "Paperback")),
            ("b", "Hardcover", ()),
            ("c", "Binding", ()),
        ])
        outcome = name_isolated_cluster(cluster, comparator)
        assert outcome.label != "Hardcover"
        assert outcome.discarded_value_labels == ["Hardcover"]

    def test_li7_disabled_with_instances_off(self, comparator):
        cluster = _cluster([
            ("a", "Format", ("Hardcover",)),
            ("b", "Hardcover", ()),
        ])
        outcome = name_isolated_cluster(cluster, comparator, use_instances=False)
        assert outcome.discarded_value_labels == []
