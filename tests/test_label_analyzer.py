"""Label analysis edge cases: caching, odd inputs, conjunction detection."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.label import Label, LabelAnalyzer


class TestCaching:
    def test_identical_text_shares_object(self, analyzer):
        assert analyzer("Price Range") is analyzer("Price Range")

    def test_different_case_not_shared_but_equal_display(self, analyzer):
        a = analyzer("price range")
        b = analyzer("Price Range")
        assert a is not b
        assert a.display.casefold() == b.display.casefold()

    def test_callable_and_method_equivalent(self, analyzer):
        assert analyzer("X") is analyzer.label("X")


class TestOddInputs:
    def test_empty_label(self, analyzer):
        label = analyzer("")
        assert label.tokens == ()
        assert label.stems == frozenset()
        assert label.content_word_count == 0

    def test_whitespace_only(self, analyzer):
        assert analyzer("   ").tokens == ()

    def test_punctuation_only(self, analyzer):
        assert analyzer("$$$ !!!").tokens == ()

    def test_numeric_label(self, analyzer):
        label = analyzer("24 Hours")
        assert "24" in {t.surface for t in label.tokens}

    def test_unicode_label(self, analyzer):
        # Non-ASCII characters are treated as separators by step-1
        # normalization (the corpus is English, as the paper's is).
        label = analyzer("Prix—Range")
        assert {t.surface for t in label.tokens} == {"prix", "range"}

    def test_very_long_label(self, analyzer):
        text = " ".join(f"word{i}" for i in range(60))
        label = analyzer(text)
        assert label.content_word_count == 60


class TestConjunctions:
    @pytest.mark.parametrize(
        "text",
        ["Make/Model", "Beds & Baths", "City and State", "Sale or Rent"],
    )
    def test_detected(self, analyzer, text):
        assert analyzer(text).has_conjunction

    @pytest.mark.parametrize(
        "text",
        ["Android Phones",   # contains 'and' as substring only
         "Oregon Coast",     # contains 'or' as substring only
         "Standard Label"],
    )
    def test_substrings_do_not_trigger(self, analyzer, text):
        assert not analyzer(text).has_conjunction


class TestLabelValue:
    def test_str_is_raw(self, analyzer):
        assert str(analyzer("Adults (18-64)")) == "Adults (18-64)"

    def test_display_strips_comment(self, analyzer):
        assert analyzer("Adults (18-64)").display == "Adults"

    def test_labels_are_frozen(self, analyzer):
        label = analyzer("X")
        with pytest.raises(AttributeError):
            label.raw = "Y"


@given(st.text(max_size=40))
def test_analyzer_total(analyzer, text):
    label = analyzer.label(text)
    assert isinstance(label, Label)
    assert len(label.stems) == len(label.tokens)
