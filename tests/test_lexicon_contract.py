"""The lexicon contract: every relation the paper's examples depend on.

If curation of ``repro.lexicon.data`` ever regresses, these tests point at
the exact missing fact rather than a mysteriously failing pipeline.
"""

from __future__ import annotations

import pytest

from repro.lexicon.data import build_default_wordnet


@pytest.fixture(scope="module")
def wn():
    return build_default_wordnet()


class TestPaperSynonymy:
    @pytest.mark.parametrize(
        "a,b",
        [
            ("area", "field"),        # Area of Study ~ Field of Work
            ("study", "work"),
            ("make", "brand"),        # auto: Make ~ Brand
            ("author", "writer"),     # book
            ("job", "position"),      # job
            ("salary", "pay"),
            ("company", "employer"),
            ("mileage", "odometer"),
            ("price", "rate"),        # Max Rate ~ Maximum Price bridge
            ("minimum", "min"),
            ("maximum", "max"),
            ("depart", "departure"),  # Departing from ~ Departure City
            ("arrive", "arrival"),
            ("format", "binding"),    # book: Format ~ Binding
            ("type", "category"),     # Job Type vs Job Category homonym smell
        ],
    )
    def test_synonym_pairs(self, wn, a, b):
        assert wn.are_synonyms(a, b), (a, b)

    @pytest.mark.parametrize(
        "a,b",
        [
            ("job", "employment"),   # must NOT be synonyms: the 4.2.3 repair
                                     # relies on Employment Type being a
                                     # non-ambiguous replacement for Job Type
            ("class", "cabin"),      # Preferred Cabin is its own root (4.4)
            ("city", "state"),
        ],
    )
    def test_non_synonym_pairs(self, wn, a, b):
        assert not wn.are_synonyms(a, b), (a, b)


class TestPaperHypernymy:
    @pytest.mark.parametrize(
        "general,specific",
        [
            ("location", "area"),     # Section 5.1.3 / Figure 7
            ("location", "city"),
            ("location", "zip"),
            ("person", "adult"),
            ("passenger", "infant"),
            ("time", "date"),
            ("date", "year"),
            ("vehicle", "car"),
            ("property", "condo"),
        ],
    )
    def test_hypernym_pairs(self, wn, general, specific):
        assert wn.is_hypernym(general, specific), (general, specific)

    def test_hypernymy_is_not_symmetric(self, wn):
        assert not wn.is_hypernym("city", "location")
        assert not wn.is_hypernym("car", "vehicle")


class TestVocabularyCoverage:
    def test_domain_label_words_known(self, wn):
        """Words the catalogs lean on must be in-vocabulary so morphy and
        the survey's jargon detector behave."""
        for word in (
            "adults", "children", "seniors", "infants", "airline", "class",
            "price", "state", "city", "zip", "distance", "make", "model",
            "keyword", "author", "title", "publisher", "salary", "bedrooms",
            "bathrooms", "garage", "hotel", "rooms", "nights", "smoking",
            "currency", "transmission", "exterior",
        ):
            assert wn.is_known(wn.lemma_base(word)), word

    def test_brand_names_unknown(self, wn):
        """Chain jargon must stay out-of-vocabulary — the survey's
        too-specific detector keys off exactly this."""
        for word in ("wyndham", "hertz", "avis", "aadvantage"):
            assert not wn.is_known(word), word
