"""The interface linter (the paper's well-designedness formalism as checks)."""

from __future__ import annotations

import pytest

from repro.lint import lint_interface
from repro.schema.interface import make_field, make_group
from repro.schema.tree import SchemaNode


def _findings_by_check(findings):
    by_check = {}
    for finding in findings:
        by_check.setdefault(finding.check, []).append(finding)
    return by_check


class TestWellDesignedInterfacePasses:
    def test_paper_style_interface_is_clean(self, comparator):
        root = SchemaNode(None, [
            make_group("How many people are going?", [
                make_field("Adults", name="a"),
                make_field("Seniors", name="s"),
                make_field("Children", name="c"),
            ], name="g1"),
            make_group("Where do you want to go?", [
                make_field("Departing from", name="f"),
                make_field("Going to", name="t"),
            ], name="g2"),
        ], name="root")
        assert lint_interface(root, comparator) == []

    def test_generated_consistent_domain_mostly_clean(self):
        from repro import run_domain

        run = run_domain("job", seed=0, respondent_count=1)
        findings = lint_interface(run.labeling.root)
        warns = [f for f in findings if f.severity == "warn"]
        assert len(warns) <= 2


class TestChecks:
    def test_vertical_violation(self, comparator):
        # "City" above "Location": the descendant is more general.
        root = SchemaNode(None, [
            make_group("City", [
                make_field("Location", name="x"),
                make_field("Street", name="y"),
            ], name="g"),
        ], name="root")
        findings = _findings_by_check(lint_interface(root, comparator))
        assert "vertical" in findings
        assert "more general than its ancestor" in findings["vertical"][0].message

    def test_homonym_detection(self, comparator):
        root = SchemaNode(None, [
            make_field("Job Type", name="a"),
            make_field("Type of Job", name="b"),
        ], name="root")
        findings = _findings_by_check(lint_interface(root, comparator))
        assert "homonyms" in findings

    def test_unlabeled_field_without_instances(self, comparator):
        root = SchemaNode(None, [make_field(None, name="bare")], name="root")
        findings = _findings_by_check(lint_interface(root, comparator))
        assert "unlabeled" in findings

    def test_unlabeled_with_instances_excused(self, comparator):
        root = SchemaNode(None, [
            make_field(None, instances=("a", "b"), name="ok"),
        ], name="root")
        assert lint_interface(root, comparator) == []

    def test_generic_label(self, comparator):
        root = SchemaNode(None, [make_field("Category", name="c")], name="root")
        findings = _findings_by_check(lint_interface(root, comparator))
        assert "generic" in findings

    def test_horizontal_incoherence(self, comparator):
        root = SchemaNode(None, [
            make_group("Stuff", [
                make_field("Adults", name="a"),
                make_field("Children", name="b"),
                make_field("Carburetor", name="z"),
            ], name="g"),
        ], name="root")
        findings = _findings_by_check(lint_interface(root, comparator))
        assert "horizontal" in findings
        assert "Carburetor" in findings["horizontal"][0].message

    def test_unknown_check_rejected(self, comparator):
        with pytest.raises(ValueError, match="unknown lint check"):
            lint_interface(SchemaNode(None, name="r"), comparator,
                           checks=("bogus",))

    def test_check_subset(self, comparator):
        root = SchemaNode(None, [make_field("Category", name="c")], name="root")
        assert lint_interface(root, comparator, checks=("homonyms",)) == []

    def test_warns_sort_first(self, comparator):
        root = SchemaNode(None, [
            make_field("Category", name="c"),       # info
            make_field(None, name="bare"),           # warn
        ], name="root")
        findings = lint_interface(root, comparator)
        assert findings[0].severity == "warn"
