"""Label-based cluster recovery (the optional matcher substrate)."""

from __future__ import annotations

from repro.matching import fields_match, match_interfaces
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode


def _qi(name, fields):
    nodes = [
        make_field(label, instances=tuple(instances), name=f"{name}:{i}")
        for i, (label, instances) in enumerate(fields)
    ]
    return QueryInterface(
        name, SchemaNode(None, [make_group(None, nodes, name=f"{name}:g")],
                         name=f"{name}:r")
    )


class TestFieldsMatch:
    def test_label_relation_match(self, comparator):
        a = make_field("Preferred Airline")
        b = make_field("Airline Preference")
        assert fields_match(a, b, comparator)

    def test_synonym_match(self, comparator):
        assert fields_match(
            make_field("Brand"), make_field("Make"), comparator
        )

    def test_instance_overlap_match(self, comparator):
        a = make_field("Mystery A", instances=("First", "Economy", "Business"))
        b = make_field("Something Else", instances=("first", "economy"))
        assert fields_match(a, b, comparator)

    def test_no_match(self, comparator):
        assert not fields_match(
            make_field("Price"), make_field("Airline"), comparator
        )

    def test_unlabeled_without_instances_never_matches(self, comparator):
        assert not fields_match(make_field(None), make_field("X"), comparator)


class TestMatchInterfaces:
    def test_recovers_equivalent_fields(self, comparator):
        interfaces = [
            _qi("a", [("Preferred Airline", ()), ("Adults", ())]),
            _qi("b", [("Airline Preference", ()), ("Adults", ())]),
            _qi("c", [("Adults", ()), ("Price", ())]),
        ]
        mapping = match_interfaces(interfaces, comparator)
        clusters_by_size = sorted(
            (c.frequency(), sorted(c.members)) for c in mapping.clusters
        )
        # Adults x3, airline x2, price x1.
        assert clusters_by_size == [
            (1, ["c"]),
            (2, ["a", "b"]),
            (3, ["a", "b", "c"]),
        ]

    def test_one_member_per_interface(self, comparator):
        interfaces = [
            _qi("a", [("Adults", ()), ("Adults (18-64)", ())]),
        ]
        mapping = match_interfaces(interfaces, comparator)
        # Two string-equal fields on ONE interface must not share a cluster.
        assert len(mapping) == 2

    def test_fields_get_cluster_names(self, comparator):
        interfaces = [_qi("a", [("Adults", ())])]
        match_interfaces(interfaces, comparator)
        assert interfaces[0].fields()[0].cluster == "c_adults"

    def test_name_collision_suffixing(self, comparator):
        interfaces = [
            _qi("a", [("Price", ())]),
            _qi("b", [("Price $", ())]),   # string-equal after normalization
            _qi("c", [("Completely Different", ())]),
        ]
        mapping = match_interfaces(interfaces, comparator)
        assert len({c.name for c in mapping.clusters}) == len(mapping)
