"""Merge substrate: the integrated tree's guarantees and determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import load_domain
from repro.merge import merge_interfaces
from repro.merge.order import average_position, cluster_positions
from repro.schema.clusters import Mapping
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.serialize import node_to_dict
from repro.schema.tree import SchemaNode


def _two_source_corpus():
    interfaces = []
    mapping = Mapping()

    def add(name, groups):
        top = []
        for glabel, fields in groups:
            nodes = []
            for cluster, label in fields:
                node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
                nodes.append(node)
                mapping.assign(cluster, name, node)
            top.append(make_group(glabel, nodes, name=f"{name}:{glabel}"))
        interfaces.append(
            QueryInterface(name, SchemaNode(None, top, name=f"{name}:root"))
        )

    add("s1", [("Route", [("c_from", "From"), ("c_to", "To")]),
               ("Dates", [("c_depart", "Depart"), ("c_return", "Return")])])
    add("s2", [("Route", [("c_from", "From"), ("c_to", "To")]),
               ("Dates", [("c_depart", "Depart"), ("c_return", "Return")])])
    return interfaces, mapping


class TestMergeGuarantees:
    def test_each_cluster_exactly_one_leaf(self):
        interfaces, mapping = _two_source_corpus()
        root = merge_interfaces(interfaces, mapping)
        clusters = [leaf.cluster for leaf in root.leaves()]
        assert sorted(clusters) == ["c_depart", "c_from", "c_return", "c_to"]

    def test_grouping_constraint_honored(self):
        interfaces, mapping = _two_source_corpus()
        root = merge_interfaces(interfaces, mapping)
        # From/To share a parent; Depart/Return share a parent; the two
        # parents differ.
        from_leaf = root.find_by_cluster("c_from")
        to_leaf = root.find_by_cluster("c_to")
        depart_leaf = root.find_by_cluster("c_depart")
        assert from_leaf.parent is to_leaf.parent
        assert from_leaf.parent is not depart_leaf.parent

    def test_tree_validates_and_unlabeled(self):
        interfaces, mapping = _two_source_corpus()
        root = merge_interfaces(interfaces, mapping)
        root.validate()
        assert all(not node.is_labeled for node in root.walk())

    def test_requires_one_to_one_mapping(self):
        interfaces, mapping = _two_source_corpus()
        extra = interfaces[0].root.find_by_cluster(None)  # no-op lookup
        field = interfaces[0].root.leaves()[0]
        mapping.get_or_create("c_dup").add("s1", field)
        with pytest.raises(ValueError):
            merge_interfaces(interfaces, mapping)

    def test_empty_mapping(self):
        root = merge_interfaces([], Mapping())
        assert root.is_leaf and root.cluster is None

    def test_leaf_instances_are_source_union(self):
        interfaces, mapping = _two_source_corpus()
        field = mapping["c_from"].members["s1"]
        field.instances = ("NYC", "LON")
        other = mapping["c_from"].members["s2"]
        other.instances = ("LON", "SEL")
        root = merge_interfaces(interfaces, mapping)
        assert set(root.find_by_cluster("c_from").instances) == {
            "NYC", "LON", "SEL"
        }


class TestAncestorDescendantPreservation:
    def test_supergroup_preserved(self):
        interfaces = []
        mapping = Mapping()
        for name in ("s1", "s2"):
            route_fields = []
            for cluster, label in [("c_from", "From"), ("c_to", "To")]:
                node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
                route_fields.append(node)
                mapping.assign(cluster, name, node)
            date_fields = []
            for cluster, label in [("c_depart", "Depart"), ("c_return", "Return")]:
                node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
                date_fields.append(node)
                mapping.assign(cluster, name, node)
            where = make_group("Where", route_fields, name=f"{name}:where")
            when = make_group("When", date_fields, name=f"{name}:when")
            super_node = make_group("Trip", [where, when], name=f"{name}:trip")
            other = make_field("Promo", cluster="c_promo", name=f"{name}:promo")
            mapping.assign("c_promo", name, other)
            interfaces.append(
                QueryInterface(
                    name, SchemaNode(None, [super_node, other], name=f"{name}:r")
                )
            )
        root = merge_interfaces(interfaces, mapping)
        # The super-group ancestor relation survives: From and Depart share
        # an ancestor below the root; Promo does not join them.
        from_leaf = root.find_by_cluster("c_from")
        depart_leaf = root.find_by_cluster("c_depart")
        promo_leaf = root.find_by_cluster("c_promo")
        from_ancestors = set(id(a) for a in from_leaf.ancestors()) - {id(root)}
        depart_ancestors = set(id(a) for a in depart_leaf.ancestors()) - {id(root)}
        promo_ancestors = set(id(a) for a in promo_leaf.ancestors()) - {id(root)}
        assert from_ancestors & depart_ancestors
        assert not (promo_ancestors & from_ancestors)


class TestDeterminismOnCorpus:
    @pytest.mark.parametrize("domain", ["auto", "job"])
    def test_same_seed_same_tree(self, domain):
        first = load_domain(domain, seed=7).integrated()
        second = load_domain(domain, seed=7).integrated()
        assert node_to_dict(first) == node_to_dict(second)

    def test_different_seeds_differ(self):
        a = load_domain("auto", seed=1).integrated()
        b = load_domain("auto", seed=2).integrated()
        assert node_to_dict(a) != node_to_dict(b)


class TestOrdering:
    def test_cluster_positions_normalized(self):
        interfaces, mapping = _two_source_corpus()
        positions = cluster_positions(interfaces)
        assert all(0.0 <= p <= 1.0 for ps in positions.values() for p in ps)
        assert positions["c_from"] == [0.0, 0.0]

    def test_average_position_unknown_cluster(self):
        assert average_position(["ghost"], {}) == 1.0

    def test_majority_order_respected(self):
        interfaces, mapping = _two_source_corpus()
        root = merge_interfaces(interfaces, mapping)
        clusters = [leaf.cluster for leaf in root.leaves()]
        # Sources list route before dates.
        assert clusters.index("c_from") < clusters.index("c_depart")
        assert clusters.index("c_from") < clusters.index("c_to")
