"""Merge internals: laminar constraint selection and conflict resolution."""

from __future__ import annotations

from collections import Counter

from repro.merge.merger import _laminar_family, merge_interfaces
from repro.schema.clusters import Mapping
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode


def _component(*names):
    return frozenset(names)


class TestLaminarFamily:
    def test_nested_subset_dropped(self):
        a, b, c, d = (
            _component("w"), _component("x"), _component("y"), _component("z")
        )
        constraints = Counter({
            frozenset({a, b, c}): 3,
            frozenset({a, b}): 2,       # nested inside the first -> flattened
        })
        kept = _laminar_family(constraints, {a, b, c, d})
        assert kept == [frozenset({a, b, c})]

    def test_crossing_majority_wins(self):
        a, b, c = _component("x"), _component("y"), _component("z")
        constraints = Counter({
            frozenset({a, b}): 5,       # majority
            frozenset({b, c}): 2,       # crosses the first -> dropped
        })
        kept = _laminar_family(constraints, {a, b, c})
        assert kept == [frozenset({a, b})]

    def test_disjoint_constraints_coexist(self):
        a, b, c, d = (
            _component("w"), _component("x"), _component("y"), _component("z")
        )
        constraints = Counter({
            frozenset({a, b}): 2,
            frozenset({c, d}): 2,
        })
        kept = _laminar_family(constraints, {a, b, c, d})
        assert sorted(kept, key=len) == sorted(
            [frozenset({a, b}), frozenset({c, d})], key=len
        )

    def test_full_universe_constraint_ignored(self):
        a, b = _component("x"), _component("y")
        constraints = Counter({frozenset({a, b}): 9})
        kept = _laminar_family(constraints, {a, b})
        # {a, b} IS the universe here — it would duplicate the root.
        assert kept == []

    def test_singleton_constraints_ignored(self):
        a, b = _component("x"), _component("y")
        constraints = Counter({frozenset({a}): 4})
        assert _laminar_family(constraints, {a, b}) == []


class TestConflictingSources:
    def test_majority_grouping_wins(self):
        """Three sources group A with B; one groups B with C.  The merged
        tree follows the majority ("as much as possible")."""
        interfaces = []
        mapping = Mapping()

        def add(name, pairs):
            top = []
            for glabel, fields in pairs:
                nodes = []
                for cluster, label in fields:
                    node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
                    nodes.append(node)
                    mapping.assign(cluster, name, node)
                top.append(make_group(glabel, nodes, name=f"{name}:{glabel}"))
            interfaces.append(
                QueryInterface(name, SchemaNode(None, top, name=f"{name}:r"))
            )

        for name in ("s1", "s2", "s3"):
            add(name, [("AB", [("c_a", "Alpha"), ("c_b", "Beta")]),
                       ("C", [("c_c", "Gamma"), ("c_d", "Delta")])])
        add("s4", [("BC", [("c_b", "Beta"), ("c_c", "Gamma")]),
                   ("A", [("c_a", "Alpha"), ("c_d", "Delta")])])

        root = merge_interfaces(interfaces, mapping)
        a = root.find_by_cluster("c_a")
        b = root.find_by_cluster("c_b")
        c = root.find_by_cluster("c_c")
        assert a.parent is b.parent
        assert c.parent is not b.parent

    def test_single_interface_merge_is_projection(self):
        mapping = Mapping()
        fields = []
        for cluster, label in [("c_x", "X"), ("c_y", "Y")]:
            node = make_field(label, cluster=cluster, name=f"s:{cluster}")
            fields.append(node)
            mapping.assign(cluster, "s", node)
        qi = QueryInterface(
            "s",
            SchemaNode(None, [make_group("G", fields, name="s:g")], name="s:r"),
        )
        root = merge_interfaces([qi], mapping)
        assert sorted(l.cluster for l in root.leaves()) == ["c_x", "c_y"]
        # The single source's group survives as one integrated group.
        assert root.leaves()[0].parent is root.leaves()[1].parent
