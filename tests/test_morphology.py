"""Base-form recovery (morphy analog): irregulars, detachment, vocab checks."""

from __future__ import annotations

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lexicon.morphology import IRREGULAR_FORMS, base_form


@pytest.mark.parametrize(
    "token,expected",
    [
        ("children", "child"),
        ("people", "person"),
        ("Preferred", "prefer"),
        ("departing", "depart"),
        ("leaving", "leave"),
        ("going", "go"),
        ("cities", "city"),
        ("properties", "property"),
        ("amenities", "amenity"),
    ],
)
def test_irregular_forms(token, expected):
    assert base_form(token) == expected


def test_irregulars_bypass_vocabulary_check():
    # Even with a vocabulary that knows nothing, irregulars resolve.
    assert base_form("children", is_known=lambda w: False) == "child"


class TestDetachmentWithVocabulary:
    vocab = {"adult", "room", "stop", "class", "address", "bus", "match", "wish"}

    def test_plural_s(self):
        assert base_form("adults", self.vocab) == "adult"
        assert base_form("rooms", self.vocab) == "room"

    def test_es_forms(self):
        assert base_form("buses", self.vocab) == "bus"
        assert base_form("matches", self.vocab) == "match"
        assert base_form("wishes", self.vocab) == "wish"

    def test_known_word_returned_as_is(self):
        assert base_form("class", self.vocab) == "class"

    def test_unknown_unresolvable_returned_unchanged(self):
        assert base_form("zzzqqq", self.vocab) == "zzzqqq"

    def test_candidate_rejected_when_not_in_vocabulary(self):
        # "axes" -> "axe" not in vocab, "ax" not in vocab -> falls through
        # rules until nothing validates, then returns the input.
        assert base_form("floopses", self.vocab) == "floopses"

    def test_container_vocabulary_accepted(self):
        assert base_form("stops", self.vocab) == "stop"

    def test_callable_vocabulary_accepted(self):
        assert base_form("stops", lambda w: w == "stop") == "stop"


def test_without_vocabulary_first_rule_wins():
    # No validation: the first matching detachment applies.
    assert base_form("adults") == "adult"
    assert base_form("going") == "go"  # via irregulars


def test_never_returns_single_character():
    # Candidates shorter than 2 characters are skipped.
    assert base_form("as", lambda w: True) == "as"


@given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=20))
def test_total_and_lowercase(token):
    result = base_form(token)
    assert result == result.lower()
    assert isinstance(result, str) and result


@given(st.sampled_from(sorted(IRREGULAR_FORMS)))
def test_all_irregulars_resolve_to_their_base(token):
    assert base_form(token) == IRREGULAR_FORMS[token]
