"""Label normalization: the two-step process of paper Section 3.1."""

from __future__ import annotations

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lexicon.normalize import Token, content_tokens, display_form, tokenize
from repro.lexicon.stopwords import STOP_WORDS, is_stop_word


class TestDisplayForm:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("Adults (18-64)", "Adults"),          # paper's comment example
            ("Price $", "Price"),                  # paper's punctuation example
            ("Check-in", "Check in"),
            ("Make/Model", "Make Model"),
            ("  spaced   out  ", "spaced out"),
            ("Seniors [65+]", "Seniors"),
            ("Guests {2}", "Guests"),
            ("plain", "plain"),
            ("", ""),
        ],
    )
    def test_examples(self, raw, expected):
        assert display_form(raw) == expected

    def test_preserves_case(self):
        assert display_form("Zip Code") == "Zip Code"


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Area of Study") == ["area", "of", "study"]

    def test_strips_comments_first(self):
        assert tokenize("Adults (18-64)") == ["adults"]


class TestContentTokens:
    def test_paper_question_example(self, wordnet):
        # Section 5.1.2: "Do you have any preferences?" -> {prefer}
        tokens = content_tokens("Do you have any preferences?", wordnet)
        assert [t.stem for t in tokens] == ["prefer"]

    def test_table4_equality_pair(self, wordnet):
        a = content_tokens("Airline Preference", wordnet)
        b = content_tokens("Preferred Airline", wordnet)
        assert {t.stem for t in a} == {t.stem for t in b}

    def test_all_stopword_label_keeps_tokens(self, wordnet):
        # "From" must not collapse to an empty (and hence universal) set.
        tokens = content_tokens("From", wordnet)
        assert [t.surface for t in tokens] == ["from"]

    def test_deduplicates_by_stem(self, wordnet):
        tokens = content_tokens("price price Prices", wordnet)
        assert len(tokens) == 1

    def test_order_preserved(self, wordnet):
        tokens = content_tokens("Area of Study", wordnet)
        assert [t.surface for t in tokens] == ["area", "study"]

    def test_without_wordnet_falls_back_to_plain_morphology(self):
        tokens = content_tokens("Children going")
        assert {t.lemma for t in tokens} == {"child", "go"}


class TestToken:
    def test_equality_is_stem_equality(self):
        a = Token("preference", "preference", "prefer")
        b = Token("preferred", "prefer", "prefer")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        a = Token("city", "city", "citi")
        b = Token("state", "state", "state")
        assert a != b

    def test_not_equal_to_other_types(self):
        token = Token("x", "x", "x")
        assert token != "x"


class TestStopWords:
    def test_membership(self):
        assert is_stop_word("the")
        assert is_stop_word("OF")
        assert not is_stop_word("airline")

    def test_question_words_included(self):
        for word in ("do", "you", "have", "any", "where", "when"):
            assert word in STOP_WORDS


@given(st.text(alphabet=string.printable, max_size=60))
def test_display_form_never_crashes_and_is_clean(raw):
    result = display_form(raw)
    assert "  " not in result
    assert result == result.strip()
    assert all(ch.isalnum() or ch == " " for ch in result)


@given(st.text(alphabet=string.ascii_letters + " -/()", max_size=50))
def test_content_tokens_unique_stems(raw):
    tokens = content_tokens(raw)
    stems = [t.stem for t in tokens]
    assert len(stems) == len(set(stems))
