"""repro.obs — span tracing, exporters, and the tracing-changes-nothing law.

The deterministic-clock golden (``tests/golden/trace_airline.json``) pins
the full span tree of one airline-domain request: every instrumented call
site, in order, with clock-tick durations.  Any change to the
instrumentation shows up as a reviewable diff.  Regenerate after an
intentional change with:

    python tests/test_obs.py --regenerate
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

import pytest

from repro.obs import (
    Span,
    Trace,
    TraceLog,
    TraceStore,
    chrome_trace,
    current_span,
    current_trace,
    event,
    format_trace,
    is_active,
    new_request_id,
    span,
)
from repro.obs.tracer import _NOOP
from repro.service.client import ServiceClient, ServiceError
from repro.service.engine import LabelingEngine
from repro.service.server import LabelingServer
from repro.testing.oracles import canonical_response

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "trace_airline.json"


class FakeClock:
    """A monotonic clock advancing exactly one millisecond per reading."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        current = self.now
        self.now += 0.001
        return current


# ----------------------------------------------------------------------
# Tracer core.
# ----------------------------------------------------------------------


class TestSpanTracer:
    def test_disabled_call_sites_are_noops(self):
        assert not is_active()
        assert current_trace() is None
        assert current_span() is None
        assert span("anything", tag=1) is _NOOP       # the shared singleton
        with span("anything") as sp:
            assert sp is None
        event("ignored", detail="dropped")            # must not raise

    def test_nested_spans_build_a_timed_tree(self):
        trace = Trace(request_id="t1", clock=FakeClock())
        with trace.scope():
            assert is_active()
            assert current_trace() is trace
            with span("outer", kind="demo") as outer:
                with span("inner") as inner:
                    assert current_span() is inner
                    event("tick", n=1)
                assert current_span() is outer
        assert not is_active()
        assert [c.name for c in trace.root.children] == ["outer"]
        outer = trace.root.children[0]
        assert outer.tags == {"kind": "demo"}
        assert [c.name for c in outer.children] == ["inner"]
        inner = outer.children[0]
        assert inner.events[0]["name"] == "tick"
        assert inner.events[0]["attrs"] == {"n": 1}
        # FakeClock ticks 1 ms per reading: every span has a real duration
        # and children nest within their parents' windows.
        assert outer.start_s < inner.start_s <= inner.end_s < outer.end_s
        assert trace.root.duration_ms > outer.duration_ms > 0

    def test_find_and_iter_spans(self):
        trace = Trace(clock=FakeClock())
        with trace.scope():
            with span("a"):
                with span("b"):
                    pass
                with span("b"):
                    pass
        assert len(trace.find("b")) == 2
        assert [s.name for s in trace.root.iter_spans()] == [
            "request", "a", "b", "b",
        ]

    def test_to_dict_from_dict_roundtrip_rebases(self):
        trace = Trace(request_id="rt", clock=FakeClock())
        with trace.scope():
            with span("work", step=1):
                event("mark", ok=True)
        record = trace.to_dict()
        assert record["request_id"] == "rt"
        rebuilt = Span.from_dict(record["root"], base_s=5.0)
        assert rebuilt.name == "request"
        assert rebuilt.start_s == pytest.approx(5.0)
        work = rebuilt.children[0]
        assert work.tags == {"step": 1}
        assert work.events[0]["name"] == "mark"
        # Serializing the rebuilt tree from its new base reproduces the
        # original offsets exactly.
        assert rebuilt.to_dict(base_s=5.0) == record["root"]

    def test_attach_isolates_concurrent_workers(self):
        trace = Trace(clock=FakeClock())
        items = [Span(f"item[{i}]") for i in range(2)]
        trace.root.children.extend(items)
        barrier = threading.Barrier(2)

        def work(item: Span) -> None:
            with trace.attach(item):
                barrier.wait(timeout=5)
                with span("inner"):
                    barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=(item,)) for item in items
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        # Each worker's span landed under its own item, never a sibling's.
        for item in items:
            assert [c.name for c in item.children] == ["inner"]

    def test_exception_still_closes_span(self):
        trace = Trace(clock=FakeClock())
        with pytest.raises(RuntimeError):
            with trace.scope():
                with span("doomed"):
                    raise RuntimeError("boom")
        doomed = trace.find("doomed")[0]
        assert doomed.end_s > doomed.start_s
        assert not is_active()

    def test_new_request_id_is_opaque_hex(self):
        rid = new_request_id()
        assert len(rid) == 32
        int(rid, 16)  # hex or raise
        assert rid != new_request_id()


class TestFormatTrace:
    def test_renders_durations_tags_and_events(self):
        trace = Trace(request_id="fmt", clock=FakeClock())
        with trace.scope():
            with span("phase:demo", groups=3):
                event("checkpoint", n=2)
        text = format_trace(trace)
        assert "request_id=fmt" in text
        assert "phase:demo" in text
        assert "[groups=3]" in text
        assert "checkpoint n=2" in text
        assert "ms" in text
        # The dict form renders identically.
        assert format_trace(trace.to_dict()) == text


# ----------------------------------------------------------------------
# Exporters.
# ----------------------------------------------------------------------


def _sample_record(request_id: str = "req-1") -> dict:
    trace = Trace(request_id=request_id, clock=FakeClock())
    with trace.scope():
        with span("outer", kind="demo"):
            with span("inner"):
                event("mark", ok=True)
    return trace.to_dict()


class TestTraceLog:
    def test_append_and_load_roundtrip(self, tmp_path):
        log = TraceLog(tmp_path / "traces")
        written = log.append(_sample_record())
        assert written == 3  # request + outer + inner
        records, corrupt = TraceLog.load(log.path)
        assert corrupt == 0
        assert [r["name"] for r in records] == ["request", "outer", "inner"]
        assert [r["id"] for r in records] == [0, 1, 2]
        assert [r["parent"] for r in records] == [None, 0, 1]
        assert all(r["request_id"] == "req-1" for r in records)
        assert records[2]["events"][0]["name"] == "mark"
        assert log.stats() == {
            "path": str(log.path), "traces": 1, "spans": 3,
        }

    def test_corrupt_lines_are_skipped_not_fatal(self, tmp_path):
        log = TraceLog(tmp_path)
        log.append(_sample_record("a"))
        with log.path.open("a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"crc": 1, "v": {"name": "forged"}}\n')
            handle.write('{"no_v": true}\n')
        log.append(_sample_record("b"))
        records, corrupt = TraceLog.load(log.path)
        assert corrupt == 3
        assert sum(1 for r in records if r["request_id"] == "a") == 3
        assert sum(1 for r in records if r["request_id"] == "b") == 3

    def test_truncated_final_line_is_one_corrupt_record(self, tmp_path):
        log = TraceLog(tmp_path)
        log.append(_sample_record())
        text = log.path.read_text("utf-8")
        log.path.write_text(text[:-20], "utf-8")  # tear the last line
        records, corrupt = TraceLog.load(log.path)
        assert corrupt == 1
        assert len(records) == 2


class TestTraceStore:
    def test_bounded_lru_semantics(self):
        store = TraceStore(capacity=2)
        store.put(_sample_record("a"))
        store.put(_sample_record("b"))
        assert store.get("a") is not None  # refresh: 'b' is now coldest
        store.put(_sample_record("c"))
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert len(store) == 2
        assert store.stats() == {"capacity": 2, "stored": 2, "evictions": 1}

    def test_zero_capacity_stores_nothing(self):
        store = TraceStore(capacity=0)
        store.put(_sample_record())
        assert store.get("req-1") is None

    def test_replacing_same_request_id_keeps_one(self):
        store = TraceStore(capacity=4)
        store.put(_sample_record("dup"))
        store.put(_sample_record("dup"))
        assert len(store) == 1


class TestChromeTrace:
    def test_event_array_shape(self):
        events = chrome_trace([_sample_record()])
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert len(metadata) == 1 and metadata[0]["args"]["name"] == "request req-1"
        assert [e["name"] for e in complete] == ["request", "outer", "inner"]
        assert all(e["ts"] >= 0 and e["dur"] > 0 for e in complete)
        assert instants[0]["name"] == "mark"
        # Timestamps are microseconds: the 1 ms fake tick becomes 1000 µs.
        outer = next(e for e in complete if e["name"] == "outer")
        assert outer["ts"] == 1000.0
        json.dumps(events)  # must serialize as-is

    def test_multiple_traces_get_distinct_pids(self):
        events = chrome_trace([_sample_record("a"), _sample_record("b")])
        assert {e["pid"] for e in events} == {1, 2}


# ----------------------------------------------------------------------
# The deterministic golden span tree.
# ----------------------------------------------------------------------

PAPER_PHASES = (
    "phase:group_relations",
    "phase:partitions",
    "phase:combine_closure",
    "phase:conflict_repair",
    "phase:internal_inference",
)


def _airline_trace() -> dict:
    """One airline-domain request under a fresh engine and a fake clock."""
    trace = Trace(request_id="golden", name="label", clock=FakeClock())
    engine = LabelingEngine(cache_size=0)
    with trace.scope():
        engine.label({"domain": "airline", "seed": 0})
    return trace.to_dict()


class TestGoldenTrace:
    def test_trace_is_deterministic(self):
        assert _airline_trace() == _airline_trace()

    def test_all_paper_phases_traced_with_durations(self):
        record = _airline_trace()
        names = {}

        def walk(span_record):
            names[span_record["name"]] = span_record
            for child in span_record.get("children") or []:
                walk(child)

        walk(record["root"])
        for phase in PAPER_PHASES:
            assert phase in names, f"missing span for {phase}"
            assert names[phase]["duration_ms"] > 0
        assert names["cache.lookup"]["tags"]["outcome"] == "miss"
        assert names["pipeline"]["tags"]["interfaces"] == 20

    def test_airline_span_tree_matches_golden(self):
        if not GOLDEN_TRACE.exists():
            pytest.skip(
                f"golden file missing — run `python {__file__} --regenerate`"
            )
        expected = json.loads(GOLDEN_TRACE.read_text())
        assert _airline_trace() == expected, (
            "the airline span tree drifted from the golden snapshot; if the "
            "instrumentation change is intentional, regenerate with "
            f"`python {__file__} --regenerate`"
        )


# ----------------------------------------------------------------------
# The law: tracing never changes labeling output.
# ----------------------------------------------------------------------


def _canon(response: dict) -> dict:
    """canonical_response, minus the wall-clock field of error entries."""
    canon = canonical_response(response)
    canon.pop("elapsed_ms", None)
    return canon


class TestTracingChangesNothing:
    @pytest.mark.parametrize("domain", ["airline", "book"])
    def test_single_request_byte_identical(self, domain):
        plain = LabelingEngine(cache_size=0).label({"domain": domain})
        trace = Trace()
        with trace.scope():
            traced = LabelingEngine(cache_size=0).label({"domain": domain})
        assert canonical_response(traced) == canonical_response(plain)
        assert len(trace.find("pipeline")) == 1

    def test_thread_batch_byte_identical(self):
        payloads = [{"domain": "airline"}, {"domain": "job"}, {"bad": True}]
        plain = LabelingEngine(cache_size=0).label_batch(payloads, jobs=2)
        trace = Trace()
        with trace.scope():
            traced = LabelingEngine(cache_size=0).label_batch(payloads, jobs=2)
        assert [_canon(r) for r in traced] == [
            _canon(r) for r in plain
        ]
        # One pre-created item span per payload, in submission order.
        batch_span = trace.find("engine.batch")[0]
        assert [c.name for c in batch_span.children] == [
            "item[0]", "item[1]", "item[2]",
        ]

    def test_process_batch_byte_identical_and_grafts_worker_spans(self):
        payloads = [{"domain": "airline"}, {"domain": "book"}]
        plain = LabelingEngine(cache_size=0).label_batch(
            payloads, jobs=2, executor="process"
        )
        trace = Trace()
        with trace.scope():
            traced = LabelingEngine(cache_size=0).label_batch(
                payloads, jobs=2, executor="process"
            )
        assert [_canon(r) for r in traced] == [
            _canon(r) for r in plain
        ]
        # No worker implementation detail leaks into the responses.
        assert all("_obs_trace" not in r for r in traced)
        # Each item span carries the re-based worker tree with the phases.
        item_spans = [
            s for s in trace.root.iter_spans() if s.name.startswith("item[")
        ]
        assert len(item_spans) == 2
        for item in item_spans:
            worker = item.children[0]
            assert worker.name == "worker"
            assert worker.find("phase:combine_closure")

    def test_cached_and_traced_hits_stay_identical(self):
        engine = LabelingEngine(cache_size=8)
        cold = engine.label({"domain": "airline"})
        trace = Trace()
        with trace.scope():
            warm = engine.label({"domain": "airline"})
        assert warm["cached"] is True
        assert canonical_response(warm) == canonical_response(cold)
        lookup = trace.find("cache.lookup")[0]
        assert lookup.tags["outcome"] == "memory"


# ----------------------------------------------------------------------
# HTTP: request ids, GET /trace, the JSONL trace log.
# ----------------------------------------------------------------------


class TestTracingHTTP:
    @pytest.fixture(scope="class")
    def log_dir(self, tmp_path_factory):
        return tmp_path_factory.mktemp("trace-log")

    @pytest.fixture(scope="class")
    def server(self, log_dir):
        with LabelingServer(
            port=0, cache_size=16, tracing=True, trace_log=log_dir
        ) as running:
            yield running

    @pytest.fixture(scope="class")
    def client(self, server):
        return ServiceClient(server.url, timeout=60)

    def test_incoming_request_id_is_honored(self, client):
        response = client.label(domain="airline", request_id="my-id-1")
        assert response["ok"]
        assert response["request_id"] == "my-id-1"

    def test_request_id_generated_when_absent(self, client):
        response = client.label(domain="airline")
        assert len(response["request_id"]) == 32

    def test_error_payloads_carry_request_id(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.label(domain="atlantis", request_id="err-7")
        assert excinfo.value.status == 400
        assert excinfo.value.payload["request_id"] == "err-7"

    def test_batch_response_carries_request_id(self, client):
        response = client.batch([{"domain": "book"}], request_id="batch-1")
        assert response["request_id"] == "batch-1"
        assert response["results"][0]["ok"]

    def test_trace_endpoint_returns_the_served_trace(self, client):
        client.label(domain="job", request_id="traced-1")
        payload = client.trace("traced-1")
        assert payload["ok"]
        record = payload["trace"]
        assert record["request_id"] == "traced-1"
        assert record["meta"] == {"endpoint": "/label", "status": 200}
        names = [s.name for s in Span.from_dict(record["root"]).iter_spans()]
        for phase in PAPER_PHASES:
            assert phase in names

    def test_unknown_trace_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.trace("nope")
        assert excinfo.value.status == 404
        assert excinfo.value.payload["error_type"] == "not_found"

    def test_trace_log_is_written_and_crc_clean(self, client, server, log_dir):
        client.label(domain="auto", request_id="logged-1")
        records, corrupt = TraceLog.load(log_dir / "spans.jsonl")
        assert corrupt == 0
        mine = [r for r in records if r["request_id"] == "logged-1"]
        assert any(r["name"] == "phase:combine_closure" for r in mine)
        assert server.trace_log.stats()["traces"] >= 1

    def test_untraced_server_keeps_trace_endpoint_dark(self):
        with LabelingServer(port=0, cache_size=4) as server:
            client = ServiceClient(server.url, timeout=60)
            response = client.label(domain="book", request_id="dark-1")
            assert response["request_id"] == "dark-1"  # ids always flow
            with pytest.raises(ServiceError) as excinfo:
                client.trace("dark-1")
            assert excinfo.value.status == 404
            assert "disabled" in str(excinfo.value)


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    GOLDEN_TRACE.write_text(json.dumps(_airline_trace(), indent=2) + "\n")
    print(f"wrote {GOLDEN_TRACE}")


if __name__ == "__main__":
    if "--regenerate" in sys.argv:
        _regenerate()
    else:
        print(__doc__)
