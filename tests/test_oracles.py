"""Paper-invariant oracles: regression over the seed domains + negatives.

Positive direction: every seed-domain labeling (and every golden snapshot)
satisfies horizontal consistency, vertical generality and idempotence.
Negative direction: deliberately broken labelings — a tampered solution, a
generality-inverted tree, a repeated path label — are caught, so the
oracles are known to actually bite.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core.pipeline import label_corpus
from repro.datasets.registry import DOMAINS, load_domain
from repro.service.engine import LabelingEngine
from repro.testing.oracles import (
    OracleError,
    OracleReport,
    OracleViolation,
    canonical_response,
    check_horizontal_consistency,
    check_label_idempotence,
    check_tree_dict,
    check_vertical_generality,
    verify_labeling,
    wordnet_strict_hypernym,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
ALL_DOMAINS = sorted(DOMAINS)


@pytest.fixture(scope="module")
def labeled_domains(comparator):
    """Every seed domain labeled once; (root, result) per name."""
    labeled = {}
    for name in ALL_DOMAINS:
        dataset = load_domain(name, seed=0)
        labeled[name] = label_corpus(
            dataset.interfaces, dataset.mapping, comparator=comparator,
            domain=name,
        )
    return labeled


# ----------------------------------------------------------------------
# The strict-generality relation itself.
# ----------------------------------------------------------------------


class TestWordnetStrictHypernym:
    def test_real_hypernym_edge_qualifies(self, comparator):
        assert wordnet_strict_hypernym(comparator, "Location", "City")
        assert not wordnet_strict_hypernym(comparator, "City", "Location")

    def test_token_subset_alone_does_not_qualify(self, comparator):
        # Definition 1's token-count rule would make "Availability" a
        # hypernym of "Availability Options"; the strict oracle relation
        # requires a genuine lexicon edge and must reject this.
        assert not wordnet_strict_hypernym(
            comparator, "Availability", "Availability Options"
        )

    def test_hypernym_edge_with_extra_tokens_qualifies(self, comparator):
        # person > adult via the lexicon, and every token of the shorter
        # label relates to one of the longer's.
        assert wordnet_strict_hypernym(comparator, "Person", "Adult")

    def test_conjunctions_are_excluded(self, comparator):
        assert not wordnet_strict_hypernym(comparator, "Location", "City and State")


# ----------------------------------------------------------------------
# Positive regression: all seed domains satisfy every oracle.
# ----------------------------------------------------------------------


class TestSeedDomainInvariants:
    @pytest.mark.parametrize("name", ALL_DOMAINS)
    def test_verify_labeling_passes(self, name, labeled_domains, comparator):
        root, result = labeled_domains[name]
        report = verify_labeling(root, result, comparator)
        assert isinstance(report, OracleReport)
        assert report.checks > 0
        assert report.ok, report.summary()

    @pytest.mark.parametrize("name", ALL_DOMAINS)
    def test_horizontal_consistency(self, name, labeled_domains, comparator):
        __, result = labeled_domains[name]
        assert check_horizontal_consistency(result, comparator) == []

    @pytest.mark.parametrize("name", ALL_DOMAINS)
    def test_vertical_generality(self, name, labeled_domains, comparator):
        root, __ = labeled_domains[name]
        assert check_vertical_generality(root, comparator) == []

    @pytest.mark.parametrize("name", ALL_DOMAINS)
    def test_engine_strict_mode_accepts(self, name, comparator):
        engine = LabelingEngine(cache_size=0, verify="strict",
                                comparator=comparator)
        response = engine.label({"domain": name, "seed": 0})
        assert response["ok"]
        oracle = engine.stats()["resilience"]["oracle"]
        assert oracle["checks"] > 0 and oracle["failures"] == 0


class TestGoldenTrees:
    @pytest.mark.parametrize("name", ALL_DOMAINS)
    def test_golden_tree_satisfies_vertical_oracle(self, name, comparator):
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert check_tree_dict(golden["tree"], comparator) == []

    def test_rejects_non_tree_input(self, comparator):
        with pytest.raises(ValueError, match="serialized schema node"):
            check_tree_dict({"classification": "meaningful"}, comparator)


class TestIdempotence:
    @pytest.mark.parametrize("name", ["airline", "hotels"])
    def test_seed_domain_idempotent(self, name, comparator):
        def factory(cache_size):
            return LabelingEngine(cache_size=cache_size, comparator=comparator)

        payload = {"domain": name, "seed": 0}
        assert check_label_idempotence(payload, engine_factory=factory) == []

    def test_canonical_response_strips_volatiles(self):
        response = {
            "ok": True,
            "cached": True,
            "resilience": {"attempts": 2, "faults": []},
            "stats": {"leaves": 4, "elapsed_ms": 12.5},
        }
        clean = canonical_response(response)
        assert clean == {"ok": True, "stats": {"leaves": 4}}
        # The original is untouched (deep copy, not mutation).
        assert response["stats"]["elapsed_ms"] == 12.5


# ----------------------------------------------------------------------
# Negative direction: broken labelings are caught.
# ----------------------------------------------------------------------


def oracles_of(violations: list[OracleViolation]) -> set[str]:
    return {v.oracle for v in violations}


class TestOraclesCatchBreakage:
    def test_tampered_field_labels_breaks_agreement(self, comparator):
        dataset = load_domain("airline", seed=0)
        __, result = label_corpus(
            dataset.interfaces, dataset.mapping, comparator=comparator
        )
        cluster = next(c for c, l in result.field_labels.items() if l)
        result.field_labels[cluster] = "Tampered Label"
        violations = check_horizontal_consistency(result, comparator)
        assert "horizontal.agreement" in oracles_of(violations)

    def test_tampered_solution_breaks_provenance(self, comparator):
        dataset = load_domain("airline", seed=0)
        __, result = label_corpus(
            dataset.interfaces, dataset.mapping, comparator=comparator
        )
        name, solution = next(iter(result.chosen_solutions.items()))
        cluster = next(c for c, l in solution.labels.items() if l)
        solution.labels[cluster] = "Label From Nowhere"
        violations = check_horizontal_consistency(result, comparator)
        assert "horizontal.provenance" in oracles_of(violations)

    def test_erased_label_breaks_coverage(self, comparator):
        dataset = load_domain("airline", seed=0)
        __, result = label_corpus(
            dataset.interfaces, dataset.mapping, comparator=comparator
        )
        # Erase a label from a consistent group's solution *and* the flat
        # map, so only the coverage oracle (not agreement) can object.
        name = next(
            n for n, gr in result.group_results.items()
            if gr.consistent and any(
                result.chosen_solutions[n].labels.get(c)
                for c in gr.group.clusters
            )
        )
        solution = result.chosen_solutions[name]
        cluster = next(c for c, l in solution.labels.items() if l)
        solution.labels[cluster] = None
        result.field_labels[cluster] = None
        violations = check_horizontal_consistency(result, comparator)
        assert "horizontal.coverage" in oracles_of(violations)

    def test_generality_inversion_in_tree_dict(self, comparator):
        # "location" is a genuine lexicon hypernym of "city": a leaf
        # labeled Location under an internal node labeled City inverts
        # Definition 5 and must be flagged.
        tree = {
            "name": "root",
            "label": None,
            "children": [
                {
                    "name": "g_geo",
                    "label": "City",
                    "children": [
                        {"name": "f_loc", "label": "Location", "children": []},
                    ],
                },
            ],
        }
        violations = check_tree_dict(tree, comparator)
        assert oracles_of(violations) == {"vertical.generality"}

    def test_repeated_path_label_in_tree_dict(self, comparator):
        tree = {
            "name": "root",
            "label": None,
            "children": [
                {
                    "name": "g_where",
                    "label": "Destination",
                    "children": [
                        {"name": "f_dest", "label": "Destination", "children": []},
                    ],
                },
            ],
        }
        violations = check_tree_dict(tree, comparator)
        assert oracles_of(violations) == {"vertical.path"}

    def test_generality_inversion_on_real_nodes(self, comparator):
        from .conftest import build_group_corpus

        # Rows engineered so the oracle sees an inversion when we force
        # the labels by hand on the merged tree.
        interfaces, mapping = build_group_corpus(
            {
                "a": {"c_city": "City", "c_state": "State"},
                "b": {"c_city": "City", "c_state": "State"},
            },
            ["c_city", "c_state"],
        )
        root, result = label_corpus(interfaces, mapping, comparator=comparator)
        internal = [n for n in root.internal_nodes() if n is not root]
        assert internal, "two-cluster group should merge to an internal node"
        target = internal[0]
        leaf = next(n for n in target.walk() if n.is_leaf)
        target.label = "City"
        leaf.label = "Location"
        violations = check_vertical_generality(root, comparator)
        assert "vertical.generality" in oracles_of(violations)

    def test_report_raise_if_failed(self):
        report = OracleReport(
            checks=3,
            violations=[OracleViolation("vertical.path", "x", "boom")],
        )
        assert not report.ok
        with pytest.raises(OracleError) as excinfo:
            report.raise_if_failed()
        assert "vertical.path" in str(excinfo.value)
        assert excinfo.value.report is report
        OracleReport(checks=3).raise_if_failed()  # ok: no raise
