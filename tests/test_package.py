"""Public API surface: the top-level package exports what the README uses."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.lexicon",
            "repro.schema",
            "repro.merge",
            "repro.matching",
            "repro.core",
            "repro.datasets",
            "repro.survey",
            "repro.experiment",
            "repro.html",
            "repro.extensions",
            "repro.cli",
            "repro.report",
            "repro.bench",
            "repro.service",
        ],
        ids=lambda m: m,
    )
    def test_subpackages_import_cleanly(self, module):
        imported = importlib.import_module(module)
        assert imported is not None

    def test_subpackage_alls_resolve(self):
        for module_name in (
            "repro.lexicon", "repro.schema", "repro.core",
            "repro.datasets", "repro.survey", "repro.html",
            "repro.extensions", "repro.matching", "repro.merge",
            "repro.service",
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", ()):
                assert hasattr(module, name), (module_name, name)

    def test_readme_quickstart_runs(self):
        """The exact README snippet."""
        from repro import run_domain

        run = run_domain("job", seed=0, respondent_count=1)
        assert run.labeling.root.pretty()
        assert 0 <= run.fld_acc <= 1


class TestDocstrings:
    def test_every_public_module_documented(self):
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert missing == []

    def test_public_core_callables_documented(self):
        import inspect

        from repro import core

        undocumented = []
        for name in core.__all__:
            obj = getattr(core, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(name)
        assert undocumented == []
