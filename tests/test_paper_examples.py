"""Integration tests reproducing the paper's worked examples (Tables 1-5)."""

from __future__ import annotations

import pytest

from repro.core.consistency import ConsistencyLevel
from repro.core.group_relation import GroupRelation
from repro.core.internal_nodes import CandidateFinder
from repro.core.solutions import name_group
from repro.schema.clusters import Mapping
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode

from .conftest import build_group_corpus, regular_group


class TestTable1:
    """Table 1 + Figure 2: the airline clusters with the 1:m Passengers."""

    def _corpus(self):
        mapping = Mapping()
        interfaces = []

        def schema(name, fields, passengers=False):
            nodes = []
            for cluster, label in fields:
                node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
                nodes.append(node)
                mapping.assign(cluster, name, node)
            if passengers:
                node = make_field("Passengers", name=f"{name}:passengers")
                for cluster in ("c_senior", "c_adult", "c_child", "c_infant"):
                    mapping.assign(cluster, name, node)
                nodes.append(node)
            root = SchemaNode(
                None, [make_group(None, nodes, name=f"{name}:g")], name=f"{name}:r"
            )
            interfaces.append(QueryInterface(name, root))

        schema("s1", [
            ("c_depart", "Departing from"), ("c_dest", "Going to"),
            ("c_senior", "Seniors"), ("c_adult", "Adults"),
            ("c_child", "Children"),
        ])
        schema("s2", [
            ("c_depart", "From"), ("c_dest", "To"),
            ("c_adult", "Adults"), ("c_child", "Children"),
            ("c_infant", "Infants"),
        ])
        schema("s3", [
            ("c_depart", "Leaving from"), ("c_dest", "Going to"),
        ], passengers=True)
        return interfaces, mapping

    def test_clusters_before_reduction(self):
        interfaces, mapping = self._corpus()
        # Passengers sits in all four passenger clusters (the 1:m row).
        passenger_node = mapping["c_adult"].members["s3"]
        assert mapping.clusters_of("s3", passenger_node) == [
            "c_senior", "c_adult", "c_child", "c_infant"
        ]

    def test_reduction_removes_passengers_from_clusters(self):
        interfaces, mapping = self._corpus()
        records = mapping.expand_one_to_many(interfaces)
        assert [r.field_label for r in records] == ["Passengers"]
        # "Passengers" becomes an internal node, candidate material for
        # internal labels, and leaves every cluster.
        for cluster_name in ("c_senior", "c_adult", "c_child", "c_infant"):
            member = mapping[cluster_name].members["s3"]
            assert member.is_leaf and not member.is_labeled
        s3 = interfaces[2]
        expanded = s3.root.find_by_name("s3:passengers")
        assert expanded.is_internal and expanded.label == "Passengers"
        # ... and the expanded node is visible to the candidate machinery.
        finder = CandidateFinder(interfaces, mapping, __import__(
            "repro.core.semantics", fromlist=["SemanticComparator"]
        ).SemanticComparator())
        assert any(sn.label == "Passengers" for sn in finder.source_nodes)


class TestTable2:
    def test_consistent_solution(self, comparator, table2_corpus):
        __, mapping, group = table2_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert result.consistent and result.level is ConsistencyLevel.STRING
        assert list(result.best.labels.values()) == [
            "Seniors", "Adults", "Children", "Infants"
        ]


class TestTable3:
    def test_partially_consistent_solution(self, comparator, table3_corpus):
        __, mapping, group = table3_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert not result.consistent
        assert list(result.solutions[0].labels.values()) == [
            "State", "City", "Zip Code", "Distance"
        ]


class TestTable4:
    def test_equality_level_consistency(self, comparator, table4_corpus):
        """(null, Class of Ticket, Preferred Airline) and (Max. Number of
        Stops, null, Airline Preference) are equality-level consistent."""
        from repro.core.consistency import tuples_consistent

        __, mapping, group = table4_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        alldest = relation.tuple_of("alldest")
        cheap = relation.tuple_of("cheap")
        assert not tuples_consistent(
            alldest, cheap, ConsistencyLevel.STRING, comparator
        )
        assert tuples_consistent(
            alldest, cheap, ConsistencyLevel.EQUALITY, comparator
        )

    def test_group_resolves(self, comparator, table4_corpus):
        __, mapping, group = table4_corpus
        relation = GroupRelation.from_mapping(group, mapping)
        result = name_group(relation, comparator)
        assert result.consistent


class TestTable5:
    """Vertical consistency in the auto domain (Table 5 + Figure 6)."""

    def _corpus(self):
        mapping = Mapping()
        interfaces = []

        def schema(name, year_fields, car_fields, super_label=None,
                   year_label=None, car_label=None):
            def group_of(fields, label, tag):
                nodes = []
                for cluster, field_label in fields:
                    node = make_field(
                        field_label, cluster=cluster, name=f"{name}:{cluster}"
                    )
                    nodes.append(node)
                    mapping.assign(cluster, name, node)
                return make_group(label, nodes, name=f"{name}:{tag}")

            sections = []
            if year_fields:
                sections.append(group_of(year_fields, year_label, "year"))
            if car_fields:
                sections.append(group_of(car_fields, car_label, "car"))
            if super_label and len(sections) > 1:
                sections = [make_group(super_label, sections, name=f"{name}:sup")]
            interfaces.append(
                QueryInterface(
                    name, SchemaNode(None, sections, name=f"{name}:r")
                )
            )

        schema("i1", [("c_from", "Min"), ("c_to", "Max")],
               [("c_make", "Brand"), ("c_model", "Model")],
               year_label="Year Range")
        schema("i2", [("c_from", "Year"), ("c_to", "To Year")],
               [("c_make", "Make"), ("c_model", "Model")],
               super_label="Car Information")
        schema("i3", [("c_from", "From"), ("c_to", "To")],
               [("c_make", "Make"), ("c_model", "Model"),
                ("c_keyword", "Keyword")],
               year_label="Year Range", car_label="Make/Model")
        return interfaces, mapping

    def test_car_information_is_candidate_for_lca(self, comparator):
        interfaces, mapping = self._corpus()
        finder = CandidateFinder(interfaces, mapping, comparator)
        leaves = [
            SchemaNode(None, cluster=c, name=f"l:{c}")
            for c in ("c_from", "c_to", "c_make", "c_model", "c_keyword")
        ]
        year = SchemaNode(None, leaves[:2], name="int:year")
        car = SchemaNode(None, leaves[2:], name="int:car")
        lca = SchemaNode(None, [year, car], name="int:lca")
        SchemaNode(None, [lca], name="int:root")
        candidates = finder.candidates_for(lca)
        assert "Car Information" in [c.text for c in candidates]

    def test_year_range_is_candidate_for_year_group(self, comparator):
        interfaces, mapping = self._corpus()
        finder = CandidateFinder(interfaces, mapping, comparator)
        leaves = [
            SchemaNode(None, cluster=c, name=f"l:{c}") for c in ("c_from", "c_to")
        ]
        year = SchemaNode(None, leaves, name="int:year")
        SchemaNode(None, [year], name="int:root")
        candidates = finder.candidates_for(year)
        assert "Year Range" in [c.text for c in candidates]
