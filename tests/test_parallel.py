"""The process-parallel batch backend: equivalence, isolation, fallback.

The contract under test: ``executor="process"`` is a pure performance
knob.  Same responses as the thread backend (modulo the timing field),
same error classification, same stdout for ``repro table6`` byte for
byte — and a transparent fallback to threads whenever the process pool
cannot apply (``jobs <= 1`` or an active fault plan).
"""

from __future__ import annotations

import json
import logging
import multiprocessing
import os

import pytest

from repro.cli import build_parser, main
from repro.experiment import run_all_domains
from repro.resilience import FaultPlan
from repro.service.engine import LabelingEngine, execute_batch
from repro.service.parallel import (
    EXECUTORS,
    PayloadTask,
    default_jobs,
    normalize_jobs,
    validate_executor,
)


# Tasks for the raw executor tests must be importable to survive pickling.
class _Square:
    def __init__(self, n):
        self.n = n

    def __call__(self):
        return self.n * self.n


class _Boom:
    def __call__(self):
        raise ValueError("boom")


def _strip_timing(response: dict) -> dict:
    clean = json.loads(json.dumps(response))
    clean.get("stats", {}).pop("elapsed_ms", None)
    clean.pop("elapsed_ms", None)
    return clean


# ----------------------------------------------------------------------
# The shared --jobs default + executor validation.
# ----------------------------------------------------------------------


def test_default_jobs_is_cpu_derived_and_bounded():
    jobs = default_jobs()
    assert 1 <= jobs <= 8
    assert jobs == default_jobs()  # deterministic


def test_cli_jobs_defaults_are_unified():
    parser = build_parser()
    batch = parser.parse_args(["batch", "x.json"])
    serve = parser.parse_args(["serve"])
    chaos = parser.parse_args(["chaos"])
    assert batch.jobs == serve.jobs == chaos.jobs == default_jobs()
    # table6 stays sequential by default: its default output is the
    # byte-for-byte reference.
    assert parser.parse_args(["table6"]).jobs == 1


def test_cli_executor_flags_exist():
    parser = build_parser()
    for argv in (
        ["table6", "--executor", "process"],
        ["batch", "x.json", "--executor", "process"],
        ["serve", "--executor", "process"],
    ):
        assert parser.parse_args(argv).executor == "process"
        assert parser.parse_args([argv[0], *argv[1:-2]]).executor == "thread"


def test_validate_executor():
    for name in EXECUTORS:
        assert validate_executor(name) == name
    with pytest.raises(ValueError, match="executor"):
        validate_executor("fiber")
    with pytest.raises(ValueError, match="executor"):
        LabelingEngine(executor="fiber")


# ----------------------------------------------------------------------
# execute_batch with the process executor.
# ----------------------------------------------------------------------


def test_execute_batch_process_preserves_order_and_isolation():
    tasks = [_Square(0), _Boom(), _Square(2), _Square(3), _Boom(), _Square(5)]
    outcomes = execute_batch(tasks, jobs=2, executor="process")
    assert [o.ok for o in outcomes] == [True, False, True, True, False, True]
    assert [o.value for o in outcomes if o.ok] == [0, 4, 9, 25]
    for failed in (outcomes[1], outcomes[4]):
        assert failed.error_type == "internal"
        assert "boom" in failed.error
        assert failed.exception is None  # never shipped across the pipe


def test_execute_batch_process_chunksize_one():
    outcomes = execute_batch(
        [_Square(n) for n in range(7)], jobs=3, executor="process", chunksize=1
    )
    assert [o.value for o in outcomes] == [n * n for n in range(7)]


def test_execute_batch_rejects_unknown_executor():
    with pytest.raises(ValueError, match="executor"):
        execute_batch([_Square(1)], jobs=2, executor="greenlet")


# ----------------------------------------------------------------------
# Engine: process backend == thread backend.
# ----------------------------------------------------------------------


PAYLOADS = [
    {"domain": "airline", "seed": 0},
    {"not-a": "request"},
    {"domain": "book", "seed": 0},
    {"domain": "airline", "seed": 0},  # duplicate: served from cache
]


def test_label_batch_process_matches_thread():
    thread_engine = LabelingEngine(breaker=None)
    process_engine = LabelingEngine(breaker=None)
    thread_results = thread_engine.label_batch(PAYLOADS, jobs=1)
    process_results = process_engine.label_batch(
        PAYLOADS, jobs=2, executor="process"
    )
    assert len(thread_results) == len(process_results)
    for expected, got in zip(thread_results, process_results):
        assert _strip_timing(expected) == _strip_timing(got)
    assert process_results[1]["error_type"] == "invalid_request"
    assert process_results[3]["cached"] is True
    assert thread_engine.stats()["requests"] == process_engine.stats()["requests"]


def test_label_batch_process_default_executor_knob():
    engine = LabelingEngine(breaker=None, jobs=2, executor="process")
    assert engine.stats()["default_executor"] == "process"
    results = engine.label_batch([{"domain": "job", "seed": 0}] * 2)
    assert results[0]["ok"] and results[1]["cached"] is True


def test_payload_task_is_picklable():
    import pickle

    task = pickle.loads(pickle.dumps(PayloadTask({"domain": "job", "seed": 0})))
    assert task.payload == {"domain": "job", "seed": 0}


# ----------------------------------------------------------------------
# Fallback to threads (jobs<=1, fault plan) + shared-comparator safety.
# ----------------------------------------------------------------------


def test_process_backend_falls_back_on_single_job(monkeypatch):
    engine = LabelingEngine(breaker=None)
    monkeypatch.setattr(
        engine,
        "_label_batch_process",
        lambda *a, **k: pytest.fail("process backend used with jobs=1"),
    )
    results = engine.label_batch(
        [{"domain": "job", "seed": 0}], jobs=1, executor="process"
    )
    assert results[0]["ok"]


def test_process_backend_falls_back_under_fault_plan(monkeypatch):
    """With a fault plan the batch must run on threads — and a comparator
    shared across those threads must keep its consistency-pair cache exact.

    This is the scenario the pair cache sees in production: the chaos
    harness drives ``executor="process"`` batches that silently degrade to
    the thread backend, where every worker thread shares one comparator.
    """
    from repro.core.semantics import SemanticComparator

    comparator = SemanticComparator()
    plan = FaultPlan((), seed=0)  # active but empty: never fires
    engine = LabelingEngine(
        breaker=None, fault_plan=plan, comparator=comparator
    )
    monkeypatch.setattr(
        engine,
        "_label_batch_process",
        lambda *a, **k: pytest.fail("process backend used under a fault plan"),
    )
    payloads = [
        {"domain": name, "seed": 0} for name in ("airline", "auto", "book", "job")
    ]
    results = engine.label_batch(payloads, jobs=4, executor="process")
    assert all(r["ok"] for r in results)

    # Same responses as a fresh sequential engine (the plan never fired).
    reference = LabelingEngine(breaker=None).label_batch(payloads, jobs=1)
    for expected, got in zip(reference, results):
        assert _strip_timing(expected) == _strip_timing(got)

    # The shared comparator's pair cache stayed coherent under the thread
    # fan-out: counters add up and every group it memoised is consistent
    # with a fresh comparator's answer.
    pairs = comparator.cache_stats()["consistency_pairs"]
    assert pairs["hits"] + pairs["misses"] > 0
    assert pairs["hit_rate"] == round(
        pairs["hits"] / (pairs["hits"] + pairs["misses"]), 4
    )


# ----------------------------------------------------------------------
# run_all_domains + table6: byte identity across executors.
# ----------------------------------------------------------------------


def test_run_all_domains_rejects_bad_executor():
    with pytest.raises(ValueError, match="executor"):
        run_all_domains(jobs=2, executor="fiber")


def test_table6_output_byte_identical_across_executors(capsys):
    argv = ["table6", "--seed", "0", "--respondents", "3"]
    assert main(argv + ["--jobs", "1"]) == 0
    sequential = capsys.readouterr().out
    assert main(argv + ["--jobs", "2", "--executor", "process"]) == 0
    process = capsys.readouterr().out
    assert process == sequential
    assert main(argv + ["--jobs", "2", "--executor", "thread"]) == 0
    threaded = capsys.readouterr().out
    assert threaded == sequential


# ----------------------------------------------------------------------
# normalize_jobs: every --jobs entry point must survive cpu_count()=None,
# jobs=0, and reject negatives with a clear error.
# ----------------------------------------------------------------------


class TestNormalizeJobs:
    def test_none_uses_cpu_derived_default(self):
        assert normalize_jobs(None) == default_jobs()

    def test_none_cpu_count_still_yields_at_least_one(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert normalize_jobs(None) >= 1

    def test_zero_normalizes_to_one(self):
        assert normalize_jobs(0) == 1

    def test_positive_passes_through(self):
        assert normalize_jobs(3) == 3

    def test_numeric_string_is_coerced(self):
        assert normalize_jobs("4") == 4

    def test_negative_is_a_clear_error(self):
        with pytest.raises(ValueError, match="jobs must be >= 0, got -2"):
            normalize_jobs(-2)

    def test_garbage_is_a_clear_error(self):
        with pytest.raises(ValueError, match="jobs must be an integer"):
            normalize_jobs("many")

    def test_engine_normalizes_constructor_jobs(self):
        assert LabelingEngine(cache_size=0, jobs=0).default_jobs == 1
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            LabelingEngine(cache_size=0, jobs=-1)

    def test_engine_batch_normalizes_explicit_jobs(self):
        engine = LabelingEngine(cache_size=0)
        responses = engine.label_batch([{"domain": "job", "seed": 0}], jobs=0)
        assert [r["ok"] for r in responses] == [True]

    def test_execute_batch_normalizes_jobs(self):
        results = execute_batch([_Square(3)], jobs=0)
        assert results[0].value == 9
        with pytest.raises(ValueError, match="jobs must be >= 0"):
            execute_batch([_Square(3)], jobs=-4)

    def test_cli_jobs_flag_rejects_negatives(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["table6", "--jobs", "-2"])
        assert excinfo.value.code == 2
        assert "jobs must be >= 0" in capsys.readouterr().err

    def test_cli_jobs_flag_accepts_zero(self):
        args = build_parser().parse_args(["table6", "--jobs", "0"])
        assert args.jobs == 1


# ----------------------------------------------------------------------
# The process backend under the spawn start method.
# ----------------------------------------------------------------------


class TestSpawnStartMethod:
    def test_execute_batch_under_spawn_context(self):
        # spawn re-imports the worker module from scratch: the
        # initializer and tasks must not capture unpicklable state.
        ctx = multiprocessing.get_context("spawn")
        results = execute_batch(
            [_Square(n) for n in range(4)],
            jobs=2,
            executor="process",
            mp_context=ctx,
        )
        assert [r.value for r in results] == [0, 1, 4, 9]
        assert all(r.error is None for r in results)

    def test_payload_task_under_spawn_matches_inline(self):
        ctx = multiprocessing.get_context("spawn")
        payload = {"domain": "job", "seed": 0}
        spawned = execute_batch(
            [PayloadTask(payload)], jobs=2, executor="process", mp_context=ctx
        )[0]
        assert spawned.error is None
        inline = LabelingEngine(cache_size=0).label(payload)
        assert _strip_timing(spawned.value) == _strip_timing(inline)

    def test_broken_pool_falls_back_to_threads_with_warning(self, caplog):
        # A worker bootstrap that dies on import must not take the batch
        # down with it: execute_batch logs and reruns on threads.
        def exploding_initializer():
            os._exit(13)

        with caplog.at_level(logging.WARNING, logger="repro.service.engine"):
            results = execute_batch(
                [_Square(n) for n in range(3)],
                jobs=2,
                executor="process",
                initializer=exploding_initializer,
            )
        assert [r.value for r in results] == [0, 1, 4]
        assert any(
            "falling back to thread backend" in record.message
            for record in caplog.records
        )
