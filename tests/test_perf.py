"""The memoization layer: counters, invalidation, and cached == uncached.

Covers the perf instrumentation primitives (:mod:`repro.perf`), the
lexicon-mutation invalidation discipline that every cache in the hierarchy
follows, the correctness contract of the relation/group memos (cached
answers must be exactly the uncached ones), and the comparator sharing the
labeling engine does across requests with the same lexicon overlay.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.consistency import (
    ConsistencyLevel,
    ConsistencyPairCache,
    combine_closure,
    find_partitions,
)
from repro.core.group_relation import GroupRelation
from repro.core.label import LabelAnalyzer
from repro.core.semantics import LabelRelation, SemanticComparator
from repro.core.solutions import name_group
from repro.datasets.registry import load_domain
from repro.lexicon.data import build_default_wordnet
from repro.perf import CacheCounter, PerfRegistry, Timer, aggregate_stats
from repro.schema.groups import partition_clusters
from repro.service.engine import LabelingEngine, LabelingRequest


# ----------------------------------------------------------------------
# Instrumentation primitives.
# ----------------------------------------------------------------------


def test_cache_counter_rates_and_reset():
    counter = CacheCounter("x")
    assert counter.hit_rate == 0.0  # no lookups yet
    counter.hit()
    counter.hit()
    counter.miss()
    counter.evict(5)
    assert counter.lookups == 3
    assert counter.hit_rate == pytest.approx(2 / 3)
    snap = counter.snapshot()
    assert snap == {
        "hits": 2, "misses": 1, "evictions": 5, "hit_rate": round(2 / 3, 4),
    }
    counter.reset()
    assert counter.snapshot()["hits"] == 0


def test_timer_accumulates():
    timer = Timer("stage")
    timer.add(0.25)
    timer.add(0.75)
    snap = timer.snapshot()
    assert snap["calls"] == 2
    assert snap["total_ms"] == pytest.approx(1000.0)
    assert snap["mean_ms"] == pytest.approx(500.0)
    assert snap["max_ms"] == pytest.approx(750.0)
    with timer.time():
        pass
    assert timer.calls == 3


def test_registry_shares_by_name():
    registry = PerfRegistry()
    assert registry.counter("a") is registry.counter("a")
    assert registry.timer("t") is registry.timer("t")
    registry.counter("a").hit()
    registry.reset()
    snap = registry.snapshot()
    assert snap["counters"]["a"]["hits"] == 0
    assert "t" in snap["timers"]


def test_cache_counter_exact_under_concurrent_hammer():
    """8 threads hammering one counter must lose no increment.

    The counters aggregate across thread-pool batch workers (and the
    process backend's thread fallback); exact totals are the contract.
    """
    import threading

    counter = CacheCounter("hammered")
    rounds = 2500
    workers = 8

    def hammer():
        for __ in range(rounds):
            counter.hit()
            counter.miss()
            counter.evict(2)

    threads = [threading.Thread(target=hammer) for __ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snap = counter.snapshot()
    assert snap["hits"] == workers * rounds
    assert snap["misses"] == workers * rounds
    assert snap["evictions"] == 2 * workers * rounds
    assert snap["hit_rate"] == 0.5


def test_perf_registry_exact_under_concurrent_hammer():
    """Shared registry: counter AND timer totals stay exact from 8 threads."""
    import threading

    registry = PerfRegistry()
    rounds = 2000
    workers = 8

    def hammer():
        counter = registry.counter("shared")
        timer = registry.timer("shared")
        for __ in range(rounds):
            counter.hit()
            timer.add(0.001)

    threads = [threading.Thread(target=hammer) for __ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snap = registry.snapshot()
    assert snap["counters"]["shared"]["hits"] == workers * rounds
    assert snap["timers"]["shared"]["calls"] == workers * rounds
    assert snap["timers"]["shared"]["total_ms"] == pytest.approx(
        workers * rounds * 1.0, rel=1e-6
    )


def test_cache_counter_pickles_without_its_lock():
    import pickle

    counter = CacheCounter("picklable")
    counter.hit()
    counter.evict(3)
    clone = pickle.loads(pickle.dumps(counter))
    assert clone.snapshot() == counter.snapshot()
    clone.hit()  # the restored lock works
    assert clone.hits == counter.hits + 1


def test_aggregate_stats_recomputes_hit_rate():
    merged = aggregate_stats([
        {"labels": {"hits": 9, "misses": 1, "hit_rate": 0.9}},
        {"labels": {"hits": 0, "misses": 10, "hit_rate": 0.0}},
    ])
    assert merged["labels"]["hits"] == 9
    assert merged["labels"]["misses"] == 11
    # Recomputed from the sums, not summed (0.9 + 0.0 would be wrong).
    assert merged["labels"]["hit_rate"] == pytest.approx(9 / 20)


# ----------------------------------------------------------------------
# Lexicon mutation invalidates every memo (satellite 1).
# ----------------------------------------------------------------------


def test_wordnet_mutation_invalidates_relation_memos():
    wn = build_default_wordnet()
    # Prime the memo with a negative answer on fresh vocabulary.
    assert not wn.are_synonyms("blarg", "fnord")
    assert not wn.is_hypernym("blarg", "fnord")
    version = wn.version
    wn.add_synset(["blarg", "fnord"])
    assert wn.version > version
    # A stale memo would keep answering False here.
    assert wn.are_synonyms("blarg", "fnord")
    wn.add_hypernym("blarg", "qux")
    assert wn.is_hypernym("blarg", "qux")


def test_wordnet_mutation_invalidates_base_form_memo():
    wn = build_default_wordnet()
    assert wn.lemma_base("blargs") == "blargs"  # unknown: morphy leaves it
    wn.add_synset(["blarg"])
    assert wn.lemma_base("blargs") == "blarg"


def test_comparator_observes_mid_run_lexicon_mutation():
    wn = build_default_wordnet()
    comparator = SemanticComparator(LabelAnalyzer(wn))
    # Prime every layer: analyzer cache, relation cache, predicate memos.
    assert comparator.relation_between("Blarg", "Fnord") is LabelRelation.NONE
    assert not comparator.synonym("Blarg", "Fnord")
    wn.add_synset(["blarg", "fnord"])
    assert comparator.relation_between("Blarg", "Fnord") is LabelRelation.SYNONYM
    assert comparator.synonym("Blarg", "Fnord")


def test_analyzer_reinterns_after_mutation():
    wn = build_default_wordnet()
    analyzer = LabelAnalyzer(wn)
    before = analyzer.label("Blarg")
    wn.add_synset(["blarg"])
    after = analyzer.label("Blarg")
    # Fresh analysis and a fresh intern key — stale relation-cache entries
    # keyed on the old id can never be consulted for the new label.
    assert after.key != before.key


# ----------------------------------------------------------------------
# Label interning.
# ----------------------------------------------------------------------


def test_labels_intern_on_canonical_identity():
    analyzer = LabelAnalyzer(build_default_wordnet())
    a = analyzer.label("Day/Time")
    b = analyzer.label("Day & Time")
    # Same display form and conjunction flag: one intern key, shared tokens.
    assert a.key == b.key
    assert a.tokens is b.tokens
    c = analyzer.label("Day Time")  # no conjunction marker: different class
    assert c.key != a.key


def test_interned_labels_are_repeat_cache_hits():
    analyzer = LabelAnalyzer(build_default_wordnet())
    analyzer.label("Departure City")
    hits_before = analyzer.counter.hits
    analyzer.label("Departure City")
    assert analyzer.counter.hits == hits_before + 1


# ----------------------------------------------------------------------
# Cached relation_between == uncached (satellite 3, property-style).
# ----------------------------------------------------------------------


def _corpus_labels(domain: str, seed: int) -> list[str]:
    dataset = load_domain(domain, seed=seed)
    texts: list[str] = []
    for cluster in dataset.mapping.clusters:
        texts.extend(cluster.labels())
    return sorted(set(texts))


@pytest.mark.parametrize("domain,seed", [("airline", 0), ("hotels", 1), ("auto", 2)])
def test_cached_relation_between_matches_uncached(domain, seed):
    texts = _corpus_labels(domain, seed)
    cached = SemanticComparator()
    reference = SemanticComparator()  # its relation-level cache stays unused
    rng = random.Random(seed)
    pairs = [
        (rng.choice(texts), rng.choice(texts)) for __ in range(300)
    ]
    for a, b in pairs:
        expected = reference._relation_uncached(a, b)
        assert cached.relation_between(a, b) is expected
        # Second lookup is the cache hit — and the reverse direction often a
        # derived entry; both must still agree with the ladder.
        assert cached.relation_between(a, b) is expected
        assert cached.relation_between(b, a) is reference._relation_uncached(b, a)
    assert cached.relation_counter.hits > 0


def test_derived_predicates_match_relation_ladder():
    texts = _corpus_labels("job", 0)
    comparator = SemanticComparator()
    rng = random.Random(7)
    for __ in range(200):
        a, b = rng.choice(texts), rng.choice(texts)
        rel = comparator.relation_between(a, b)
        assert comparator.similar(a, b) == (rel >= LabelRelation.SYNONYM)
        assert comparator.at_least_as_general(a, b) == (
            rel >= LabelRelation.HYPERNYM
        )


# ----------------------------------------------------------------------
# combine_closure / find_partitions with the pair cache on and off.
# ----------------------------------------------------------------------


def _group_relations(domain: str, seed: int) -> list[GroupRelation]:
    dataset = load_domain(domain, seed=seed)
    dataset.prepare()
    partition = partition_clusters(dataset.integrated())
    groups = list(partition.regular)
    if partition.root_group is not None:
        groups.append(partition.root_group)
    return [GroupRelation.from_mapping(g, dataset.mapping) for g in groups]


@pytest.mark.parametrize("domain", ["airline", "hotels", "carrental"])
def test_pair_cache_does_not_change_closure_or_partitions(domain):
    comparator = SemanticComparator()
    lookups = CacheCounter("pairs")
    for relation in _group_relations(domain, seed=0):
        for level in ConsistencyLevel:
            cache = ConsistencyPairCache(counter=lookups)
            plain = combine_closure(relation.tuples, level, comparator)
            memoed = combine_closure(
                relation.tuples, level, comparator, cache=cache
            )
            assert [t.key() for t in plain] == [t.key() for t in memoed]
            assert [t.interface for t in plain] == [t.interface for t in memoed]

            parts_plain = find_partitions(relation, level, comparator)
            parts_memo = find_partitions(relation, level, comparator, cache=cache)
            assert [sorted(t.interface for t in p.tuples) for p in parts_plain] \
                == [sorted(t.interface for t in p.tuples) for p in parts_memo]
    assert lookups.lookups > 0


# ----------------------------------------------------------------------
# The group-result memo: warm answers equal cold ones, copies protect it.
# ----------------------------------------------------------------------


def _solution_view(result):
    return [
        (dict(s.labels), s.level, s.expressiveness, s.frequency, s.is_candidate)
        for s in result.solutions
    ]


def test_name_group_memo_returns_equal_results():
    comparator = SemanticComparator()
    for relation in _group_relations("hotels", seed=0):
        twin = GroupRelation.from_mapping(relation.group, load_domain(
            "hotels", seed=0
        ).prepare().mapping)
        cold = name_group(relation, comparator)
        warm = name_group(twin, comparator)
        assert _solution_view(cold) == _solution_view(warm)
        assert cold.consistent == warm.consistent
        assert cold.level == warm.level
    assert comparator.group_counter.hits > 0


def test_name_group_memo_is_mutation_safe():
    comparator = SemanticComparator()
    relation = _group_relations("airline", seed=0)[0]
    first = name_group(relation, comparator)
    pristine = _solution_view(first)
    # Homonym repair mutates the chosen solution's labels in place; the memo
    # must hand out copies so later hits still see the pristine result.
    cluster = next(iter(first.solutions[0].labels))
    first.solutions[0].labels[cluster] = "CORRUPTED"
    second = name_group(relation, comparator)
    assert _solution_view(second) == pristine


def test_warm_labeling_is_byte_identical(tmp_path):
    """End to end: a warm repeat labeling serializes identically to cold."""
    engine = LabelingEngine(cache_size=0)  # bypass the response LRU
    payload = {"domain": "hotels", "seed": 0}
    cold = engine.label(payload)
    warm = engine.label(payload)
    for response in (cold, warm):
        response["stats"].pop("elapsed_ms")
        response.pop("cached", None)
    assert json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)


# ----------------------------------------------------------------------
# Engine comparator sharing (satellite 2) and /metrics aggregation.
# ----------------------------------------------------------------------


def _request(payload) -> LabelingRequest:
    return LabelingRequest.from_payload(payload)


def test_engine_shares_comparator_per_overlay():
    engine = LabelingEngine(cache_size=0)
    overlay = {"synsets": [["blarg", "fnord"]]}
    r1 = _request({"domain": "auto", "seed": 0, "lexicon": overlay})
    r2 = _request({"domain": "auto", "seed": 1, "lexicon": overlay})
    assert engine._comparator_for(r1) is engine._comparator_for(r2)
    other = _request(
        {"domain": "auto", "seed": 0, "lexicon": {"synsets": [["qux", "zot"]]}}
    )
    assert engine._comparator_for(other) is not engine._comparator_for(r1)


def test_engine_overlay_comparators_are_bounded():
    engine = LabelingEngine(cache_size=0)
    for i in range(engine.OVERLAY_COMPARATORS + 3):
        request = _request(
            {"domain": "auto", "seed": 0,
             "lexicon": {"synsets": [[f"word{i}", f"term{i}"]]}}
        )
        engine._comparator_for(request)
    assert len(engine._overlay_comparators) == engine.OVERLAY_COMPARATORS


def test_engine_stats_expose_semantics_caches():
    engine = LabelingEngine(cache_size=0)
    engine.label({"domain": "auto", "seed": 0})
    engine.label({"domain": "auto", "seed": 0})
    semantics = engine.stats()["semantics"]
    assert semantics["comparators"] == 1
    assert semantics["group_results"]["hits"] > 0
    assert 0.0 <= semantics["labels"]["hit_rate"] <= 1.0
    assert "wordnet" in semantics


# ----------------------------------------------------------------------
# The profile CLI (ties the report format down).
# ----------------------------------------------------------------------


def test_profile_cli_writes_report(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "BENCH_perf.json"
    code = main([
        "profile", "--domains", "auto", "--repeats", "1", "-o", str(out),
    ])
    assert code == 0
    printed = capsys.readouterr().out
    assert "TOTAL" in printed and "cache hit rates" in printed
    report = json.loads(out.read_text())
    assert set(report) >= {"workload", "domains", "totals", "caches"}
    assert report["domains"]["auto"]["cold_ms"] > 0
    assert report["caches"]["group_results"]["hits"] >= 0


def test_profile_rejects_unknown_domain():
    from repro.perf import profile_labeling

    with pytest.raises(ValueError, match="unknown domains"):
        profile_labeling(domains=["nope"])


def test_bench_perf_smoke(tmp_path, monkeypatch):
    """The perf benchmark runner must keep working (satellite: no rot).

    Executes ``benchmarks/test_bench_perf.py`` with its artifacts redirected
    to a temp dir, so the speedup assertion and the BENCH_perf.json shape
    are exercised on every tier-1 run.
    """
    import importlib.util
    from pathlib import Path

    bench_path = (
        Path(__file__).resolve().parents[1] / "benchmarks" / "test_bench_perf.py"
    )
    spec = importlib.util.spec_from_file_location("bench_perf_smoke", bench_path)
    bench = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench)
    monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
    monkeypatch.setattr(
        bench,
        "write_result",
        lambda name, content: (tmp_path / f"{name}.txt").write_text(content),
    )
    bench.test_perf_report()
    report = json.loads((tmp_path / "BENCH_perf.json").read_text())
    assert report["totals"]["speedup"] >= bench.MIN_TOTAL_SPEEDUP
    assert (tmp_path / "perf.txt").read_text().startswith("Memoization layer")
