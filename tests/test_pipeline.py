"""The three-phase naming pipeline end to end on constructed domains."""

from __future__ import annotations

import pytest

from repro.core.pipeline import NamingOptions, label_integrated_interface
from repro.core.result import NodeStatus, TreeConsistency
from repro.schema.clusters import Mapping
from repro.schema.interface import QueryInterface, make_field, make_group
from repro.schema.tree import SchemaNode


def _mini_domain():
    """Three airline-ish sources with a passenger group + a service field."""
    interfaces = []
    mapping = Mapping()

    def add(name, group_label, fields, extra=None):
        nodes = []
        for cluster, label in fields:
            node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
            nodes.append(node)
            mapping.assign(cluster, name, node)
        top = [make_group(group_label, nodes, name=f"{name}:grp")]
        if extra:
            cluster, label = extra
            node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
            mapping.assign(cluster, name, node)
            top.append(node)
        interfaces.append(
            QueryInterface(name, SchemaNode(None, top, name=f"{name}:root"))
        )

    add("s1", "Passengers",
        [("c_adult", "Adults"), ("c_child", "Children")],
        extra=("c_promo", "Promo Code"))
    add("s2", "How many people are going?",
        [("c_adult", "Adults"), ("c_child", "Children"), ("c_senior", "Seniors")])
    add("s3", "Travelers",
        [("c_adult", "Adult"), ("c_senior", "Senior")],
        extra=("c_promo", "Promotion Code"))

    # Integrated tree: one group + a root leaf.
    leaves = [
        SchemaNode(None, cluster=c, name=f"leaf:{c}")
        for c in ("c_adult", "c_senior", "c_child")
    ]
    group_node = SchemaNode(None, leaves, name="int:passengers")
    promo = SchemaNode(None, cluster="c_promo", name="leaf:c_promo")
    root = SchemaNode(None, [group_node, promo], name="int:root")
    return interfaces, mapping, root


class TestPipelineHappyPath:
    def test_labels_assigned(self, comparator):
        interfaces, mapping, root = _mini_domain()
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        assert result.field_labels["c_adult"] == "Adults"
        assert result.field_labels["c_child"] == "Children"
        assert result.field_labels["c_senior"] == "Seniors"
        assert result.field_labels["c_promo"] in {"Promo Code", "Promotion Code"}
        # The group's internal node gets a source section label.
        group_label = result.node_labels["int:passengers"]
        assert group_label in {
            "Passengers", "How many people are going?", "Travelers"
        }

    def test_labels_written_onto_tree(self, comparator):
        interfaces, mapping, root = _mini_domain()
        label_integrated_interface(root, interfaces, mapping, comparator)
        assert root.find_by_cluster("c_adult").label == "Adults"
        assert root.find_by_name("int:passengers").is_labeled

    def test_classification_consistent(self, comparator):
        interfaces, mapping, root = _mini_domain()
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        assert result.classification in (
            TreeConsistency.CONSISTENT, TreeConsistency.WEAKLY_CONSISTENT
        )
        assert result.node_status["int:passengers"] in (
            NodeStatus.CONSISTENT, NodeStatus.WEAKLY_CONSISTENT
        )

    def test_definition6_narrows_group_solution(self, comparator):
        """The internal label's origin row must lie in the chosen solution's
        partition (the cross-stage correlation of Section 4.3)."""
        interfaces, mapping, root = _mini_domain()
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        group_name = "group:int:passengers"
        chosen = result.chosen_solutions[group_name]
        label = result.node_labels["int:passengers"]
        origin = {
            "Passengers": "s1",
            "How many people are going?": "s2",
            "Travelers": "s3",
        }[label]
        relation = result.group_results[group_name].relation
        row = relation.tuple_of(origin)
        if chosen.partition is not None and row is not None:
            assert origin in chosen.supplying_interfaces()

    def test_summary_renders(self, comparator):
        interfaces, mapping, root = _mini_domain()
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        text = result.summary()
        assert "classification" in text and "fields labeled" in text


class TestPathBlocking:
    def test_candidate_used_by_ancestor_is_skipped(self, comparator):
        """Proposition 2 / the Car-Rental promotion phenomenon: a node whose
        only candidate was consumed by an ancestor stays unlabeled."""
        interfaces = []
        mapping = Mapping()
        # Both the outer and inner sections are called "Vehicle" in sources.
        inner_fields = [("c_make", "Make"), ("c_model", "Model")]
        outer_extra = ("c_class", "Class")

        for name in ("s1", "s2"):
            inner_nodes = []
            for cluster, label in inner_fields:
                node = make_field(label, cluster=cluster, name=f"{name}:{cluster}")
                inner_nodes.append(node)
                mapping.assign(cluster, name, node)
            inner = make_group("Vehicle", inner_nodes, name=f"{name}:inner")
            extra = make_field(
                outer_extra[1], cluster=outer_extra[0], name=f"{name}:{outer_extra[0]}"
            )
            mapping.assign(outer_extra[0], name, extra)
            outer = make_group("Vehicle", [inner, extra], name=f"{name}:outer")
            interfaces.append(
                QueryInterface(name, SchemaNode(None, [outer], name=f"{name}:root"))
            )

        inner_leaves = [
            SchemaNode(None, cluster=c, name=f"leaf:{c}") for c, __ in inner_fields
        ]
        inner_node = SchemaNode(None, inner_leaves, name="int:inner")
        class_leaf = SchemaNode(None, cluster="c_class", name="leaf:c_class")
        outer_node = SchemaNode(None, [inner_node, class_leaf], name="int:outer")
        root = SchemaNode(None, [outer_node], name="int:root")

        result = label_integrated_interface(root, interfaces, mapping, comparator)
        assert result.node_labels["int:outer"] == "Vehicle"
        assert result.node_labels["int:inner"] is None
        assert result.node_status["int:inner"] is NodeStatus.UNLABELED_BLOCKED
        assert result.classification is TreeConsistency.INCONSISTENT


class TestOptions:
    def test_repair_homonyms_flag(self, comparator):
        interfaces, mapping, root = _mini_domain()
        options = NamingOptions(repair_homonyms=False)
        result = label_integrated_interface(
            root, interfaces, mapping, comparator, options=options
        )
        assert result.repairs == []

    def test_keep_inference_events_false(self, comparator):
        interfaces, mapping, root = _mini_domain()
        options = NamingOptions(keep_inference_events=False)
        result = label_integrated_interface(
            root, interfaces, mapping, comparator, options=options
        )
        assert result.inference_log.events == []


class TestMetrics:
    def test_field_and_node_accuracy(self, comparator):
        from repro.core.metrics import (
            fields_consistency_accuracy,
            internal_nodes_accuracy,
        )

        interfaces, mapping, root = _mini_domain()
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        assert fields_consistency_accuracy(result) == 1.0
        assert internal_nodes_accuracy(result) == 1.0

    def test_integrated_stats(self, comparator):
        from repro.core.metrics import integrated_stats

        interfaces, mapping, root = _mini_domain()
        result = label_integrated_interface(root, interfaces, mapping, comparator)
        stats = integrated_stats(result)
        assert stats.leaves == 4
        assert stats.groups == 1
        assert stats.root_leaves == 1
        assert stats.isolated_leaves == 0
        assert stats.internal_nodes == 1
        assert stats.depth == 3
