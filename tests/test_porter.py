"""Porter stemmer: canonical vocabulary, measure function, properties."""

from __future__ import annotations

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lexicon.porter import PorterStemmer, stem

# (word, expected stem) pairs drawn from Porter's published example lists
# and from the paper's own normalization examples.
CANONICAL = [
    ("caresses", "caress"),
    ("ponies", "poni"),
    ("ties", "ti"),
    ("caress", "caress"),
    ("cats", "cat"),
    ("feed", "feed"),
    ("agreed", "agre"),
    ("plastered", "plaster"),
    ("bled", "bled"),
    ("motoring", "motor"),
    ("sing", "sing"),
    ("conflated", "conflat"),
    ("troubled", "troubl"),
    ("sized", "size"),
    ("hopping", "hop"),
    ("tanned", "tan"),
    ("falling", "fall"),
    ("hissing", "hiss"),
    ("fizzed", "fizz"),
    ("failing", "fail"),
    ("filing", "file"),
    ("happy", "happi"),
    ("sky", "sky"),
    ("relational", "relat"),
    ("conditional", "condit"),
    ("rational", "ration"),
    ("valenci", "valenc"),
    ("hesitanci", "hesit"),
    ("digitizer", "digit"),
    ("conformabli", "conform"),
    ("radicalli", "radic"),
    ("differentli", "differ"),
    ("vileli", "vile"),
    ("analogousli", "analog"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("operator", "oper"),
    ("feudalism", "feudal"),
    ("decisiveness", "decis"),
    ("hopefulness", "hope"),
    ("callousness", "callous"),
    ("formaliti", "formal"),
    ("sensitiviti", "sensit"),
    ("sensibiliti", "sensibl"),
    ("triplicate", "triplic"),
    ("formative", "form"),
    ("formalize", "formal"),
    ("electriciti", "electr"),
    ("electrical", "electr"),
    ("hopeful", "hope"),
    ("goodness", "good"),
    ("revival", "reviv"),
    ("allowance", "allow"),
    ("inference", "infer"),
    ("airliner", "airlin"),
    ("gyroscopic", "gyroscop"),
    ("adjustable", "adjust"),
    ("defensible", "defens"),
    ("irritant", "irrit"),
    ("replacement", "replac"),
    ("adjustment", "adjust"),
    ("dependent", "depend"),
    ("adoption", "adopt"),
    ("homologou", "homolog"),
    ("communism", "commun"),
    ("activate", "activ"),
    ("angulariti", "angular"),
    ("homologous", "homolog"),
    ("effective", "effect"),
    ("bowdlerize", "bowdler"),
    ("probate", "probat"),
    ("rate", "rate"),
    ("cease", "ceas"),
    ("controll", "control"),
    ("roll", "roll"),
]


@pytest.mark.parametrize("word,expected", CANONICAL)
def test_canonical_vocabulary(word, expected):
    assert stem(word) == expected


def test_paper_example_preference_preferred():
    """Table 4's linchpin: Preference and Preferred share the stem prefer."""
    assert stem("preference") == "prefer"
    assert stem("preferred") == "prefer"


def test_short_words_unchanged():
    for word in ("a", "at", "go", "is"):
        assert stem(word) == word


def test_lowercases_input():
    assert stem("Preference") == "prefer"
    assert stem("ADULTS") == "adult"


class TestMeasure:
    stemmer = PorterStemmer()

    @pytest.mark.parametrize(
        "word,m",
        [
            ("tr", 0), ("ee", 0), ("tree", 0), ("y", 0), ("by", 0),
            ("trouble", 1), ("oats", 1), ("trees", 1), ("ivy", 1),
            ("troubles", 2), ("private", 2), ("oaten", 2), ("orrery", 2),
        ],
    )
    def test_porter_published_measures(self, word, m):
        assert self.stemmer.measure(word) == m

    def test_y_as_consonant_at_start(self):
        # "y" at word start is a consonant; after a vowel it is too.
        assert self.stemmer._is_consonant("yes", 0)
        assert self.stemmer._is_consonant("say", 2)
        # After a consonant it acts as a vowel.
        assert not self.stemmer._is_consonant("sky", 2)


@given(st.text(alphabet=string.ascii_letters, min_size=1, max_size=30))
def test_stem_never_grows_and_stays_lower(word):
    result = stem(word)
    assert len(result) <= len(word)
    assert result == result.lower()


@given(st.text(alphabet=string.ascii_lowercase, min_size=3, max_size=20))
def test_stem_is_deterministic(word):
    assert stem(word) == stem(word)


@given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=25))
def test_stem_total_function(word):
    """No input of letters crashes the stemmer."""
    assert isinstance(stem(word), str)


# A second slab of Porter's published vocabulary, exercising steps 2-4 more
# broadly than the core list above.
EXTENDED = [
    ("relate", "relat"),
    ("probable", "probabl"),
    ("conflated", "conflat"),
    ("matting", "mat"),
    ("mating", "mate"),
    ("meetings", "meet"),
    ("siezed", "siez"),
    ("bled", "bled"),
    ("sky", "sky"),
    ("singing", "sing"),
    ("generalizations", "gener"),
    ("oscillators", "oscil"),
    ("mulliner", "mullin"),
    ("conditional", "condit"),
    ("vietnamization", "vietnam"),
    ("predication", "predic"),
    ("grossness", "gross"),
    ("derivate", "deriv"),
    ("activity", "activ"),
    ("dependent", "depend"),
    ("engineering", "engin"),
    ("controlling", "control"),
    ("rolling", "roll"),
]


@pytest.mark.parametrize("word,expected", EXTENDED)
def test_extended_vocabulary(word, expected):
    assert stem(word) == expected
