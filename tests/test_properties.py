"""Cross-cutting property tests: random catalogs through the whole stack.

These are the invariants a downstream user relies on regardless of domain
content: the generator emits well-formed corpora, the merge places every
cluster exactly once, the naming pipeline never invents labels and never
leaves an available label on the table, and serialization is lossless.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.pipeline import label_integrated_interface
from repro.core.semantics import SemanticComparator
from repro.datasets.catalog import Concept, DomainSpec, GroupSpec, variants
from repro.datasets.generator import generate_domain
from repro.merge import merge_interfaces
from repro.schema.serialize import interface_from_dict, interface_to_dict

_COMPARATOR = SemanticComparator()

# A pool of label words that the lexicon may or may not know — properties
# must hold either way.
_WORDS = [
    "Alpha", "Beta", "Gamma", "Delta", "Price", "City", "Adults", "Keyword",
    "Rate", "Zone", "Extra", "Widget", "Lorem", "Ipsum",
]


@st.composite
def domain_specs(draw):
    """Small random domain catalogs (2-4 groups, 1-3 concepts each)."""
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = random.Random(rng_seed)
    words = list(_WORDS)
    rng.shuffle(words)
    word_iter = iter(words * 4)

    groups = []
    group_count = draw(st.integers(min_value=2, max_value=4))
    concept_id = 0
    for g in range(group_count):
        concepts = []
        for __ in range(draw(st.integers(min_value=1, max_value=3))):
            concept_id += 1
            base = next(word_iter)
            concepts.append(
                Concept(
                    f"c_{concept_id}",
                    variants(base, f"{base} Value"),
                    prevalence=draw(
                        st.floats(min_value=0.5, max_value=1.0)
                    ),
                    unlabeled_prob=draw(
                        st.floats(min_value=0.0, max_value=0.3)
                    ),
                )
            )
        groups.append(
            GroupSpec(
                key=f"g_{g}",
                concepts=tuple(concepts),
                group_labels=variants(f"Section {g}"),
                labeled_prob=draw(st.floats(min_value=0.0, max_value=1.0)),
                prevalence=draw(st.floats(min_value=0.5, max_value=1.0)),
                flatten_prob=draw(st.floats(min_value=0.0, max_value=0.5)),
            )
        )
    return DomainSpec(
        name=f"prop{rng_seed}",
        interface_count=draw(st.integers(min_value=3, max_value=8)),
        groups=tuple(groups),
    )


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(domain_specs(), st.integers(min_value=0, max_value=99))
def test_generator_emits_wellformed_corpora(spec, seed):
    dataset = generate_domain(spec, seed=seed)
    assert len(dataset.interfaces) == spec.interface_count
    for interface in dataset.interfaces:
        interface.root.validate()
        assert interface.leaf_count() >= 1
    # Mapping members are real tree nodes of their interface.
    by_name = {qi.name: qi for qi in dataset.interfaces}
    for cluster in dataset.mapping.clusters:
        for interface_name, node in cluster.members.items():
            assert by_name[interface_name].root.find_by_name(node.name) is node


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(domain_specs(), st.integers(min_value=0, max_value=99))
def test_merge_places_every_cluster_exactly_once(spec, seed):
    dataset = generate_domain(spec, seed=seed)
    dataset.prepare()
    root = merge_interfaces(dataset.interfaces, dataset.mapping)
    root.validate()
    clusters = [leaf.cluster for leaf in root.leaves()]
    populated = sorted(c.name for c in dataset.mapping.clusters if c.members)
    assert sorted(clusters) == populated


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(domain_specs(), st.integers(min_value=0, max_value=99))
def test_pipeline_labels_come_from_sources(spec, seed):
    """The naming algorithm never invents text: every assigned label
    (fields and internal nodes) appears verbatim on some source node."""
    dataset = generate_domain(spec, seed=seed)
    root = dataset.integrated()
    result = label_integrated_interface(
        root, dataset.interfaces, dataset.mapping, _COMPARATOR
    )
    source_labels = {
        node.label
        for qi in dataset.interfaces
        for node in qi.root.walk()
        if node.is_labeled
    }
    for label in result.field_labels.values():
        if label is not None:
            assert label in source_labels
    for label in result.node_labels.values():
        if label is not None:
            assert label in source_labels


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(domain_specs(), st.integers(min_value=0, max_value=99))
def test_pipeline_never_drops_available_labels(spec, seed):
    """A field left unlabeled implies no source ever labels its cluster."""
    dataset = generate_domain(spec, seed=seed)
    root = dataset.integrated()
    result = label_integrated_interface(
        root, dataset.interfaces, dataset.mapping, _COMPARATOR
    )
    for cluster in result.unlabeled_fields():
        if cluster in dataset.mapping:
            assert dataset.mapping[cluster].labels() == []


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(domain_specs(), st.integers(min_value=0, max_value=99))
def test_pipeline_is_deterministic(spec, seed):
    first = generate_domain(spec, seed=seed)
    second = generate_domain(spec, seed=seed)
    r1 = label_integrated_interface(
        first.integrated(), first.interfaces, first.mapping, _COMPARATOR
    )
    r2 = label_integrated_interface(
        second.integrated(), second.interfaces, second.mapping, _COMPARATOR
    )
    assert r1.field_labels == r2.field_labels
    assert r1.node_labels == r2.node_labels
    assert r1.classification == r2.classification


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(domain_specs(), st.integers(min_value=0, max_value=99))
def test_interface_serialization_is_lossless(spec, seed):
    dataset = generate_domain(spec, seed=seed)
    for interface in dataset.interfaces:
        data = interface_to_dict(interface)
        restored = interface_from_dict(data)
        assert interface_to_dict(restored) == data
