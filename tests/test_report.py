"""The Markdown run-report generator."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiment import run_domain
from repro.report import domain_report


@pytest.fixture(scope="module")
def auto_run():
    return run_domain("auto", seed=0)


class TestDomainReport:
    def test_contains_all_sections(self, auto_run):
        report = domain_report(auto_run)
        for heading in (
            "# Labeling report — auto",
            "## Corpus",
            "## The labeled integrated interface",
            "## Group naming",
            "## Internal nodes (vertical consistency)",
            "## Inference rules",
            "## Survey",
        ):
            assert heading in report

    def test_metrics_line(self, auto_run):
        report = domain_report(auto_run)
        assert "*FldAcc:* 100.0%" in report
        assert "**weakly_consistent**" in report

    def test_group_relations_rendered(self, auto_run):
        report = domain_report(auto_run)
        # Some group relation table appears as a code block with interfaces.
        assert "auto-" in report
        assert "consistent at the string level" in report

    def test_labeled_tree_included(self, auto_run):
        report = domain_report(auto_run)
        assert "[c_make]" in report

    def test_isolated_section_when_present(self, auto_run):
        report = domain_report(auto_run)
        if auto_run.labeling.isolated_outcomes:
            assert "## Isolated clusters (RAN variant)" in report

    def test_repairs_listed_when_present(self):
        # Airline tends to trigger homonym repairs (Return From / Return To).
        run = run_domain("airline", seed=0)
        report = domain_report(run)
        if run.labeling.repairs:
            assert "### Homonym repairs" in report

    def test_survey_flags_listed(self):
        run = run_domain("airline", seed=0)
        report = domain_report(run)
        if run.study.flag_counts:
            assert "flagged fields (votes):" in report
        else:
            assert "nobody flagged anything" in report


class TestReportCli:
    def test_report_to_stdout(self, capsys):
        assert main(["report", "job"]) == 0
        out = capsys.readouterr().out
        assert "# Labeling report — job" in out

    def test_report_to_file(self, tmp_path, capsys):
        target = tmp_path / "r.md"
        assert main(["report", "job", "-o", str(target)]) == 0
        assert target.read_text().startswith("# Labeling report — job")
